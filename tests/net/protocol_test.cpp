// Malformed-frame sweep for the daemon wire protocol, in the style of the
// trace_io forward-version tests: every rejection path must fire with its
// exact, frame-numbered message, and truncation is swept at every header
// and payload boundary. Runs entirely in memory via FrameParser — the
// daemon's socket reader shares the same decode_header / verify_payload /
// check_client_frame sequence, so these messages are what a client sees
// in an ERROR frame.
#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace otac::net {
namespace {

std::vector<std::uint8_t> get_frame(std::uint64_t sequence = 7) {
  GetPayload get;
  get.index = 42;
  get.time_seconds = 1234;
  get.photo = 99;
  get.terminal = 1;
  std::vector<std::uint8_t> frame(kGetFrameBytes);
  encode_get_frame(frame.data(), sequence, get);
  return frame;
}

/// Expect `body` to throw std::runtime_error with exactly `message`.
template <typename Body>
void expect_error(const Body& body, const std::string& message) {
  try {
    body();
    FAIL() << "expected error: " << message;
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string{error.what()}, message);
  }
}

TEST(Protocol, GetFrameRoundTrip) {
  const std::vector<std::uint8_t> bytes = get_frame();
  FrameParser parser{bytes};
  const std::optional<Frame> frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->header.type == FrameType::get_request);
  EXPECT_EQ(frame->header.sequence, 7u);
  const GetPayload get = decode_get(frame->payload, 1);
  EXPECT_EQ(get.index, 42u);
  EXPECT_EQ(get.time_seconds, 1234);
  EXPECT_EQ(get.photo, 99u);
  EXPECT_EQ(get.terminal, 1u);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.frames_decoded(), 1u);
}

TEST(Protocol, PutResultSummaryRoundTrip) {
  PutPayload put;
  put.time_seconds = -5;
  put.photo = 3;
  std::vector<std::uint8_t> put_bytes(kPutFrameBytes);
  encode_put_frame(put_bytes.data(), 11, put);
  FrameParser put_parser{put_bytes};
  const PutPayload put_back = decode_put(put_parser.next()->payload, 1);
  EXPECT_EQ(put_back.time_seconds, -5);
  EXPECT_EQ(put_back.photo, 3u);

  ResultPayload result;
  result.status = ResultStatus::miss_admitted;
  result.degraded = 1;
  result.latency_us = 1250.5;
  std::vector<std::uint8_t> result_bytes(kResultFrameBytes);
  encode_result_frame(result_bytes.data(), 12, result);
  FrameParser result_parser{result_bytes};
  const ResultPayload result_back =
      decode_result(result_parser.next()->payload, 1);
  EXPECT_TRUE(result_back.status == ResultStatus::miss_admitted);
  EXPECT_EQ(result_back.degraded, 1u);
  EXPECT_DOUBLE_EQ(result_back.latency_us, 1250.5);

  SummaryPayload summary;
  summary.requests = 1000;
  summary.hits = 600;
  summary.eviction_hash = 0x482f95a6f4a0f410ULL;
  summary.file_hit_rate = 0.6;
  summary.mean_latency_us = 5200.25;
  std::vector<std::uint8_t> summary_bytes(kSummaryFrameBytes);
  encode_summary_frame(summary_bytes.data(), 13, summary);
  FrameParser summary_parser{summary_bytes};
  const SummaryPayload summary_back =
      decode_summary(summary_parser.next()->payload, 1);
  EXPECT_EQ(summary_back.requests, 1000u);
  EXPECT_EQ(summary_back.hits, 600u);
  EXPECT_EQ(summary_back.eviction_hash, 0x482f95a6f4a0f410ULL);
  EXPECT_DOUBLE_EQ(summary_back.file_hit_rate, 0.6);
  EXPECT_DOUBLE_EQ(summary_back.mean_latency_us, 5200.25);
}

TEST(Protocol, ControlFramesRoundTripEmptyPayload) {
  for (const FrameType type :
       {FrameType::stats_request, FrameType::report_request,
        FrameType::shutdown_request, FrameType::shutdown_ack}) {
    const std::vector<std::uint8_t> bytes = encode_frame(type, 21, {});
    ASSERT_EQ(bytes.size(), kHeaderBytes);
    FrameParser parser{bytes};
    const std::optional<Frame> frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->header.type == type);
    EXPECT_EQ(frame->header.payload_size, 0u);
    EXPECT_TRUE(frame->payload.empty());
  }
}

TEST(Protocol, VariableLengthReportRoundTrip) {
  const std::string json = "{\"source\": \"otacd\"}";
  const std::vector<std::uint8_t> bytes = encode_frame(
      FrameType::report, 3,
      {reinterpret_cast<const std::uint8_t*>(json.data()), json.size()});
  FrameParser parser{bytes};
  const std::optional<Frame> frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(std::string(frame->payload.begin(), frame->payload.end()), json);
}

// --- truncation sweep -----------------------------------------------------

TEST(Protocol, TruncationAtEveryHeaderBoundary) {
  const std::vector<std::uint8_t> whole = get_frame();
  for (std::size_t cut = 0; cut < kHeaderBytes; ++cut) {
    const std::vector<std::uint8_t> truncated(whole.begin(),
                                              whole.begin() + cut);
    FrameParser parser{truncated};
    if (cut == 0) {
      // A clean EOF at a frame boundary is not an error.
      EXPECT_FALSE(parser.next().has_value());
      continue;
    }
    SCOPED_TRACE("cut at header byte " + std::to_string(cut));
    expect_error([&] { (void)parser.next(); },
                 "frame 1: truncated header (got " + std::to_string(cut) +
                     " of 24 bytes)");
  }
}

TEST(Protocol, TruncationAtEveryPayloadBoundary) {
  const std::vector<std::uint8_t> whole = get_frame();
  for (std::size_t cut = kHeaderBytes; cut < whole.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(whole.begin(),
                                              whole.begin() + cut);
    FrameParser parser{truncated};
    SCOPED_TRACE("cut at payload byte " + std::to_string(cut - kHeaderBytes));
    expect_error([&] { (void)parser.next(); },
                 "frame 1: truncated payload (got " +
                     std::to_string(cut - kHeaderBytes) + " of 24 bytes)");
  }
}

// --- header rejection paths ----------------------------------------------

TEST(Protocol, BadMagicRejected) {
  std::vector<std::uint8_t> frame = get_frame();
  frame[3] = 0x58;  // "OTAX"
  FrameParser parser{frame};
  expect_error([&] { (void)parser.next(); },
               "frame 1: bad magic 0x5841544F");
}

TEST(Protocol, UnsupportedVersionRejected) {
  std::vector<std::uint8_t> frame = get_frame();
  put_u16(frame.data() + 4, 2);
  FrameParser parser{frame};
  expect_error([&] { (void)parser.next(); },
               "frame 1: unsupported protocol version 2 (expected 1)");
}

TEST(Protocol, UnknownFrameTypeRejected) {
  std::vector<std::uint8_t> frame = get_frame();
  put_u16(frame.data() + 6, 11);
  FrameParser parser{frame};
  expect_error([&] { (void)parser.next(); },
               "frame 1: unknown frame type 11");
  put_u16(frame.data() + 6, 0);
  FrameParser zero_parser{frame};
  expect_error([&] { (void)zero_parser.next(); },
               "frame 1: unknown frame type 0");
}

TEST(Protocol, OversizedPayloadRejectedFromHeaderAlone) {
  // Header-only bytes declaring kMaxPayloadBytes + 1: the header check
  // must reject before any payload is expected, so the error is
  // "oversized", never "truncated payload" — that ordering is what keeps
  // a hostile length from forcing an allocation.
  std::vector<std::uint8_t> header(kHeaderBytes);
  encode_header(header.data(), FrameType::report, 1, {});
  put_u32(header.data() + 16, kMaxPayloadBytes + 1);
  FrameParser parser{header};
  expect_error([&] { (void)parser.next(); },
               "frame 1: oversized payload 8388609 bytes (max 8388608)");
}

TEST(Protocol, PayloadCrcMismatchRejected) {
  std::vector<std::uint8_t> frame = get_frame();
  frame[kHeaderBytes + 2] ^= 0x01;  // flip one payload bit
  const std::uint32_t declared = read_u32(frame.data() + 20);
  FrameParser parser{frame};
  try {
    (void)parser.next();
    FAIL() << "expected CRC mismatch";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_TRUE(what.starts_with("frame 1: payload CRC mismatch (got 0x"))
        << what;
    char expected[16];
    std::snprintf(expected, sizeof(expected), "0x%08X", declared);
    EXPECT_NE(what.find(std::string{"expected "} + expected),
              std::string::npos)
        << what;
  }
}

// --- typed decoders and server-side pre-read validation -------------------

TEST(Protocol, TypedDecodersRejectWrongSizes) {
  const std::vector<std::uint8_t> bytes(8, 0);
  expect_error([&] { (void)decode_get(bytes, 3); },
               "frame 3: get payload is 8 bytes (expected 24)");
  expect_error([&] { (void)decode_put(bytes, 4); },
               "frame 4: put payload is 8 bytes (expected 16)");
  expect_error([&] { (void)decode_result(bytes, 5); },
               "frame 5: result payload is 8 bytes (expected 16)");
  expect_error([&] { (void)decode_summary(bytes, 6); },
               "frame 6: summary payload is 8 bytes (expected 112)");
}

TEST(Protocol, UnknownResultStatusRejected) {
  std::vector<std::uint8_t> payload(kResultPayloadBytes, 0);
  payload[0] = 6;
  expect_error([&] { (void)decode_result(payload, 2); },
               "frame 2: unknown result status 6");
}

TEST(Protocol, CheckClientFrameAcceptsRequestTypes) {
  FrameHeader header;
  header.type = FrameType::get_request;
  header.payload_size = kGetPayloadBytes;
  EXPECT_NO_THROW(check_client_frame(header, 1));
  header.type = FrameType::put_request;
  header.payload_size = kPutPayloadBytes;
  EXPECT_NO_THROW(check_client_frame(header, 1));
  for (const FrameType type :
       {FrameType::stats_request, FrameType::report_request,
        FrameType::shutdown_request}) {
    header.type = type;
    header.payload_size = 0;
    EXPECT_NO_THROW(check_client_frame(header, 1));
  }
}

TEST(Protocol, CheckClientFrameRejectsBeforePayloadRead) {
  FrameHeader header;
  header.type = FrameType::get_request;
  header.payload_size = 23;
  expect_error([&] { check_client_frame(header, 9); },
               "frame 9: get payload is 23 bytes (expected 24)");
  header.type = FrameType::stats_request;
  header.payload_size = 1;
  expect_error([&] { check_client_frame(header, 10); },
               "frame 10: stats payload is 1 bytes (expected 0)");
}

TEST(Protocol, CheckClientFrameRejectsReplyTypes) {
  FrameHeader header;
  header.payload_size = 0;
  const struct {
    FrameType type;
    const char* name;
  } replies[] = {{FrameType::result, "result"},
                 {FrameType::summary, "summary"},
                 {FrameType::report, "report"},
                 {FrameType::shutdown_ack, "shutdown-ack"},
                 {FrameType::error, "error"}};
  for (const auto& reply : replies) {
    header.type = reply.type;
    expect_error([&] { check_client_frame(header, 2); },
                 std::string{"frame 2: unexpected "} + reply.name +
                     " frame from client");
  }
}

// --- stream position in error messages ------------------------------------

TEST(Protocol, ErrorsCarryOneBasedFramePosition) {
  // Three good frames then a corrupt one: the error must name frame 4.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> good = get_frame(static_cast<unsigned>(i));
    stream.insert(stream.end(), good.begin(), good.end());
  }
  std::vector<std::uint8_t> bad = get_frame(3);
  bad[3] = 0x58;
  stream.insert(stream.end(), bad.begin(), bad.end());

  FrameParser parser{stream};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(parser.next().has_value());
  EXPECT_EQ(parser.frames_decoded(), 3u);
  expect_error([&] { (void)parser.next(); },
               "frame 4: bad magic 0x5841544F");
}

TEST(Protocol, MultiFrameStreamDecodesInOrder) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> frame = get_frame(i);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameParser parser{stream};
  for (std::uint64_t i = 0; i < 5; ++i) {
    const std::optional<Frame> frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->header.sequence, i);
  }
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.frames_decoded(), 5u);
}

}  // namespace
}  // namespace otac::net
