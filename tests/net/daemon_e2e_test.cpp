// Loopback end-to-end suite for the serving daemon (label `concurrency`,
// so `scripts/ci.sh concurrency` runs it under TSan): the determinism
// contract — one connection, GET frames in trace order, blocking
// dispatch, inline watchdog — must reproduce ShardedCache::run's
// RunResult bit-for-bit, eviction hash included, with real sockets and
// real worker threads underneath. Plus the wire-facing behaviors no
// in-process test can cover: PUT serving, malformed frames answered with
// an ERROR frame and a closed connection, and the SHUTDOWN handshake.
#include "net/daemon.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "core/sharded_cache.h"
#include "net/loadgen.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "trace/trace_generator.h"

namespace otac::net {
namespace {

const Trace& test_trace() {
  static const Trace trace = [] {
    WorkloadConfig config;
    config.num_owners = 200;
    config.num_photos = 2500;
    config.seed = 7;
    return TraceGenerator{config}.generate();
  }();
  return trace;
}

const IntelligentCache& test_system() {
  static const IntelligentCache system{test_trace()};
  return system;
}

RunConfig serving_config(bool overload) {
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.mode = AdmissionMode::proposal;
  config.capacity_bytes = 6 * 1024 * 1024;
  config.shards = 4;
  config.resilience.overload.enabled = overload;
  // Inline watchdog (timeout 0): retrains run on the barrier thread, the
  // deterministic configuration the daemon's contract is stated for.
  config.resilience.watchdog.timeout_s = 0.0;
  return config;
}

/// One full client session: every trace request in order, full speed
/// (offered_rps 0 disables pacing), then STATS + SHUTDOWN.
LoadgenResult drive(const Daemon& daemon, std::uint64_t put_every = 0) {
  LoadgenConfig config;
  config.port = daemon.port();
  config.offered_rps = 0.0;
  config.put_every = put_every;
  return run_loadgen(test_trace(), config);
}

RunResult serve_once(const RunConfig& config, LoadgenResult* client = nullptr,
                     std::uint64_t put_every = 0) {
  DaemonConfig daemon_config;
  daemon_config.run = config;
  Daemon daemon{test_system(), daemon_config};
  daemon.start();
  const LoadgenResult result = drive(daemon, put_every);
  EXPECT_EQ(result.errors, 0u) << result.error_text;
  daemon.stop();
  if (client != nullptr) *client = result;
  return daemon.result();
}

TEST(DaemonE2e, SameSeedSameScheduleTwiceIsIdentical) {
  const RunConfig config = serving_config(/*overload=*/true);
  const RunResult first = serve_once(config);
  const RunResult second = serve_once(config);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.stats.eviction_hash, second.stats.eviction_hash);
  EXPECT_EQ(first.degradation.shed_requests,
            second.degradation.shed_requests);
  EXPECT_EQ(first.degradation.degraded_admits,
            second.degradation.degraded_admits);
}

TEST(DaemonE2e, MatchesInProcessReplayIncludingEvictionHash) {
  const RunConfig config = serving_config(/*overload=*/false);
  const RunResult over_the_wire = serve_once(config);
  const RunResult in_process = ShardedCache{test_system()}.run(config);
  EXPECT_TRUE(over_the_wire == in_process);
  EXPECT_EQ(over_the_wire.stats.eviction_hash,
            in_process.stats.eviction_hash);
  EXPECT_EQ(over_the_wire.stats.hits, in_process.stats.hits);
  EXPECT_EQ(over_the_wire.trainings, in_process.trainings);
}

TEST(DaemonE2e, OverloadLadderMatchesInProcessShardQueueReplay) {
  // Same arrival schedule through the daemon's per-shard fluid queues and
  // through ShardedCache::run's: shed/degraded accounting must agree in
  // sum (the merged DegradationCounters are part of RunResult equality).
  const RunConfig config = serving_config(/*overload=*/true);
  LoadgenResult client;
  const RunResult over_the_wire = serve_once(config, &client);
  const RunResult in_process = ShardedCache{test_system()}.run(config);
  EXPECT_TRUE(over_the_wire == in_process);
  EXPECT_EQ(over_the_wire.degradation.shed_requests,
            in_process.degradation.shed_requests);
  EXPECT_EQ(over_the_wire.degradation.degraded_admits,
            in_process.degradation.degraded_admits);
  EXPECT_EQ(over_the_wire.degradation.overload_transitions,
            in_process.degradation.overload_transitions);
  // Every shed decision the server took was also reported to the client.
  EXPECT_EQ(client.shed, over_the_wire.degradation.shed_requests);
}

TEST(DaemonE2e, ServerSummaryMatchesClientTallies) {
  const RunConfig config = serving_config(/*overload=*/true);
  LoadgenResult client;
  const RunResult server = serve_once(config, &client);
  EXPECT_EQ(client.requests, test_trace().requests.size());
  EXPECT_EQ(client.replies, client.requests + client.puts);
  EXPECT_EQ(client.server.requests, server.stats.requests);
  EXPECT_EQ(client.server.hits, server.stats.hits);
  EXPECT_EQ(client.server.eviction_hash, server.stats.eviction_hash);
  EXPECT_EQ(client.hits, server.stats.hits);
}

TEST(DaemonE2e, PutFramesInsertAndAreAcknowledged) {
  const RunConfig config = serving_config(/*overload=*/false);
  LoadgenResult client;
  (void)serve_once(config, &client, /*put_every=*/50);
  EXPECT_GT(client.puts, 0u);
  EXPECT_EQ(client.put_oks, client.puts);
  EXPECT_EQ(client.replies, client.requests + client.puts);
}

TEST(DaemonE2e, MalformedFrameGetsErrorReplyAndConnectionClose) {
  DaemonConfig daemon_config;
  daemon_config.run = serving_config(/*overload=*/false);
  Daemon daemon{test_system(), daemon_config};
  daemon.start();
  {
    UniqueFd fd = tcp_connect("127.0.0.1", daemon.port());
    std::array<std::uint8_t, kGetFrameBytes> frame{};
    encode_get_frame(frame.data(), 0, GetPayload{});
    frame[3] = 0x58;  // corrupt the magic
    ASSERT_TRUE(send_all(fd.get(), frame.data(), frame.size()));

    std::array<std::uint8_t, kHeaderBytes> head{};
    ASSERT_EQ(recv_exact(fd.get(), head.data(), head.size()), head.size());
    const FrameHeader header = decode_header(head, 1);
    EXPECT_TRUE(header.type == FrameType::error);
    std::vector<std::uint8_t> body(header.payload_size);
    ASSERT_EQ(recv_exact(fd.get(), body.data(), body.size()), body.size());
    verify_payload(header, body, 1);
    EXPECT_EQ(std::string(body.begin(), body.end()),
              "frame 1: bad magic 0x5841544F");

    // The daemon drops the connection after a protocol error: the next
    // read must see EOF, not a hung socket.
    std::uint8_t byte = 0;
    EXPECT_EQ(recv_exact(fd.get(), &byte, 1), 0u);
  }
  daemon.stop();
  EXPECT_EQ(daemon.wire_stats().protocol_errors, 1u);
  EXPECT_EQ(daemon.result().stats.requests, 0u);
}

TEST(DaemonE2e, OversizedHeaderRejectedBeforePayload) {
  DaemonConfig daemon_config;
  daemon_config.run = serving_config(/*overload=*/false);
  Daemon daemon{test_system(), daemon_config};
  daemon.start();
  {
    UniqueFd fd = tcp_connect("127.0.0.1", daemon.port());
    // A GET header declaring a 1 GiB payload; the daemon must reject it
    // from the header alone instead of trying to read (or allocate) it.
    std::array<std::uint8_t, kHeaderBytes> head{};
    encode_header(head.data(), FrameType::get_request, 0, {});
    put_u32(head.data() + 16, 1u << 30);
    ASSERT_TRUE(send_all(fd.get(), head.data(), head.size()));

    std::array<std::uint8_t, kHeaderBytes> reply{};
    ASSERT_EQ(recv_exact(fd.get(), reply.data(), reply.size()),
              reply.size());
    const FrameHeader header = decode_header(reply, 1);
    EXPECT_TRUE(header.type == FrameType::error);
    std::vector<std::uint8_t> body(header.payload_size);
    ASSERT_EQ(recv_exact(fd.get(), body.data(), body.size()), body.size());
    EXPECT_EQ(std::string(body.begin(), body.end()),
              "frame 1: oversized payload 1073741824 bytes (max 8388608)");
  }
  daemon.stop();
  EXPECT_EQ(daemon.wire_stats().protocol_errors, 1u);
}

TEST(DaemonE2e, ShutdownHandshakeUnblocksWaiters) {
  DaemonConfig daemon_config;
  daemon_config.run = serving_config(/*overload=*/false);
  Daemon daemon{test_system(), daemon_config};
  daemon.start();
  {
    UniqueFd fd = tcp_connect("127.0.0.1", daemon.port());
    const std::vector<std::uint8_t> request =
        encode_frame(FrameType::shutdown_request, 1, {});
    ASSERT_TRUE(send_all(fd.get(), request.data(), request.size()));
    std::array<std::uint8_t, kHeaderBytes> head{};
    ASSERT_EQ(recv_exact(fd.get(), head.data(), head.size()), head.size());
    EXPECT_TRUE(decode_header(head, 1).type == FrameType::shutdown_ack);
  }
  // Returns because of the SHUTDOWN frame, not a stop() call.
  daemon.wait_for_shutdown();
  daemon.stop();
  EXPECT_EQ(daemon.result().stats.requests, 0u);
}

TEST(DaemonE2e, ResultBeforeStopThrows) {
  DaemonConfig daemon_config;
  daemon_config.run = serving_config(/*overload=*/false);
  Daemon daemon{test_system(), daemon_config};
  daemon.start();
  EXPECT_THROW((void)daemon.result(), std::logic_error);
  daemon.stop();
  EXPECT_NO_THROW((void)daemon.result());
}

}  // namespace
}  // namespace otac::net
