#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace otac {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(1000, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool{2};
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterParallelFor) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace otac
