#include "util/alias_table.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace otac {
namespace {

TEST(AliasTable, RejectsBadWeights) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasTable{std::span<const double>{empty}},
               std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(AliasTable{std::span<const double>{negative}},
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>{zeros}},
               std::invalid_argument);
}

TEST(AliasTable, NormalizesProbabilities) {
  const std::vector<double> weights{2.0, 6.0, 2.0};
  AliasTable table{weights};
  EXPECT_NEAR(table.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(table.probability(2), 0.2, 1e-12);
}

TEST(AliasTable, SingleBucketAlwaysZero) {
  const std::vector<double> weights{3.5};
  AliasTable table{weights};
  Rng rng{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, EmpiricalMatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0, 0.0, 10.0};
  AliasTable table{weights};
  Rng rng{42};
  std::vector<double> counts(weights.size(), 0.0);
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) counts[table.sample(rng)] += 1.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = table.probability(i);
    const double tol =
        5.0 * std::sqrt(expected * (1 - expected) / kDraws) + 1e-4;
    EXPECT_NEAR(counts[i] / kDraws, expected, tol) << "bucket " << i;
  }
}

TEST(AliasTable, ZeroWeightBucketNeverSampled) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  AliasTable table{weights};
  Rng rng{42};
  for (int i = 0; i < 100000; ++i) {
    EXPECT_NE(table.sample(rng), 1u);
  }
}

TEST(AliasTable, HandlesManyBuckets) {
  std::vector<double> weights(10000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i % 7) + 0.1;
  }
  AliasTable table{weights};
  Rng rng{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(table.sample(rng), weights.size());
  }
}

}  // namespace
}  // namespace otac
