#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace otac {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist{0.0, 10.0, 10};
  hist.add(0.5);
  hist.add(9.5);
  hist.add(-100.0);  // clamps into bin 0
  hist.add(100.0);   // clamps into last bin
  EXPECT_DOUBLE_EQ(hist.count(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.count(9), 2.0);
  EXPECT_DOUBLE_EQ(hist.total(), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram hist{0.0, 1.0, 2};
  hist.add(0.25, 3.0);
  hist.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(hist.count(0), 3.0);
  EXPECT_DOUBLE_EQ(hist.count(1), 1.0);
  EXPECT_DOUBLE_EQ(hist.total(), 4.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram hist{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) hist.add(i + 0.5);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(hist.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(hist.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, QuantileOnEmptyReturnsLo) {
  Histogram hist{5.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 5.0);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram hist{0.0, 2.0, 2};
  hist.add(0.5);
  hist.add(1.5);
  hist.add(1.6);
  const std::string art = hist.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace otac
