#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/failpoint_names.h"

namespace otac::fail {
namespace {

/// Every test arms failpoints on the process-wide registry; disarm on both
/// sides so tests cannot leak enabled failpoints into each other.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().disable_all(); }
  void TearDown() override { Registry::instance().disable_all(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(Registry::instance().should_fire("test.never_enabled"));
  EXPECT_EQ(Registry::instance().hits("test.never_enabled"), 1u);
  EXPECT_EQ(Registry::instance().fires("test.never_enabled"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresUntilDisabled) {
  auto& registry = Registry::instance();
  registry.enable("test.always");
  EXPECT_TRUE(registry.should_fire("test.always"));
  EXPECT_TRUE(registry.should_fire("test.always"));
  registry.disable("test.always");
  EXPECT_FALSE(registry.should_fire("test.always"));
  EXPECT_EQ(registry.fires("test.always"), 2u);
}

TEST_F(FailpointTest, OnceDisarmsAfterFirstFiring) {
  auto& registry = Registry::instance();
  registry.enable_once("test.once");
  EXPECT_TRUE(registry.should_fire("test.once"));
  EXPECT_FALSE(registry.should_fire("test.once"));
  EXPECT_FALSE(registry.should_fire("test.once"));
  EXPECT_EQ(registry.fires("test.once"), 1u);
  EXPECT_EQ(registry.hits("test.once"), 3u);
}

TEST_F(FailpointTest, EveryNthFiresPeriodically) {
  auto& registry = Registry::instance();
  registry.enable_every_nth("test.nth", 3);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (registry.should_fire("test.nth")) ++fired;
  }
  EXPECT_EQ(fired, 3);  // evaluations 3, 6, 9
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto& registry = Registry::instance();
  const auto run = [&registry] {
    registry.enable_probability("test.prob", 0.5, 1234);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(registry.should_fire("test.prob"));
    }
    return outcomes;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);  // same seed -> same firing sequence
  const auto fired =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 16);  // p=0.5 over 64 draws: far from degenerate
  EXPECT_LT(fired, 48);
}

TEST_F(FailpointTest, WindowFiresExactlyInsideEvaluationRange) {
  auto& registry = Registry::instance();
  registry.enable_window("test.window", 3, 5);
  std::vector<bool> outcomes;
  for (int i = 0; i < 10; ++i) {
    outcomes.push_back(registry.should_fire("test.window"));
  }
  const std::vector<bool> expected{false, false, true, true, true,
                                   false, false, false, false, false};
  EXPECT_EQ(outcomes, expected);
  // Past the window the failpoint is fully disarmed, not just dormant.
  EXPECT_EQ(registry.fires("test.window"), 3u);
}

TEST_F(FailpointTest, WindowFromZeroClampsToFirstEvaluation) {
  auto& registry = Registry::instance();
  registry.enable_window("test.window0", 0, 2);
  EXPECT_TRUE(registry.should_fire("test.window0"));
  EXPECT_TRUE(registry.should_fire("test.window0"));
  EXPECT_FALSE(registry.should_fire("test.window0"));
}

TEST_F(FailpointTest, EmptyWindowNeverFires) {
  auto& registry = Registry::instance();
  registry.enable_window("test.window_empty", 5, 2);  // to < from
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(registry.should_fire("test.window_empty"));
  }
  EXPECT_EQ(registry.fires("test.window_empty"), 0u);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  auto& registry = Registry::instance();
  registry.enable_probability("test.p0", 0.0, 7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(registry.should_fire("test.p0"));
  }
}

TEST_F(FailpointTest, ReenableResetsCounters) {
  auto& registry = Registry::instance();
  registry.enable("test.reset");
  (void)registry.should_fire("test.reset");
  registry.enable_once("test.reset");
  EXPECT_EQ(registry.hits("test.reset"), 0u);
  EXPECT_EQ(registry.fires("test.reset"), 0u);
}

TEST_F(FailpointTest, ThrowMacroCarriesName) {
#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED
  Registry::instance().enable_once("test.throw");
  try {
    OTAC_FAILPOINT_THROW("test.throw");
    FAIL() << "failpoint did not fire";
  } catch (const FailpointTriggered& error) {
    EXPECT_EQ(error.failpoint(), "test.throw");
  }
  // Disarmed: the same site passes through.
  OTAC_FAILPOINT_THROW("test.throw");
#else
  GTEST_SKIP() << "built with OTAC_FAILPOINTS=OFF";
#endif
}

TEST_F(FailpointTest, EnableRejectsNamesMissingFromCentralRegistry) {
  auto& registry = Registry::instance();
  // A typo'd production name must fail loudly instead of arming a
  // failpoint that no site ever evaluates.
  EXPECT_THROW(registry.enable("checkpoint.write.crsh"),
               std::invalid_argument);
  EXPECT_THROW(registry.enable_once("definitely.not.registered"),
               std::invalid_argument);
  // Registered production names and the reserved test. prefix both arm.
  EXPECT_NO_THROW(registry.enable_once("checkpoint.write.crash"));
  EXPECT_NO_THROW(registry.enable_once("test.anything.goes"));
  registry.disable_all();
}

TEST_F(FailpointTest, EnableErrorListsEveryRegisteredName) {
  auto& registry = Registry::instance();
  try {
    registry.enable("checkpoint.write.crsh");
    FAIL() << "unknown name did not throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("checkpoint.write.crsh"), std::string::npos);
    // Every registered name appears, so the fix is one read away.
    for (const auto known : kKnownFailpoints) {
      EXPECT_NE(message.find(std::string{known}), std::string::npos)
          << "missing from error message: " << known;
    }
  }
}

TEST_F(FailpointTest, ChaosFailpointNamesAreRegistered) {
  auto& registry = Registry::instance();
  // The overload-resilience layer's fault surfaces: all enable cleanly.
  EXPECT_NO_THROW(registry.enable_window("chaos.flash_crowd", 1, 8));
  EXPECT_NO_THROW(registry.enable_probability("storage.ssd.write_error", 0.1,
                                              /*seed=*/9));
  EXPECT_NO_THROW(registry.enable_once("trainer.train.hang"));
  registry.disable_all();
}

TEST_F(FailpointTest, KnownFailpointTableIsSortedAndQueryable) {
  // The central table is the linter's ground truth; keep it sorted so
  // additions are reviewable diffs.
  EXPECT_TRUE(std::is_sorted(std::begin(kKnownFailpoints),
                             std::end(kKnownFailpoints)));
  for (const auto name : kKnownFailpoints) {
    EXPECT_TRUE(is_known_failpoint(name)) << name;
  }
  EXPECT_FALSE(is_known_failpoint("not.a.failpoint"));
  EXPECT_TRUE(is_known_failpoint("test.synthetic"));
}

TEST_F(FailpointTest, EvaluatedNamesListsHitFailpoints) {
  auto& registry = Registry::instance();
  (void)registry.should_fire("test.listed");
  const auto names = registry.evaluated_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.listed"),
            names.end());
}

}  // namespace
}  // namespace otac::fail
