#include "util/flags.h"

#include <gtest/gtest.h>

namespace otac {
namespace {

FlagParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser{static_cast<int>(argv.size()), argv.data()};
}

TEST(Flags, EqualsAndSpaceForms) {
  const auto flags = parse({"--alpha=1.5", "--name", "value"});
  EXPECT_DOUBLE_EQ(flags.get("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get("name", std::string{}), "value");
}

TEST(Flags, BooleanSwitch) {
  const auto flags = parse({"--verbose", "--count=3"});
  EXPECT_TRUE(flags.get("verbose", false));
  EXPECT_EQ(flags.get("count", std::int64_t{0}), 3);
}

TEST(Flags, BooleanExplicitValues) {
  const auto flags = parse({"--a=true", "--b=0", "--c", "no"});
  EXPECT_TRUE(flags.get("a", false));
  EXPECT_FALSE(flags.get("b", true));
  EXPECT_FALSE(flags.get("c", true));
  EXPECT_THROW((void)parse({"--d=maybe"}).get("d", false),
               std::invalid_argument);
}

TEST(Flags, FallbacksWhenAbsent) {
  const auto flags = parse({});
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", std::string{"x"}), "x");
  EXPECT_DOUBLE_EQ(flags.get("missing", 2.5), 2.5);
  EXPECT_EQ(flags.get("missing", std::int64_t{7}), 7);
}

TEST(Flags, Positionals) {
  const auto flags = parse({"input.csv", "--k=2", "output.csv"});
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "input.csv");
  EXPECT_EQ(flags.positionals()[1], "output.csv");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Flags, MalformedNumbersThrow) {
  const auto flags = parse({"--x=abc"});
  EXPECT_THROW((void)flags.get("x", 1.0), std::invalid_argument);
  EXPECT_THROW((void)flags.get("x", std::int64_t{1}), std::invalid_argument);
}

TEST(Flags, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace otac
