#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace otac {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent{7};
  const Rng child_before = parent.fork(3);
  Rng parent_copy{7};
  (void)parent_copy;  // fork does not consume parent state
  Rng child_again = Rng{7}.fork(3);
  Rng lhs = child_before;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lhs.next_u64(), child_again.next_u64());
  }
}

TEST(Rng, ForksOfDistinctStreamsDiffer) {
  Rng parent{7};
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{42};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleOpenNeverZero) {
  Rng rng{42};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.next_double_open(), 0.0);
  }
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng{42};
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.next_below(kBound);
    ASSERT_LT(x, kBound);
    counts[x] += 1;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, 500);
  }
}

TEST(Rng, NextBelowDegenerateBounds) {
  Rng rng{42};
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{42};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.uniform_int(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{42};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{42};
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, LomaxMeanMatchesClosedForm) {
  // E[Lomax(shape, scale)] = scale / (shape - 1) for shape > 1.
  Rng rng{42};
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.lomax(shape, scale);
  EXPECT_NEAR(sum / kDraws, scale / (shape - 1.0), 0.05);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng{42};
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.05);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Rng rng{42};
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng{42};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / kDraws;
  const double sample_var = sum_sq / kDraws - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, 0.05 * mean + 0.02);
  EXPECT_NEAR(sample_var, mean, 0.08 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng{42};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

}  // namespace
}  // namespace otac
