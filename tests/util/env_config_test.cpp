#include "util/env_config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace otac {
namespace {

TEST(EnvConfig, FallbacksWhenUnset) {
  unsetenv("OTAC_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("OTAC_TEST_VAR", 2.5), 2.5);
  EXPECT_EQ(env_int("OTAC_TEST_VAR", 7), 7);
  EXPECT_EQ(env_string("OTAC_TEST_VAR", "dflt"), "dflt");
}

TEST(EnvConfig, ParsesValues) {
  setenv("OTAC_TEST_VAR", "3.25", 1);
  EXPECT_DOUBLE_EQ(env_double("OTAC_TEST_VAR", 0.0), 3.25);
  setenv("OTAC_TEST_VAR", "-12", 1);
  EXPECT_EQ(env_int("OTAC_TEST_VAR", 0), -12);
  setenv("OTAC_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("OTAC_TEST_VAR", ""), "hello");
  unsetenv("OTAC_TEST_VAR");
}

TEST(EnvConfig, MalformedFallsBack) {
  setenv("OTAC_TEST_VAR", "12abc", 1);
  EXPECT_DOUBLE_EQ(env_double("OTAC_TEST_VAR", 1.5), 1.5);
  EXPECT_EQ(env_int("OTAC_TEST_VAR", 9), 9);
  unsetenv("OTAC_TEST_VAR");
}

TEST(EnvConfig, GlobalKnobs) {
  unsetenv("OTAC_SEED");
  unsetenv("OTAC_SCALE");
  EXPECT_EQ(global_seed(), 42u);
  EXPECT_DOUBLE_EQ(global_scale(), 1.0);
  setenv("OTAC_SCALE", "-2", 1);  // nonpositive scale is rejected
  EXPECT_DOUBLE_EQ(global_scale(), 1.0);
  setenv("OTAC_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(global_scale(), 0.25);
  unsetenv("OTAC_SCALE");
}

}  // namespace
}  // namespace otac
