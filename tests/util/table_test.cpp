#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace otac {
namespace {

TEST(TablePrinter, RejectsEmptyHeaderAndArityMismatch) {
  EXPECT_THROW(TablePrinter{std::vector<std::string>{}}, std::invalid_argument);
  TablePrinter table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, FormatsAlignedColumns) {
  TablePrinter table{{"name", "value"}};
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, FmtAndPct) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::pct(0.1234, 1), "12.3%");
}

TEST(TablePrinter, CsvEscapesSpecialCharacters) {
  TablePrinter table{{"a", "b"}};
  table.add_row({"plain", "has,comma"});
  table.add_row({"has\"quote", "line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, WriteCsvRoundTrip) {
  TablePrinter table{{"k", "v"}};
  table.add_row({"alpha", "1"});
  const std::string path = testing::TempDir() + "/otac_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "k,v");
  std::remove(path.c_str());
}

TEST(TablePrinter, WriteCsvFailsOnBadPath) {
  TablePrinter table{{"k"}};
  EXPECT_FALSE(table.write_csv("/nonexistent_dir_xyz/file.csv"));
}

}  // namespace
}  // namespace otac
