#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace otac {
namespace {

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(Zipf, SingleElementAlwaysOne) {
  ZipfSampler zipf{1, 1.2};
  Rng rng{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(Zipf, SamplesWithinRange) {
  ZipfSampler zipf{1000, 0.9};
  Rng rng{42};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler zipf{500, 1.3};
  double total = 0.0;
  for (std::uint64_t k = 1; k <= 500; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(501), 0.0);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, EmpiricalFrequenciesMatchPmf) {
  const double alpha = GetParam();
  constexpr std::uint64_t kN = 50;
  ZipfSampler zipf{kN, alpha};
  Rng rng{42};
  std::vector<double> counts(kN + 1, 0.0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.sample(rng)] += 1.0;
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const double expected = zipf.pmf(k);
    const double observed = counts[k] / kDraws;
    // 5 sigma binomial tolerance plus small absolute floor.
    const double tol =
        5.0 * std::sqrt(expected * (1 - expected) / kDraws) + 1e-4;
    EXPECT_NEAR(observed, expected, tol) << "k=" << k << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.5));

TEST(Zipf, UniformWhenAlphaZero) {
  ZipfSampler zipf{10, 0.0};
  for (std::uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, HeavierAlphaConcentratesOnHead) {
  ZipfSampler light{1000, 0.6};
  ZipfSampler heavy{1000, 1.8};
  Rng rng1{42};
  Rng rng2{42};
  double light_head = 0.0;
  double heavy_head = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (light.sample(rng1) <= 10) light_head += 1.0;
    if (heavy.sample(rng2) <= 10) heavy_head += 1.0;
  }
  EXPECT_GT(heavy_head, light_head * 2.0);
}

}  // namespace
}  // namespace otac
