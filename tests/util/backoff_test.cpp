#include "util/backoff.h"

#include <gtest/gtest.h>

#include <vector>

namespace otac {
namespace {

std::vector<double> drain(ExponentialBackoff& backoff) {
  std::vector<double> delays;
  while (!backoff.exhausted()) delays.push_back(backoff.next_delay_s());
  return delays;
}

TEST(Backoff, SameSeedSameSequence) {
  BackoffConfig config;
  config.max_retries = 8;
  ExponentialBackoff a{config, 42};
  ExponentialBackoff b{config, 42};
  EXPECT_EQ(drain(a), drain(b));
}

TEST(Backoff, DifferentSeedsDiverge) {
  BackoffConfig config;
  config.max_retries = 8;
  ExponentialBackoff a{config, 1};
  ExponentialBackoff b{config, 2};
  EXPECT_NE(drain(a), drain(b));
}

TEST(Backoff, DelaysStayInsideJitterEnvelope) {
  BackoffConfig config;
  config.base_s = 0.001;
  config.multiplier = 2.0;
  config.cap_s = 0.016;
  config.jitter = 0.5;
  config.max_retries = 12;
  ExponentialBackoff backoff{config, 7};
  for (int k = 0; !backoff.exhausted(); ++k) {
    const double envelope = backoff.envelope_s(k);
    const double delay = backoff.next_delay_s();
    EXPECT_LE(delay, envelope);
    // next_double() < 1, so the lower edge is exclusive only in theory;
    // GE against the closed bound is the documented contract.
    EXPECT_GE(delay, envelope * (1.0 - config.jitter));
    EXPECT_LE(delay, config.cap_s);
  }
}

TEST(Backoff, EnvelopeGrowsGeometricallyThenCaps) {
  BackoffConfig config;
  config.base_s = 0.001;
  config.multiplier = 2.0;
  config.cap_s = 0.004;
  ExponentialBackoff backoff{config, 0};
  EXPECT_DOUBLE_EQ(backoff.envelope_s(0), 0.001);
  EXPECT_DOUBLE_EQ(backoff.envelope_s(1), 0.002);
  EXPECT_DOUBLE_EQ(backoff.envelope_s(2), 0.004);
  EXPECT_DOUBLE_EQ(backoff.envelope_s(3), 0.004);   // capped
  EXPECT_DOUBLE_EQ(backoff.envelope_s(60), 0.004);  // no overflow blowup
}

TEST(Backoff, ZeroJitterIsExactEnvelope) {
  BackoffConfig config;
  config.jitter = 0.0;
  config.max_retries = 4;
  ExponentialBackoff backoff{config, 99};
  for (int k = 0; !backoff.exhausted(); ++k) {
    EXPECT_DOUBLE_EQ(backoff.next_delay_s(), backoff.envelope_s(k));
  }
}

TEST(Backoff, BudgetIsExactlyMaxRetries) {
  BackoffConfig config;
  config.max_retries = 3;
  ExponentialBackoff backoff{config, 0};
  EXPECT_EQ(drain(backoff).size(), 3U);
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.attempt(), 3);
}

TEST(Backoff, ZeroRetriesIsImmediatelyExhausted) {
  BackoffConfig config;
  config.max_retries = 0;
  ExponentialBackoff backoff{config, 0};
  EXPECT_TRUE(backoff.exhausted());
}

TEST(Backoff, ResetRewindsBudgetButNotJitterStream) {
  BackoffConfig config;
  config.max_retries = 2;
  config.jitter = 1.0;
  ExponentialBackoff backoff{config, 5};
  const std::vector<double> first = drain(backoff);
  backoff.reset();
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_EQ(backoff.attempt(), 0);
  const std::vector<double> second = drain(backoff);
  ASSERT_EQ(first.size(), second.size());
  // The rng stream continues across reset, so with full jitter the
  // sequences should (with overwhelming probability) differ.
  EXPECT_NE(first, second);
}

TEST(Backoff, SanitizesDegenerateConfig) {
  BackoffConfig config;
  config.base_s = -1.0;
  config.cap_s = -2.0;
  config.multiplier = 0.0;
  config.jitter = 3.0;
  config.max_retries = -4;
  ExponentialBackoff backoff{config, 0};
  EXPECT_EQ(backoff.config().base_s, 0.0);
  EXPECT_GE(backoff.config().cap_s, backoff.config().base_s);
  EXPECT_EQ(backoff.config().multiplier, 1.0);
  EXPECT_EQ(backoff.config().jitter, 1.0);
  EXPECT_EQ(backoff.config().max_retries, 0);
  EXPECT_TRUE(backoff.exhausted());
}

}  // namespace
}  // namespace otac
