#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace otac {
namespace {

TEST(SimTime, Arithmetic) {
  const SimTime t{100};
  EXPECT_EQ((t + 50).seconds, 150);
  EXPECT_EQ((t - 30).seconds, 70);
  EXPECT_EQ(SimTime{150} - t, 50);
  EXPECT_LT(t, SimTime{101});
}

TEST(SimTime, FromDays) {
  EXPECT_EQ(from_days(1.0).seconds, 86400);
  EXPECT_EQ(from_days(0.5).seconds, 43200);
  EXPECT_EQ(from_days(9.0).seconds, 9 * 86400);
}

TEST(SimTime, DayIndexFloorsNegatives) {
  EXPECT_EQ(day_index(SimTime{0}), 0);
  EXPECT_EQ(day_index(SimTime{86399}), 0);
  EXPECT_EQ(day_index(SimTime{86400}), 1);
  EXPECT_EQ(day_index(SimTime{-1}), -1);
  EXPECT_EQ(day_index(SimTime{-86400}), -1);
  EXPECT_EQ(day_index(SimTime{-86401}), -2);
}

TEST(SimTime, SecondOfDayAlwaysNonNegative) {
  EXPECT_EQ(second_of_day(SimTime{0}), 0);
  EXPECT_EQ(second_of_day(SimTime{-1}), 86399);
  EXPECT_EQ(second_of_day(SimTime{86400 + 7}), 7);
}

TEST(SimTime, HourAndMinuteOfDay) {
  const SimTime eight_pm{20 * 3600 + 15 * 60};
  EXPECT_EQ(hour_of_day(eight_pm), 20);
  EXPECT_EQ(minute_of_day(eight_pm), 20 * 60 + 15);
  EXPECT_EQ(hour_of_day(SimTime{-3600}), 23);
}

TEST(SimTime, TenMinuteBuckets) {
  EXPECT_EQ(ten_minute_buckets(0), 0);
  EXPECT_EQ(ten_minute_buckets(599), 0);
  EXPECT_EQ(ten_minute_buckets(600), 1);
  EXPECT_EQ(ten_minute_buckets(3600), 6);
}

}  // namespace
}  // namespace otac
