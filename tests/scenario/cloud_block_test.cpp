// Cloud block-storage generator pins (scenario/cloud_block.h): the
// workload must be deterministic, sorted, and actually shaped like the
// claim — a small hot random-I/O set plus one-time large sequential runs
// holding roughly the configured share of requests.
#include "scenario/cloud_block.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/sim_time.h"

namespace otac::scenario {
namespace {

CloudBlockConfig small_config() {
  CloudBlockConfig config;
  config.volumes = 8;
  config.hot_blocks = 500;
  config.requests = 20'000;
  config.horizon_days = 1.0;
  return config;
}

TEST(CloudBlock, DeterministicForFixedConfig) {
  const Trace a = generate_cloud_block_trace(small_config());
  const Trace b = generate_cloud_block_trace(small_config());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  ASSERT_EQ(a.catalog.photo_count(), b.catalog.photo_count());
  ASSERT_EQ(a.catalog.owner_count(), b.catalog.owner_count());
  EXPECT_EQ(a.horizon.seconds, b.horizon.seconds);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].time.seconds, b.requests[i].time.seconds);
    ASSERT_EQ(a.requests[i].photo, b.requests[i].photo);
    ASSERT_EQ(a.requests[i].terminal, b.requests[i].terminal);
  }
  CloudBlockConfig reseeded = small_config();
  reseeded.seed = 8;
  const Trace c = generate_cloud_block_trace(reseeded);
  bool identical = c.requests.size() == a.requests.size();
  for (std::size_t i = 0; identical && i < a.requests.size(); ++i) {
    identical = a.requests[i].photo == c.requests[i].photo &&
                a.requests[i].time.seconds == c.requests[i].time.seconds;
  }
  EXPECT_FALSE(identical) << "seed must actually steer the stream";
}

TEST(CloudBlock, RequestsSortedAndIdsInRange) {
  const Trace trace = generate_cloud_block_trace(small_config());
  std::int64_t previous_time = std::numeric_limits<std::int64_t>::min();
  PhotoId previous_photo = 0;
  for (const Request& request : trace.requests) {
    ASSERT_LT(request.photo, trace.catalog.photo_count());
    if (request.time.seconds == previous_time) {
      ASSERT_GE(request.photo, previous_photo) << "ties must sort by photo";
    } else {
      ASSERT_GT(request.time.seconds, previous_time);
    }
    previous_time = request.time.seconds;
    previous_photo = request.photo;
  }
  for (PhotoId id = 0; id < trace.catalog.photo_count(); ++id) {
    ASSERT_LT(trace.catalog.photo(id).owner, trace.catalog.owner_count());
  }
  EXPECT_GE(trace.horizon.seconds,
            trace.requests.back().time.seconds + 1);
}

TEST(CloudBlock, SequentialShareTracksConfig) {
  const CloudBlockConfig config = small_config();
  const Trace trace = generate_cloud_block_trace(config);
  // Run blocks are the large objects (run_block_bytes plus a small
  // jitter); hot blocks the small ones. Classify requests by object size
  // to recover the split.
  std::size_t sequential = 0;
  for (const Request& request : trace.requests) {
    if (trace.catalog.photo(request.photo).size_bytes >=
        config.run_block_bytes) {
      ++sequential;
    }
  }
  const double share =
      static_cast<double>(sequential) /
      static_cast<double>(trace.requests.size());
  EXPECT_NEAR(share, config.sequential_share, 0.05);
  // And the sequential stream must touch far more distinct blocks than the
  // hot stream re-reads — that asymmetry is the scenario's entire point.
  std::set<PhotoId> sequential_blocks;
  std::set<PhotoId> hot_blocks;
  for (const Request& request : trace.requests) {
    if (trace.catalog.photo(request.photo).size_bytes >=
        config.run_block_bytes) {
      sequential_blocks.insert(request.photo);
    } else {
      hot_blocks.insert(request.photo);
    }
  }
  EXPECT_GT(sequential_blocks.size(), hot_blocks.size() * 2);
}

TEST(CloudBlock, ScaledShrinksVolumeNotShape) {
  const CloudBlockConfig base = small_config();
  const CloudBlockConfig half = scaled(base, 0.5);
  EXPECT_EQ(half.requests, base.requests / 2);
  EXPECT_EQ(half.hot_blocks, base.hot_blocks / 2);
  EXPECT_LE(half.volumes, base.volumes);
  EXPECT_GT(half.volumes, 0u);
  EXPECT_DOUBLE_EQ(half.sequential_share, base.sequential_share);
  EXPECT_DOUBLE_EQ(half.hot_zipf_alpha, base.hot_zipf_alpha);
  EXPECT_EQ(half.run_block_bytes, base.run_block_bytes);
  const Trace trace = generate_cloud_block_trace(half);
  EXPECT_GT(trace.requests.size(), half.requests / 2);
  EXPECT_THROW((void)scaled(base, 0.0), std::invalid_argument);
  EXPECT_THROW((void)scaled(base, -1.0), std::invalid_argument);
}

TEST(CloudBlock, HorizonCoversConfiguredDays) {
  const Trace trace = generate_cloud_block_trace(small_config());
  EXPECT_GE(trace.horizon.seconds,
            static_cast<std::int64_t>(small_config().horizon_days *
                                      kSecondsPerDay));
}

}  // namespace
}  // namespace otac::scenario
