// Scenario registry pins (scenario/registry.h):
//
//  - the registered names are exactly scenario_names.h's kKnownScenarios,
//    and find() rejects anything else listing the known names;
//  - every scenario replayed twice with the same seed is bit-identical —
//    RunResult's defaulted operator== covers stats (including the
//    eviction-sequence fingerprint), criteria, daily matrices, trainings,
//    and degradation counters, so one EXPECT per (scenario, mode);
//  - shards=1 vs shards=4 are sum-equivalent per scenario: same request
//    count, coherent hits+insertions+rejected accounting on both, and
//    identical global admission criteria.
#include "scenario/registry.h"

#include <gtest/gtest.h>

#include <string>

#include "scenario/scenario_names.h"

namespace otac::scenario {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr double kScale = 0.1;  // small replica of the CI-scale workloads

TEST(ScenarioRegistry, NamesMatchPinnedRegistry) {
  const std::vector<ScenarioSpec>& specs = all();
  ASSERT_EQ(specs.size(), std::size(kKnownScenarios));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, kKnownScenarios[i]);
    EXPECT_TRUE(is_known_scenario(specs[i].name));
    EXPECT_FALSE(specs[i].description.empty());
    ASSERT_NE(specs[i].make_trace, nullptr);
    EXPECT_GT(specs[i].shards, 0u);
    EXPECT_GT(specs[i].capacity_fraction, 0.0);
  }
}

TEST(ScenarioRegistry, FindRejectsUnknownNamesListingKnownOnes) {
  EXPECT_EQ(find("scan_flood").name, "scan_flood");
  try {
    (void)find("not_a_scenario");
    FAIL() << "unknown scenario accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("not_a_scenario"), std::string::npos);
    // The message must teach the caller the valid vocabulary.
    for (const std::string_view name : kKnownScenarios) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(ScenarioRegistry, TracesAreDeterministicSortedAndNonTrivial) {
  for (const ScenarioSpec& spec : all()) {
    const Trace a = spec.make_trace(kSeed, kScale);
    const Trace b = spec.make_trace(kSeed, kScale);
    ASSERT_GT(a.requests.size(), 1'000u) << spec.name;
    ASSERT_EQ(a.requests.size(), b.requests.size()) << spec.name;
    ASSERT_EQ(a.catalog.photo_count(), b.catalog.photo_count()) << spec.name;
    std::int64_t previous = 0;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      ASSERT_EQ(a.requests[i].time.seconds, b.requests[i].time.seconds)
          << spec.name;
      ASSERT_EQ(a.requests[i].photo, b.requests[i].photo) << spec.name;
      ASSERT_LT(a.requests[i].photo, a.catalog.photo_count()) << spec.name;
      ASSERT_GE(a.requests[i].time.seconds, previous) << spec.name;
      previous = a.requests[i].time.seconds;
    }
    // Adapter traces come through the CSV import path without a latent
    // score; synthetic ones carry one entry per photo. Either way it must
    // stay aligned with the catalog.
    ASSERT_TRUE(a.latent_score.empty() ||
                a.latent_score.size() == a.catalog.photo_count())
        << spec.name;
  }
}

TEST(ScenarioRegistry, EveryScenarioReplaysBitIdentically) {
  for (const ScenarioSpec& spec : all()) {
    const ScenarioRunner runner{spec, kSeed, kScale};
    for (const AdmissionMode mode :
         {AdmissionMode::original, AdmissionMode::proposal}) {
      const RunResult first = runner.run(mode);
      const RunResult second = runner.run(mode);
      EXPECT_TRUE(first == second)
          << spec.name << '/' << admission_mode_name(mode)
          << ": hits " << first.stats.hits << " vs " << second.stats.hits
          << ", eviction_hash " << first.stats.eviction_hash << " vs "
          << second.stats.eviction_hash << ", shed "
          << first.degradation.shed_requests << " vs "
          << second.degradation.shed_requests;
      EXPECT_EQ(first.stats.requests, runner.trace().requests.size());
      if (mode == AdmissionMode::proposal) {
        EXPECT_GT(first.trainings, 0) << spec.name;
      }
    }
  }
}

TEST(ScenarioRegistry, ShardCountsAreSumEquivalent) {
  for (const ScenarioSpec& spec : all()) {
    const ScenarioRunner runner{spec, kSeed, kScale};
    for (const AdmissionMode mode :
         {AdmissionMode::original, AdmissionMode::proposal}) {
      RunConfig config = runner.config(mode);
      config.shards = 1;
      const RunResult one = runner.run_with(config);
      config.shards = 4;
      const RunResult four = runner.run_with(config);
      const std::string label =
          spec.name + "/" + std::string{admission_mode_name(mode)};
      // Shard partitioning must conserve the request stream...
      EXPECT_EQ(one.stats.requests, four.stats.requests) << label;
      EXPECT_EQ(four.stats.requests, runner.trace().requests.size()) << label;
      // ...and the per-shard accounting must stay closed on both. Shed
      // requests count as rejections, so the identity holds under
      // overload; the one legitimate gap is an admitted miss whose object
      // exceeds the (per-shard) capacity — policy.insert refuses and no
      // counter moves — so bound that skip instead of pinning equality.
      for (const auto& [shards, result] :
           {std::pair<int, const RunResult*>{1, &one}, {4, &four}}) {
        const std::uint64_t accounted = result->stats.hits +
                                        result->stats.insertions +
                                        result->stats.rejected;
        EXPECT_LE(accounted, result->stats.requests)
            << label << " shards=" << shards;
        EXPECT_GE(accounted + 16, result->stats.requests)
            << label << " shards=" << shards << " hits=" << result->stats.hits
            << " insertions=" << result->stats.insertions
            << " rejected=" << result->stats.rejected;
      }
      // Admission criteria are global — independent of sharding.
      EXPECT_TRUE(one.criteria == four.criteria) << label;
      EXPECT_EQ(one.cost_v, four.cost_v) << label;
      EXPECT_EQ(one.trainings, four.trainings) << label;
    }
  }
}

TEST(ScenarioMetricsSummary, DerivedRatesMatchRawCounters) {
  const ScenarioRunner runner{find("churn_purge"), kSeed, kScale};
  const RunResult result = runner.run(AdmissionMode::proposal);
  const ScenarioMetrics metrics = summarize(result);
  EXPECT_EQ(metrics.requests, result.stats.requests);
  EXPECT_EQ(metrics.hits, result.stats.hits);
  EXPECT_EQ(metrics.insertions, result.stats.insertions);
  EXPECT_EQ(metrics.shed_requests, result.degradation.shed_requests);
  EXPECT_EQ(metrics.degraded_admits, result.degradation.degraded_admits);
  EXPECT_EQ(metrics.trainings, result.trainings);
  EXPECT_NEAR(metrics.file_hit_rate,
              static_cast<double>(result.stats.hits) /
                  static_cast<double>(result.stats.requests),
              1e-12);
  EXPECT_GT(metrics.p99_latency_us, 0.0);

  Envelope envelope;  // defaults: any hit rate, any writes, zero shed
  EXPECT_TRUE(metrics.within(envelope));
  envelope.min_file_hit_rate = metrics.file_hit_rate + 0.01;
  EXPECT_FALSE(metrics.within(envelope));
  envelope.min_file_hit_rate = 0.0;
  envelope.max_byte_write_rate = metrics.byte_write_rate / 2.0;
  EXPECT_FALSE(metrics.within(envelope));
}

TEST(ScenarioRegistry, FlashCrowdDeclaresItsFailpoint) {
  const ScenarioSpec& spec = find("flash_crowd");
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0].failpoint, "chaos.flash_crowd");
  EXPECT_TRUE(spec.resilience.overload.enabled);
  // Per-request failpoints need a pinned evaluation order.
  EXPECT_EQ(spec.threads, 1u);
}

}  // namespace
}  // namespace otac::scenario
