// RocksDB block-cache adapter pins (scenario/rocksdb_trace.h): binary
// round-trip must be field-exact, every malformed-stream shape must be a
// clean runtime_error, and the record->Trace mapping must follow the
// documented field table (block key -> photo, cf -> owner, caller ->
// terminal, micros -> whole seconds).
#include "scenario/rocksdb_trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "trace/trace.h"

namespace otac::scenario {
namespace {

std::string serialized(const std::vector<RocksdbTraceRecord>& records) {
  std::stringstream out;
  write_rocksdb_trace(records, out);
  return out.str();
}

TEST(RocksdbTrace, SynthRoundTripFieldExact) {
  const std::vector<RocksdbTraceRecord> records = synth_rocksdb_records(7, 500);
  ASSERT_EQ(records.size(), 500u);
  std::stringstream buffer{serialized(records)};
  const std::vector<RocksdbTraceRecord> loaded = read_rocksdb_trace(buffer);
  // Defaulted operator== compares every field of every record.
  EXPECT_TRUE(loaded == records);
}

TEST(RocksdbTrace, ExtremeFieldValuesRoundTrip) {
  RocksdbTraceRecord record;
  record.access_time_us = std::numeric_limits<std::uint64_t>::max();
  record.block_key = std::numeric_limits<std::uint64_t>::max() - 1;
  record.get_id = 1;
  record.block_size = std::numeric_limits<std::uint32_t>::max();
  record.cf_id = std::numeric_limits<std::uint32_t>::max() - 2;
  record.level = 7;
  record.block_type = 255;
  record.caller = static_cast<std::uint8_t>(RocksdbCaller::flush);
  record.no_insert = 1;
  std::stringstream buffer{serialized({record, RocksdbTraceRecord{}})};
  const std::vector<RocksdbTraceRecord> loaded = read_rocksdb_trace(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0] == record);
  EXPECT_TRUE(loaded[1] == RocksdbTraceRecord{});
}

TEST(RocksdbTrace, EmptyRecordSetRoundTrips) {
  std::stringstream buffer{serialized({})};
  EXPECT_TRUE(read_rocksdb_trace(buffer).empty());
}

TEST(RocksdbTrace, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not a block-cache trace";
  EXPECT_THROW((void)read_rocksdb_trace(buffer), std::runtime_error);
}

TEST(RocksdbTrace, RejectsForwardVersion) {
  std::string bytes = serialized(synth_rocksdb_records(1, 8));
  const std::uint32_t next_version = kRocksdbTraceVersion + 1;
  std::memcpy(&bytes[sizeof(kRocksdbTraceMagic)], &next_version,
              sizeof(next_version));
  std::stringstream in{bytes};
  try {
    (void)read_rocksdb_trace(in);
    FAIL() << "version+1 stream loaded instead of being rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rocksdb_trace: unsupported version");
  }
}

TEST(RocksdbTrace, RejectsEveryShortReadPrefix) {
  const std::string full = serialized(synth_rocksdb_records(3, 16));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated{full.substr(0, cut)};
    EXPECT_THROW((void)read_rocksdb_trace(truncated), std::runtime_error)
        << "prefix length " << cut;
  }
}

TEST(RocksdbTrace, RejectsOversizedCountBeforeAllocating) {
  // Header then a count claiming 2^58 records backed by 8 payload bytes —
  // must be rejected by the stream-size bound, not attempted.
  std::string bytes;
  const auto append = [&bytes](const void* data, std::size_t size) {
    bytes.append(static_cast<const char*>(data), size);
  };
  append(&kRocksdbTraceMagic, sizeof(kRocksdbTraceMagic));
  append(&kRocksdbTraceVersion, sizeof(kRocksdbTraceVersion));
  const std::uint64_t huge = 1ULL << 58;
  append(&huge, sizeof(huge));
  const std::uint64_t filler = 0;
  append(&filler, sizeof(filler));
  std::stringstream in{bytes};
  try {
    (void)read_rocksdb_trace(in);
    FAIL() << "oversized count accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rocksdb_trace: record count exceeds stream size");
  }
}

TEST(RocksdbTraceCsv, ParsesHandWrittenLog) {
  std::stringstream csv;
  csv << "access_time_us,block_key,get_id,block_size,cf_id,level,block_type,"
         "caller,no_insert\n"
      << "1000,42,7,4096,1,2,0,0,0\n"
      << "2500,42,8,4096,1,2,0,4,1\n";
  const std::vector<RocksdbTraceRecord> records = read_rocksdb_trace_csv(csv);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].access_time_us, 1000u);
  EXPECT_EQ(records[0].block_key, 42u);
  EXPECT_EQ(records[0].get_id, 7u);
  EXPECT_EQ(records[0].block_size, 4096u);
  EXPECT_EQ(records[1].caller,
            static_cast<std::uint8_t>(RocksdbCaller::compaction));
  EXPECT_EQ(records[1].no_insert, 1u);
}

TEST(RocksdbTraceCsv, ErrorsNameTheOneBasedLine) {
  const auto importing = [](const std::string& body) -> std::string {
    std::stringstream csv;
    csv << "access_time_us,block_key,get_id,block_size,cf_id,level,"
           "block_type,caller,no_insert\n"
        << body;
    try {
      (void)read_rocksdb_trace_csv(csv);
    } catch (const std::runtime_error& error) {
      return error.what();
    }
    return {};
  };
  EXPECT_EQ(importing("1000,42,7,4096,1\n"),
            "rocksdb_trace: short row at line 2");
  EXPECT_EQ(importing("1000,42,7,4096,1,2,0,0,0\n"
                      "2000,nope,7,4096,1,2,0,0,0\n"),
            "rocksdb_trace: bad field 'nope' at line 3");
  // Negative and overflowing numerics reject rather than wrap.
  EXPECT_EQ(importing("1000,42,7,-4096,1,2,0,0,0\n"),
            "rocksdb_trace: bad field '-4096' at line 2");
  EXPECT_EQ(importing("1000,42,7,5000000000,1,2,0,0,0\n"),
            "rocksdb_trace: bad field '5000000000' at line 2");
  std::stringstream headerless;
  headerless << "1000,42,7,4096,1,2,0,0,0\n";
  EXPECT_THROW((void)read_rocksdb_trace_csv(headerless), std::runtime_error);
}

TEST(RocksdbAdapter, MapsFieldsOntoTraceModel) {
  std::vector<RocksdbTraceRecord> records;
  // Deliberately out of order: the adapter must stable-sort by time.
  RocksdbTraceRecord late;
  late.access_time_us = 7'000'000;
  late.block_key = 100;
  late.block_size = 4'096;
  late.cf_id = 2;
  late.caller = static_cast<std::uint8_t>(RocksdbCaller::compaction);
  RocksdbTraceRecord early;
  early.access_time_us = 1'000'000;
  early.block_key = 5;
  early.block_size = 65'536;
  early.cf_id = 0;
  early.caller = static_cast<std::uint8_t>(RocksdbCaller::get);
  RocksdbTraceRecord middle = early;
  middle.access_time_us = 3'500'000;
  middle.caller = static_cast<std::uint8_t>(RocksdbCaller::iterator);
  records = {late, early, middle};

  const Trace trace = trace_from_rocksdb_records(records);
  ASSERT_EQ(trace.requests.size(), 3u);
  // Two distinct block keys -> two photos; two distinct cfs -> two owners.
  EXPECT_EQ(trace.catalog.photo_count(), 2u);
  EXPECT_EQ(trace.catalog.owner_count(), 2u);
  // Times are epoch-relative whole seconds (epoch = earliest record).
  EXPECT_EQ(trace.requests[0].time.seconds, 0);
  EXPECT_EQ(trace.requests[1].time.seconds, 2);
  EXPECT_EQ(trace.requests[2].time.seconds, 6);
  // Same block key -> same photo across requests; sizes preserved.
  EXPECT_EQ(trace.requests[0].photo, trace.requests[1].photo);
  EXPECT_NE(trace.requests[0].photo, trace.requests[2].photo);
  EXPECT_EQ(trace.catalog.photo(trace.requests[0].photo).size_bytes, 65'536u);
  EXPECT_EQ(trace.catalog.photo(trace.requests[2].photo).size_bytes, 4'096u);
  // User-facing callers -> pc, background -> mobile.
  EXPECT_EQ(trace.requests[0].terminal, TerminalType::pc);
  EXPECT_EQ(trace.requests[1].terminal, TerminalType::pc);
  EXPECT_EQ(trace.requests[2].terminal, TerminalType::mobile);
}

TEST(RocksdbAdapter, RejectsEmptyAndZeroSized) {
  EXPECT_THROW((void)trace_from_rocksdb_records({}), std::runtime_error);
  RocksdbTraceRecord zero;
  zero.access_time_us = 1;
  zero.block_key = 9;
  zero.block_size = 0;
  try {
    (void)trace_from_rocksdb_records({zero});
    FAIL() << "zero-sized block accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rocksdb_trace: zero-sized block 9");
  }
}

TEST(RocksdbAdapter, ImportStreamEndToEnd) {
  const std::vector<RocksdbTraceRecord> records =
      synth_rocksdb_records(11, 2'000);
  std::stringstream buffer{serialized(records)};
  const Trace trace = import_rocksdb_trace(buffer);
  EXPECT_EQ(trace.requests.size(), records.size());
  // The dense remap keeps requests sorted and ids in range.
  std::int64_t previous = std::numeric_limits<std::int64_t>::min();
  for (const Request& request : trace.requests) {
    ASSERT_GE(request.time.seconds, previous);
    previous = request.time.seconds;
    ASSERT_LT(request.photo, trace.catalog.photo_count());
  }
  // Synthetic pacing must span multiple days so daily retrains fire when
  // the scenario replays this stream.
  EXPECT_GE(trace.horizon.seconds, 2 * kSecondsPerDay);
}

TEST(RocksdbAdapter, SynthIsDeterministic) {
  EXPECT_TRUE(synth_rocksdb_records(42, 1'000) ==
              synth_rocksdb_records(42, 1'000));
  EXPECT_FALSE(synth_rocksdb_records(42, 1'000) ==
               synth_rocksdb_records(43, 1'000));
}

}  // namespace
}  // namespace otac::scenario
