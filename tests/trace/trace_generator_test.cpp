#include "trace/trace_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/trace_stats.h"

namespace otac {
namespace {

WorkloadConfig test_config() {
  WorkloadConfig config;
  config.seed = 42;
  config.num_owners = 3000;
  config.num_photos = 60000;
  return config;
}

class TraceGeneratorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace{TraceGenerator{test_config()}.generate()};
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static const Trace& trace() { return *trace_; }

 private:
  static Trace* trace_;
};

Trace* TraceGeneratorFixture::trace_ = nullptr;

TEST_F(TraceGeneratorFixture, RequestsSortedByTime) {
  const auto& reqs = trace().requests;
  ASSERT_FALSE(reqs.empty());
  EXPECT_TRUE(std::is_sorted(reqs.begin(), reqs.end(),
                             [](const Request& a, const Request& b) {
                               return a.time.seconds < b.time.seconds;
                             }));
}

TEST_F(TraceGeneratorFixture, RequestsWithinHorizon) {
  for (const Request& r : trace().requests) {
    ASSERT_GE(r.time.seconds, 0);
    ASSERT_LT(r.time.seconds, trace().horizon.seconds);
  }
}

TEST_F(TraceGeneratorFixture, EveryPhotoAccessedAtLeastOnce) {
  std::vector<bool> seen(trace().catalog.photo_count(), false);
  for (const Request& r : trace().requests) seen[r.photo] = true;
  const auto missing = std::count(seen.begin(), seen.end(), false);
  EXPECT_EQ(missing, 0);
}

TEST_F(TraceGeneratorFixture, NoAccessBeforeUpload) {
  // First access of each photo must not precede its upload instant (for
  // photos uploaded inside the window).
  std::vector<std::int64_t> first(trace().catalog.photo_count(), -1);
  for (const Request& r : trace().requests) {
    if (first[r.photo] < 0) first[r.photo] = r.time.seconds;
  }
  for (PhotoId id = 0; id < first.size(); ++id) {
    const std::int64_t upload = trace().catalog.photo(id).upload_time.seconds;
    if (upload >= 0 && first[id] >= 0) {
      EXPECT_GT(first[id], upload) << "photo " << id;
    }
  }
}

TEST_F(TraceGeneratorFixture, OneTimeCalibrationHolds) {
  const TraceStats stats = compute_trace_stats(trace());
  const WorkloadConfig config = test_config();
  EXPECT_NEAR(stats.one_time_object_fraction(),
              config.one_time_object_fraction, 0.03);
  EXPECT_NEAR(stats.one_time_access_share(), config.one_time_access_share,
              0.03);
  // The paper's headline: hit rate capped at ~74.5% by compulsory misses.
  EXPECT_NEAR(stats.hit_rate_cap(), 0.745, 0.04);
}

TEST_F(TraceGeneratorFixture, DiurnalShapeVisible) {
  std::uint64_t evening = 0;
  std::uint64_t early = 0;
  for (const Request& r : trace().requests) {
    const int hour = hour_of_day(r.time);
    if (hour >= 19 && hour < 22) ++evening;
    if (hour >= 4 && hour < 7) ++early;
  }
  EXPECT_GT(evening, 2 * early);
}

TEST_F(TraceGeneratorFixture, MobileShareRoughlyMatches) {
  std::uint64_t mobile = 0;
  for (const Request& r : trace().requests) {
    if (r.terminal == TerminalType::mobile) ++mobile;
  }
  const double share =
      static_cast<double>(mobile) / trace().requests.size();
  EXPECT_NEAR(share, test_config().mobile_share, 0.02);
}

TEST_F(TraceGeneratorFixture, LatentScoreExported) {
  EXPECT_EQ(trace().latent_score.size(), trace().catalog.photo_count());
}

TEST_F(TraceGeneratorFixture, RecentPhotosDrawMoreAccessesPerPhoto) {
  // Age decay: photos uploaded inside the window should average more
  // in-window accesses than backlog photos.
  std::vector<std::uint32_t> counts(trace().catalog.photo_count(), 0);
  for (const Request& r : trace().requests) counts[r.photo] += 1;
  double in_window = 0.0, backlog = 0.0;
  std::size_t n_in = 0, n_back = 0;
  for (PhotoId id = 0; id < counts.size(); ++id) {
    if (trace().catalog.photo(id).upload_time.seconds >= 0) {
      in_window += counts[id];
      ++n_in;
    } else {
      backlog += counts[id];
      ++n_back;
    }
  }
  ASSERT_GT(n_in, 0u);
  ASSERT_GT(n_back, 0u);
  EXPECT_GT(in_window / n_in, backlog / n_back);
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  WorkloadConfig config = test_config();
  config.num_photos = 5000;
  config.num_owners = 500;
  const Trace a = TraceGenerator{config}.generate();
  const Trace b = TraceGenerator{config}.generate();
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].time.seconds, b.requests[i].time.seconds);
    ASSERT_EQ(a.requests[i].photo, b.requests[i].photo);
    ASSERT_EQ(a.requests[i].terminal, b.requests[i].terminal);
  }
}

TEST(TraceGenerator, SeedChangesTrace) {
  WorkloadConfig config = test_config();
  config.num_photos = 5000;
  config.num_owners = 500;
  const Trace a = TraceGenerator{config}.generate();
  config.seed = 43;
  const Trace b = TraceGenerator{config}.generate();
  bool any_diff = a.requests.size() != b.requests.size();
  for (std::size_t i = 0; !any_diff && i < a.requests.size(); ++i) {
    any_diff = a.requests[i].time.seconds != b.requests[i].time.seconds ||
               a.requests[i].photo != b.requests[i].photo;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGenerator, RejectsEmptyPopulation) {
  WorkloadConfig config = test_config();
  config.num_photos = 0;
  EXPECT_THROW(TraceGenerator{config}.generate(), std::invalid_argument);
}

TEST(TraceGenerator, ScaledConfigScalesCounts) {
  WorkloadConfig config = test_config();
  const WorkloadConfig half = scaled(config, 0.5);
  EXPECT_EQ(half.num_photos, config.num_photos / 2);
  EXPECT_EQ(half.num_owners, config.num_owners / 2);
  const WorkloadConfig tiny = scaled(config, 1e-9);
  EXPECT_GE(tiny.num_photos, 1u);
}

}  // namespace
}  // namespace otac
