#include "trace/sampler.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"
#include "trace/trace_stats.h"

namespace otac {
namespace {

Trace generated() {
  WorkloadConfig config;
  config.num_owners = 1000;
  config.num_photos = 20000;
  return TraceGenerator{config}.generate();
}

TEST(Sampler, RejectsZeroRatio) {
  const Trace trace = generated();
  Rng rng{42};
  EXPECT_THROW(sample_objects(trace, 0, rng), std::invalid_argument);
}

TEST(Sampler, RatioOneIsIdentity) {
  const Trace trace = generated();
  Rng rng{42};
  const Trace copy = sample_objects(trace, 1, rng);
  EXPECT_EQ(copy.requests.size(), trace.requests.size());
  EXPECT_EQ(copy.catalog.photo_count(), trace.catalog.photo_count());
}

TEST(Sampler, KeepsRoughlyOneInN) {
  const Trace trace = generated();
  Rng rng{42};
  const Trace sampled = sample_objects(trace, 10, rng);
  const double expected =
      static_cast<double>(trace.catalog.photo_count()) / 10.0;
  EXPECT_NEAR(static_cast<double>(sampled.catalog.photo_count()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Sampler, RemapsIdsDensely) {
  const Trace trace = generated();
  Rng rng{42};
  const Trace sampled = sample_objects(trace, 5, rng);
  for (const Request& r : sampled.requests) {
    ASSERT_LT(r.photo, sampled.catalog.photo_count());
  }
}

TEST(Sampler, PreservesPerObjectAccessCounts) {
  // Object sampling must not change an object's own access count — that is
  // the paper's reason for sampling objects instead of requests.
  const Trace trace = generated();
  std::vector<std::uint32_t> before(trace.catalog.photo_count(), 0);
  for (const Request& r : trace.requests) before[r.photo] += 1;

  Rng rng{42};
  const Trace sampled = sample_objects(trace, 7, rng);
  std::vector<std::uint32_t> after(sampled.catalog.photo_count(), 0);
  for (const Request& r : sampled.requests) after[r.photo] += 1;

  // Match sampled photos back by (owner, upload_time, size) triple;
  // spot-check the distribution instead: one-time fraction is preserved.
  const TraceStats full = compute_trace_stats(trace);
  const TraceStats sub = compute_trace_stats(sampled);
  EXPECT_NEAR(sub.one_time_object_fraction(), full.one_time_object_fraction(),
              0.03);
  // Mean accesses/object is dominated by a heavy tail, so a 1-in-7 object
  // sample has real variance: allow 30% relative slack.
  EXPECT_NEAR(sub.mean_accesses_per_object, full.mean_accesses_per_object,
              0.3 * full.mean_accesses_per_object);
}

TEST(Sampler, PreservesTimeOrder) {
  const Trace trace = generated();
  Rng rng{42};
  const Trace sampled = sample_objects(trace, 3, rng);
  for (std::size_t i = 1; i < sampled.requests.size(); ++i) {
    ASSERT_LE(sampled.requests[i - 1].time.seconds,
              sampled.requests[i].time.seconds);
  }
}

TEST(Sampler, CarriesLatentScores) {
  const Trace trace = generated();
  Rng rng{42};
  const Trace sampled = sample_objects(trace, 4, rng);
  EXPECT_EQ(sampled.latent_score.size(), sampled.catalog.photo_count());
}

}  // namespace
}  // namespace otac
