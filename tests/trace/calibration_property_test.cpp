// Property sweep: the generator's calibration targets must hold across
// seeds and across one-time-fraction settings, not just the default.
#include <gtest/gtest.h>

#include "trace/trace_generator.h"
#include "trace/trace_stats.h"

namespace otac {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CalibrationHoldsAcrossSeeds) {
  WorkloadConfig config;
  config.seed = GetParam();
  config.num_owners = 1'000;
  config.num_photos = 30'000;
  const Trace trace = TraceGenerator{config}.generate();
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_NEAR(stats.one_time_object_fraction(),
              config.one_time_object_fraction, 0.02);
  EXPECT_NEAR(stats.one_time_access_share(), config.one_time_access_share,
              0.025);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

class FractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FractionSweep, CalibrationHoldsAcrossTargets) {
  WorkloadConfig config;
  config.num_owners = 1'000;
  config.num_photos = 30'000;
  config.one_time_object_fraction = GetParam();
  config.one_time_access_share = GetParam() / 4.0;  // keep mean K feasible
  const Trace trace = TraceGenerator{config}.generate();
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_NEAR(stats.one_time_object_fraction(),
              config.one_time_object_fraction, 0.025);
  EXPECT_NEAR(stats.one_time_access_share(), config.one_time_access_share,
              0.025);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionSweep,
                         ::testing::Values(0.3, 0.45, 0.615, 0.8));

class HorizonSweep : public ::testing::TestWithParam<double> {};

TEST_P(HorizonSweep, RequestsRespectHorizon) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 8'000;
  config.horizon_days = GetParam();
  const Trace trace = TraceGenerator{config}.generate();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.horizon.seconds,
            static_cast<std::int64_t>(GetParam() * kSecondsPerDay));
  for (const Request& r : trace.requests) {
    ASSERT_GE(r.time.seconds, 0);
    ASSERT_LT(r.time.seconds, trace.horizon.seconds);
  }
  // Calibration independent of horizon length.
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_NEAR(stats.one_time_object_fraction(),
              config.one_time_object_fraction, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonSweep,
                         ::testing::Values(2.0, 9.0, 21.0));

}  // namespace
}  // namespace otac
