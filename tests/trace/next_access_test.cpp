#include "trace/next_access.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace make_manual_trace(const std::vector<PhotoId>& sequence,
                        std::size_t photo_count) {
  Trace trace;
  std::vector<PhotoMeta> photos(photo_count);
  for (auto& p : photos) p.size_bytes = 1000;
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  trace.horizon = SimTime{static_cast<std::int64_t>(sequence.size())};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Request r;
    r.time = SimTime{static_cast<std::int64_t>(i)};
    r.photo = sequence[i];
    trace.requests.push_back(r);
  }
  return trace;
}

TEST(NextAccess, HandPickedSequence) {
  // photos: A B A C B A
  const Trace trace = make_manual_trace({0, 1, 0, 2, 1, 0}, 3);
  const NextAccessInfo info = compute_next_access(trace);
  EXPECT_EQ(info.next[0], 2u);
  EXPECT_EQ(info.next[1], 4u);
  EXPECT_EQ(info.next[2], 5u);
  EXPECT_EQ(info.next[3], kNoNextAccess);
  EXPECT_EQ(info.next[4], kNoNextAccess);
  EXPECT_EQ(info.next[5], kNoNextAccess);

  EXPECT_FALSE(info.prev_seen[0]);
  EXPECT_FALSE(info.prev_seen[1]);
  EXPECT_TRUE(info.prev_seen[2]);
  EXPECT_FALSE(info.prev_seen[3]);
  EXPECT_TRUE(info.prev_seen[4]);
  EXPECT_TRUE(info.prev_seen[5]);
}

TEST(NextAccess, ReaccessDistance) {
  const Trace trace = make_manual_trace({0, 1, 0}, 2);
  const NextAccessInfo info = compute_next_access(trace);
  EXPECT_EQ(info.reaccess_distance(0), 2u);
  EXPECT_EQ(info.reaccess_distance(1), kNoNextAccess);
}

TEST(NextAccess, EmptyTrace) {
  const Trace trace = make_manual_trace({}, 1);
  const NextAccessInfo info = compute_next_access(trace);
  EXPECT_TRUE(info.next.empty());
  EXPECT_TRUE(info.prev_seen.empty());
}

TEST(NextAccess, ConsistentOnGeneratedTrace) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 5000;
  const Trace trace = TraceGenerator{config}.generate();
  const NextAccessInfo info = compute_next_access(trace);
  ASSERT_EQ(info.next.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const std::uint64_t nxt = info.next[i];
    if (nxt == kNoNextAccess) continue;
    ASSERT_LT(nxt, trace.requests.size());
    ASSERT_GT(nxt, i);
    EXPECT_EQ(trace.requests[nxt].photo, trace.requests[i].photo);
    // No intermediate occurrence: the next pointer of position nxt must be
    // strictly beyond nxt, and prev_seen at nxt must be true.
    EXPECT_TRUE(info.prev_seen[nxt]);
  }
}

}  // namespace
}  // namespace otac
