#include "trace/diurnal.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace otac {
namespace {

TEST(Diurnal, RejectsFlatOrInvertedCurve) {
  DiurnalConfig config;
  config.peak_to_trough = 1.0;
  EXPECT_THROW(DiurnalModel{config}, std::invalid_argument);
}

TEST(Diurnal, PeakAndTroughRatio) {
  DiurnalConfig config;
  config.peak_hour = 20.0;
  config.peak_to_trough = 6.0;
  DiurnalModel model{config};
  const double peak = model.intensity(20.0);
  const double trough = model.intensity(8.0);  // antipodal to the peak
  EXPECT_NEAR(peak / trough, 6.0, 1e-6);
}

TEST(Diurnal, MeanIntensityIsOne) {
  DiurnalModel model;
  double total = 0.0;
  constexpr int kSamples = 24 * 60;
  for (int i = 0; i < kSamples; ++i) {
    total += model.intensity(24.0 * i / kSamples);
  }
  EXPECT_NEAR(total / kSamples, 1.0, 1e-3);
}

TEST(Diurnal, SampleWithinDay) {
  DiurnalModel model;
  Rng rng{42};
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t s = model.sample_second_of_day(rng);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, kSecondsPerDay);
  }
}

TEST(Diurnal, EveningBusierThanEarlyMorning) {
  DiurnalModel model;  // default: trough 05:00, peak 20:00
  Rng rng{42};
  int evening = 0;
  int early = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t s = model.sample_second_of_day(rng);
    const int hour = static_cast<int>(s / kSecondsPerHour);
    if (hour >= 19 && hour < 22) ++evening;
    if (hour >= 4 && hour < 7) ++early;
  }
  EXPECT_GT(evening, early * 3);
}

TEST(Diurnal, IntensityAtMatchesHourCurve) {
  DiurnalModel model;
  const SimTime eight_pm{20 * kSecondsPerHour};
  EXPECT_NEAR(model.intensity_at(eight_pm), model.intensity(20.0), 1e-9);
}

}  // namespace
}  // namespace otac
