#include "trace/trace_stats.h"

#include <gtest/gtest.h>

namespace otac {
namespace {

Trace tiny_trace() {
  Trace trace;
  std::vector<PhotoMeta> photos(3);
  photos[0].size_bytes = 100;
  photos[0].type = PhotoType{Resolution::l, PhotoFormat::jpg};
  photos[1].size_bytes = 200;
  photos[1].type = PhotoType{Resolution::a, PhotoFormat::png};
  photos[2].size_bytes = 400;
  photos[2].type = PhotoType{Resolution::l, PhotoFormat::jpg};
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  trace.horizon = SimTime{100};
  // photo 0 accessed 3x, photo 1 once, photo 2 never.
  for (const PhotoId id : {0u, 1u, 0u, 0u}) {
    Request r;
    r.photo = id;
    trace.requests.push_back(r);
  }
  return trace;
}

TEST(TraceStats, CountsAndFractions) {
  const TraceStats stats = compute_trace_stats(tiny_trace());
  EXPECT_EQ(stats.total_requests, 4u);
  EXPECT_EQ(stats.distinct_objects, 2u);  // photo 2 never appears
  EXPECT_EQ(stats.one_time_objects, 1u);
  EXPECT_EQ(stats.one_time_accesses, 1u);
  EXPECT_DOUBLE_EQ(stats.one_time_object_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.one_time_access_share(), 0.25);
  EXPECT_DOUBLE_EQ(stats.hit_rate_cap(), 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_accesses_per_object, 2.0);
}

TEST(TraceStats, ByteAccounting) {
  const TraceStats stats = compute_trace_stats(tiny_trace());
  EXPECT_DOUBLE_EQ(stats.total_request_bytes, 100.0 * 3 + 200.0);
  EXPECT_DOUBLE_EQ(stats.total_object_bytes, 300.0);
  EXPECT_DOUBLE_EQ(stats.mean_request_size_bytes, 500.0 / 4.0);
}

TEST(TraceStats, PerTypeCounts) {
  const TraceStats stats = compute_trace_stats(tiny_trace());
  const auto l5 = static_cast<std::size_t>(
      type_index(PhotoType{Resolution::l, PhotoFormat::jpg}));
  const auto a0 = static_cast<std::size_t>(
      type_index(PhotoType{Resolution::a, PhotoFormat::png}));
  EXPECT_EQ(stats.requests_by_type[l5], 3u);
  EXPECT_EQ(stats.requests_by_type[a0], 1u);
  EXPECT_EQ(stats.objects_by_type[l5], 1u);  // photo 2 never accessed
  EXPECT_EQ(stats.objects_by_type[a0], 1u);
}

TEST(TraceStats, EmptyTraceSafe) {
  Trace trace;
  trace.catalog = PhotoCatalog{{}, {}};
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_EQ(stats.total_requests, 0u);
  EXPECT_DOUBLE_EQ(stats.one_time_object_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate_cap(), 0.0);
}

}  // namespace
}  // namespace otac
