#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace generated() {
  WorkloadConfig config;
  config.num_owners = 300;
  config.num_photos = 3000;
  return TraceGenerator{config}.generate();
}

TEST(TraceIo, RoundTripExact) {
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const Trace loaded = load_trace(buffer);

  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  ASSERT_EQ(loaded.catalog.photo_count(), original.catalog.photo_count());
  ASSERT_EQ(loaded.catalog.owner_count(), original.catalog.owner_count());
  EXPECT_EQ(loaded.horizon.seconds, original.horizon.seconds);
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    ASSERT_EQ(loaded.requests[i].time.seconds,
              original.requests[i].time.seconds);
    ASSERT_EQ(loaded.requests[i].photo, original.requests[i].photo);
    ASSERT_EQ(loaded.requests[i].terminal, original.requests[i].terminal);
  }
  for (PhotoId id = 0; id < original.catalog.photo_count(); ++id) {
    const PhotoMeta& a = original.catalog.photo(id);
    const PhotoMeta& b = loaded.catalog.photo(id);
    ASSERT_EQ(a.owner, b.owner);
    ASSERT_EQ(a.size_bytes, b.size_bytes);
    ASSERT_EQ(a.upload_time.seconds, b.upload_time.seconds);
    ASSERT_TRUE(a.type == b.type);
  }
  ASSERT_EQ(loaded.latent_score.size(), original.latent_score.size());
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = generated();
  const std::string path = testing::TempDir() + "/otac_trace_test.bin";
  save_trace(original, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.requests.size(), original.requests.size());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a trace file at all";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated{full.substr(0, full.size() / 2)};
  EXPECT_THROW(load_trace(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(load_trace(std::string{"/nonexistent/otac.bin"}),
               std::runtime_error);
}

TEST(TraceIo, CsvExportHasHeaderAndRows) {
  const Trace original = generated();
  std::stringstream out;
  export_requests_csv(original, out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "time_s,photo,owner,type,size_bytes,terminal");
  std::size_t rows = 0;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, original.requests.size());
}

}  // namespace
}  // namespace otac
