#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace generated() {
  WorkloadConfig config;
  config.num_owners = 300;
  config.num_photos = 3000;
  return TraceGenerator{config}.generate();
}

TEST(TraceIo, RoundTripExact) {
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const Trace loaded = load_trace(buffer);

  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  ASSERT_EQ(loaded.catalog.photo_count(), original.catalog.photo_count());
  ASSERT_EQ(loaded.catalog.owner_count(), original.catalog.owner_count());
  EXPECT_EQ(loaded.horizon.seconds, original.horizon.seconds);
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    ASSERT_EQ(loaded.requests[i].time.seconds,
              original.requests[i].time.seconds);
    ASSERT_EQ(loaded.requests[i].photo, original.requests[i].photo);
    ASSERT_EQ(loaded.requests[i].terminal, original.requests[i].terminal);
  }
  for (PhotoId id = 0; id < original.catalog.photo_count(); ++id) {
    const PhotoMeta& a = original.catalog.photo(id);
    const PhotoMeta& b = loaded.catalog.photo(id);
    ASSERT_EQ(a.owner, b.owner);
    ASSERT_EQ(a.size_bytes, b.size_bytes);
    ASSERT_EQ(a.upload_time.seconds, b.upload_time.seconds);
    ASSERT_TRUE(a.type == b.type);
  }
  ASSERT_EQ(loaded.latent_score.size(), original.latent_score.size());
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = generated();
  const std::string path = testing::TempDir() + "/otac_trace_test.bin";
  save_trace(original, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.requests.size(), original.requests.size());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a trace file at all";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated{full.substr(0, full.size() / 2)};
  EXPECT_THROW(load_trace(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(load_trace(std::string{"/nonexistent/otac.bin"}),
               std::runtime_error);
}

TEST(TraceIo, ForwardVersionRejectedNotMisparsed) {
  // A kTraceVersion+1 stream comes from a *newer* writer whose layout we
  // cannot know; it must be refused at the version check, before any
  // section is interpreted.
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  std::string bytes = buffer.str();
  const std::uint32_t next_version = kTraceVersion + 1;
  std::memcpy(&bytes[sizeof(kTraceMagic)], &next_version,
              sizeof(next_version));
  std::stringstream in{bytes};
  try {
    (void)load_trace(in);
    FAIL() << "version+1 stream loaded instead of being rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "trace_io: unsupported version");
  }
}

TEST(TraceIo, RejectsTruncationAtEverySectionBoundary) {
  // Reconstruct the writer's exact byte layout (header, then four
  // length-prefixed vectors) and cut the stream at the start of every
  // section and one byte into it: each prefix must be a clean
  // runtime_error, never a partially populated trace.
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();

  std::vector<std::size_t> boundaries;
  std::size_t offset = 0;
  const auto section = [&](std::size_t bytes) {
    boundaries.push_back(offset);
    offset += bytes;
  };
  section(sizeof(kTraceMagic));
  section(sizeof(kTraceVersion));
  section(sizeof(original.horizon.seconds));
  const auto vector_section = [&](std::size_t count, std::size_t element) {
    section(sizeof(std::uint64_t));  // length prefix
    section(count * element);        // payload
  };
  vector_section(original.catalog.photo_count(), sizeof(PhotoMeta));
  vector_section(original.catalog.owner_count(), sizeof(OwnerMeta));
  vector_section(original.requests.size(), sizeof(Request));
  vector_section(original.latent_score.size(), sizeof(float));
  // The layout model must cover the file exactly, or the cuts below test
  // the wrong offsets.
  ASSERT_EQ(offset, full.size());

  for (const std::size_t boundary : boundaries) {
    for (const std::size_t cut : {boundary, boundary + 1}) {
      if (cut >= full.size()) continue;
      std::stringstream truncated{full.substr(0, cut)};
      EXPECT_THROW((void)load_trace(truncated), std::runtime_error)
          << "prefix length " << cut;
    }
  }
  // One byte short of a complete file: the final payload read must fail.
  std::stringstream nearly{full.substr(0, full.size() - 1)};
  EXPECT_THROW((void)load_trace(nearly), std::runtime_error);
}

TEST(TraceIo, RejectsTruncationAtEveryBoundary) {
  // Every prefix of a valid file must produce a clean runtime_error — the
  // stride walks across the header, each vector length, and payload bytes.
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 256);
  for (std::size_t cut = 0; cut < full.size(); cut += stride) {
    std::stringstream truncated{full.substr(0, cut)};
    EXPECT_THROW((void)load_trace(truncated), std::runtime_error)
        << "prefix length " << cut;
  }
}

TEST(TraceIo, BitFlipsNeverCrashOnlyRejectOrLoad) {
  // A flipped bit anywhere must either be rejected with runtime_error or
  // yield a structurally valid trace (flips inside float payload bytes can
  // produce a different-but-legal value) — never UB or another exception.
  const Trace original = generated();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 512);
  for (std::size_t pos = 0; pos < full.size(); pos += stride) {
    std::string corrupt = full;
    corrupt[pos] ^= 0x20;
    std::stringstream in{corrupt};
    try {
      const Trace loaded = load_trace(in);
      // Loaded anyway: the validator's invariants must still hold.
      for (const Request& request : loaded.requests) {
        ASSERT_LT(request.photo, loaded.catalog.photo_count());
      }
      for (PhotoId id = 0; id < loaded.catalog.photo_count(); ++id) {
        ASSERT_LT(loaded.catalog.photo(id).owner,
                  loaded.catalog.owner_count());
      }
    } catch (const std::runtime_error&) {
      // Clean rejection — the expected outcome for most positions.
    }
  }
}

TEST(TraceIo, HugeDeclaredCountRejectedWithoutAllocation) {
  // Header (magic u32 | version u32 | horizon i64) then the photo vector's
  // u64 count: declare 2^61 photos backed by 8 bytes of payload. The count
  // bound must reject this before any resize happens.
  std::string bytes;
  const auto append = [&bytes](const void* data, std::size_t size) {
    bytes.append(static_cast<const char*>(data), size);
  };
  append(&kTraceMagic, sizeof(kTraceMagic));
  append(&kTraceVersion, sizeof(kTraceVersion));
  const std::int64_t horizon = 1000;
  append(&horizon, sizeof(horizon));
  const std::uint64_t huge = 1ULL << 61;
  append(&huge, sizeof(huge));
  const std::uint64_t filler = 0;
  append(&filler, sizeof(filler));
  std::stringstream in{bytes};
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsNonFiniteOwnerAttributes) {
  Trace trace;
  std::vector<PhotoMeta> photos(1);
  std::vector<OwnerMeta> owners(1);
  owners[0].activity = std::numeric_limits<float>::quiet_NaN();
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.horizon = SimTime{10};
  std::stringstream buffer;
  save_trace(trace, buffer);
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsNonFiniteLatentScore) {
  Trace trace;
  std::vector<PhotoMeta> photos(2);
  std::vector<OwnerMeta> owners(1);
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.horizon = SimTime{10};
  trace.latent_score = {1.0F, std::numeric_limits<float>::infinity()};
  std::stringstream buffer;
  save_trace(trace, buffer);
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsDanglingPhotoOwner) {
  Trace trace;
  std::vector<PhotoMeta> photos(1);
  photos[0].owner = 5;  // only one owner exists
  std::vector<OwnerMeta> owners(1);
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.horizon = SimTime{10};
  std::stringstream buffer;
  save_trace(trace, buffer);
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(CsvImportRobustness, RejectsHostileNumericFields) {
  const auto importing = [](const std::string& row) {
    std::stringstream in;
    in << "time_s,photo,owner,type,size_bytes,terminal\n" << row << "\n";
    return import_requests_csv(in);
  };
  // Negative time, negative size, float/nan/hex smuggling, and overflow
  // beyond uint32 must all reject with row context — not wrap or truncate.
  EXPECT_THROW((void)importing("-5,p1,u1,l5,100,pc"),
               std::runtime_error);
  EXPECT_THROW((void)importing("10,p1,u1,l5,-100,pc"),
               std::runtime_error);
  EXPECT_THROW((void)importing("10,p1,u1,l5,1e9,pc"),
               std::runtime_error);
  EXPECT_THROW((void)importing("10,p1,u1,l5,nan,pc"),
               std::runtime_error);
  EXPECT_THROW((void)importing("10,p1,u1,l5,5000000000,pc"),
               std::runtime_error);
  EXPECT_THROW((void)importing("99999999999999999999,p1,u1,l5,1,pc"),
               std::runtime_error);
}

TEST(TraceIo, CsvExportHasHeaderAndRows) {
  const Trace original = generated();
  std::stringstream out;
  export_requests_csv(original, out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "time_s,photo,owner,type,size_bytes,terminal");
  std::size_t rows = 0;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, original.requests.size());
}

}  // namespace
}  // namespace otac
