#include "trace/popularity_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/social_model.h"

namespace otac {
namespace {

TEST(Lomax, CdfBasics) {
  EXPECT_DOUBLE_EQ(lomax_cdf(0.0, 1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(lomax_cdf(-1.0, 1.5, 2.0), 0.0);
  EXPECT_GT(lomax_cdf(1.0, 1.5, 2.0), 0.0);
  EXPECT_LT(lomax_cdf(1.0, 1.5, 2.0), 1.0);
  EXPECT_NEAR(lomax_cdf(1e12, 1.5, 2.0), 1.0, 1e-6);
}

TEST(Lomax, CdfInverseRoundTrip) {
  for (const double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const double x = lomax_cdf_inverse(u, 1.2, 3.0);
    EXPECT_NEAR(lomax_cdf(x, 1.2, 3.0), u, 1e-9) << "u=" << u;
  }
}

TEST(Sigmoid, Basics) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
}

TEST(Bisect, FindsRootOfMonotoneFunction) {
  const double x = bisect_nondecreasing(
      0.0, 1.0, 9.0, 60, [](double v) { return v * v; });
  EXPECT_NEAR(x, 3.0, 1e-6);  // hi auto-expands past the initial bracket
}

class PopularityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_owners = 2000;
    config_.num_photos = 40000;
    Rng owner_rng{7};
    auto owners = generate_owners(config_, owner_rng);
    Rng photo_rng{8};
    std::vector<PhotoMeta> photos;
    photos.reserve(config_.num_photos);
    for (std::uint32_t i = 0; i < config_.num_photos; ++i) {
      PhotoMeta photo;
      photo.owner = static_cast<UserId>(photo_rng.next_below(owners.size()));
      photo.type = type_from_index(static_cast<int>(photo_rng.next_below(12)));
      photo.size_bytes = 32'000;
      photo.upload_time =
          SimTime{photo_rng.uniform_int(0, 8 * kSecondsPerDay)};
      photos.push_back(photo);
    }
    catalog_ = PhotoCatalog{std::move(photos), std::move(owners)};
    mass_.assign(config_.num_photos, 0.8);
  }

  WorkloadConfig config_;
  PhotoCatalog catalog_;
  std::vector<double> mass_;
};

TEST_F(PopularityFixture, ScoresAreStandardized) {
  Rng rng{42};
  const auto result = PopularityModel{}.assign(config_, catalog_, mass_, rng);
  double mean = 0.0;
  for (const float z : result.score) mean += z;
  mean /= result.score.size();
  double var = 0.0;
  for (const float z : result.score) var += (z - mean) * (z - mean);
  var /= result.score.size();
  EXPECT_NEAR(mean, 0.0, 1e-3);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST_F(PopularityFixture, OneTimeFractionMatchesTarget) {
  Rng rng{42};
  const auto result = PopularityModel{}.assign(config_, catalog_, mass_, rng);
  std::size_t one_time = 0;
  for (const std::uint32_t c : result.count) {
    ASSERT_GE(c, 1u);
    if (c == 1) ++one_time;
  }
  const double fraction =
      static_cast<double>(one_time) / result.count.size();
  EXPECT_NEAR(fraction, config_.one_time_object_fraction, 0.02);
}

TEST_F(PopularityFixture, AccessShareMatchesTarget) {
  Rng rng{42};
  const auto result = PopularityModel{}.assign(config_, catalog_, mass_, rng);
  double total = 0.0;
  double one_time = 0.0;
  for (const std::uint32_t c : result.count) {
    total += c;
    if (c == 1) one_time += 1.0;
  }
  EXPECT_NEAR(one_time / total, config_.one_time_access_share, 0.03);
}

TEST_F(PopularityFixture, HighScorePhotosGetMoreAccesses) {
  Rng rng{42};
  const auto result = PopularityModel{}.assign(config_, catalog_, mass_, rng);
  double top_mean = 0.0, bottom_mean = 0.0;
  std::size_t top_n = 0, bottom_n = 0;
  for (std::size_t i = 0; i < result.count.size(); ++i) {
    if (result.score[i] > 1.0) {
      top_mean += result.count[i];
      ++top_n;
    } else if (result.score[i] < -1.0) {
      bottom_mean += result.count[i];
      ++bottom_n;
    }
  }
  ASSERT_GT(top_n, 100u);
  ASSERT_GT(bottom_n, 100u);
  EXPECT_GT(top_mean / top_n, 2.5 * (bottom_mean / bottom_n));
}

TEST_F(PopularityFixture, CountsRespectCap) {
  config_.max_accesses_per_photo = 16;
  Rng rng{42};
  const auto result = PopularityModel{}.assign(config_, catalog_, mass_, rng);
  for (const std::uint32_t c : result.count) EXPECT_LE(c, 16u);
}

TEST_F(PopularityFixture, RejectsMismatchedMass) {
  Rng rng{42};
  std::vector<double> wrong(10, 0.5);
  EXPECT_THROW(PopularityModel{}.assign(config_, catalog_, wrong, rng),
               std::invalid_argument);
}

TEST_F(PopularityFixture, RejectsInfeasibleShare) {
  config_.one_time_access_share = 0.9;  // > object fraction => mu < 1
  Rng rng{42};
  EXPECT_THROW(PopularityModel{}.assign(config_, catalog_, mass_, rng),
               std::invalid_argument);
}

TEST(UploadHourBoost, PeaksAtEightPm) {
  EXPECT_NEAR(PopularityModel::upload_hour_boost(20), 1.0, 1e-9);
  EXPECT_LT(PopularityModel::upload_hour_boost(8), -0.99);
}

}  // namespace
}  // namespace otac
