#include "trace/types.h"

#include <gtest/gtest.h>

#include <set>

namespace otac {
namespace {

TEST(PhotoType, TwelveDistinctTypes) {
  std::set<int> codes;
  for (int i = 0; i < kPhotoTypeCount; ++i) {
    const PhotoType t = type_from_index(i);
    EXPECT_EQ(type_index(t), i);
    codes.insert(type_code(t));
  }
  EXPECT_EQ(codes.size(), 12u);
  EXPECT_EQ(*codes.begin(), 1);
  EXPECT_EQ(*codes.rbegin(), 12);
}

TEST(PhotoType, NamesMatchPaperConvention) {
  EXPECT_EQ(type_name(PhotoType{Resolution::a, PhotoFormat::png}), "a0");
  EXPECT_EQ(type_name(PhotoType{Resolution::a, PhotoFormat::jpg}), "a5");
  EXPECT_EQ(type_name(PhotoType{Resolution::l, PhotoFormat::jpg}), "l5");
  EXPECT_EQ(type_name(PhotoType{Resolution::o, PhotoFormat::png}), "o0");
}

TEST(PhotoType, RoundTripIndex) {
  for (int i = 0; i < kPhotoTypeCount; ++i) {
    EXPECT_EQ(type_index(type_from_index(i)), i);
  }
}

TEST(Request, CompactLayout) {
  EXPECT_LE(sizeof(Request), 16u);
}

}  // namespace
}  // namespace otac
