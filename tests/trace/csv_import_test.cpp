#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_generator.h"
#include "trace/trace_io.h"

namespace otac {
namespace {

TEST(CsvImport, RoundTripThroughExport) {
  WorkloadConfig config;
  config.num_owners = 300;
  config.num_photos = 3'000;
  const Trace original = TraceGenerator{config}.generate();

  std::stringstream csv;
  export_requests_csv(original, csv);
  const Trace imported = import_requests_csv(csv);

  ASSERT_EQ(imported.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    ASSERT_EQ(imported.requests[i].time.seconds,
              original.requests[i].time.seconds);
    ASSERT_EQ(imported.requests[i].terminal, original.requests[i].terminal);
    // Ids are remapped but sizes/types must correspond per request.
    const PhotoMeta& a = original.catalog.photo(original.requests[i].photo);
    const PhotoMeta& b = imported.catalog.photo(imported.requests[i].photo);
    ASSERT_EQ(a.size_bytes, b.size_bytes);
    ASSERT_TRUE(a.type == b.type);
  }
  // Distinct-object count preserved.
  EXPECT_EQ(imported.catalog.photo_count(), original.catalog.photo_count());
}

TEST(CsvImport, ParsesMinimalHandWrittenLog) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n"
      << "0,p1,alice,l5,32768,mobile\n"
      << "5,p2,bob,a0,4096,pc\n"
      << "9,p1,alice,l5,32768,pc\n";
  const Trace trace = import_requests_csv(csv);
  ASSERT_EQ(trace.requests.size(), 3u);
  EXPECT_EQ(trace.catalog.photo_count(), 2u);
  EXPECT_EQ(trace.catalog.owner_count(), 2u);
  EXPECT_EQ(trace.requests[0].photo, trace.requests[2].photo);
  EXPECT_EQ(trace.requests[0].terminal, TerminalType::mobile);
  EXPECT_EQ(trace.requests[2].terminal, TerminalType::pc);
  EXPECT_EQ(trace.catalog.photo(trace.requests[0].photo).size_bytes, 32768u);
  EXPECT_EQ(trace.horizon.seconds, 10);
  // Upload approximated a minute before first access.
  EXPECT_EQ(trace.catalog.photo(0).upload_time.seconds, -60);
  // Owner photo counts accumulated.
  EXPECT_EQ(trace.catalog.owner(0).photo_count, 1u);
}

TEST(CsvImport, RejectsBadHeader) {
  std::stringstream csv;
  csv << "nope\n1,2,3,4,5,6\n";
  EXPECT_THROW((void)import_requests_csv(csv), std::runtime_error);
}

TEST(CsvImport, RejectsShortRow) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n"
      << "0,p1,alice\n";
  EXPECT_THROW((void)import_requests_csv(csv), std::runtime_error);
}

TEST(CsvImport, RejectsUnknownType) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n"
      << "0,p1,alice,z9,100,pc\n";
  EXPECT_THROW((void)import_requests_csv(csv), std::runtime_error);
}

TEST(CsvImport, RejectsUnsortedRows) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n"
      << "10,p1,alice,l5,100,pc\n"
      << "5,p2,bob,l5,100,pc\n";
  EXPECT_THROW((void)import_requests_csv(csv), std::runtime_error);
}

TEST(CsvImport, RejectsBadNumbers) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n"
      << "abc,p1,alice,l5,100,pc\n";
  EXPECT_THROW((void)import_requests_csv(csv), std::runtime_error);
}

// What import_requests_csv threw for the given document, or "" if it
// (unexpectedly) parsed.
std::string import_error(const std::string& body) {
  std::stringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n" << body;
  try {
    (void)import_requests_csv(csv);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return {};
}

TEST(CsvImport, ErrorsNameTheOneBasedLine) {
  // The header is line 1, so the first data row is line 2. Exact-message
  // pins: operators paste these lines into `sed -n '3p'` on multi-million
  // row logs, so the number must be the *file* line, not a row index.
  EXPECT_EQ(import_error("0,p1,alice,l5,100,pc\n"
                         "5,p2,bob\n"),
            "import_requests_csv: malformed row at line 3");
  EXPECT_EQ(import_error("abc,p1,alice,l5,100,pc\n"),
            "import_requests_csv: bad number at line 2");
  EXPECT_EQ(import_error("0,p1,alice,l5,100,pc\n"
                         "5,p2,bob,l5,5000000000,pc\n"),
            "import_requests_csv: value out of range at line 3");
  EXPECT_EQ(import_error("0,p1,alice,l5,100,pc\n"
                         "10,p2,bob,l5,100,pc\n"
                         "5,p3,carol,l5,100,pc\n"),
            "import_requests_csv: rows not time-sorted at line 4");
  EXPECT_EQ(import_error("0,p1,alice,z9,100,pc\n"),
            "import_requests_csv: unknown type 'z9' at line 2");
}

}  // namespace
}  // namespace otac
