#include "trace/social_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace otac {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.num_owners = 20000;
  return config;
}

TEST(SocialModel, GeneratesRequestedCount) {
  Rng rng{42};
  const auto owners = generate_owners(small_config(), rng);
  EXPECT_EQ(owners.size(), 20000u);
}

TEST(SocialModel, MeanFriendsNearTarget) {
  Rng rng{42};
  const WorkloadConfig config = small_config();
  const auto owners = generate_owners(config, rng);
  double total = 0.0;
  for (const auto& o : owners) total += o.active_friends;
  EXPECT_NEAR(total / owners.size(), config.mean_active_friends,
              0.15 * config.mean_active_friends);
}

TEST(SocialModel, ActivityIsHeavyTailed) {
  Rng rng{42};
  const auto owners = generate_owners(small_config(), rng);
  double max_activity = 0.0;
  double total = 0.0;
  for (const auto& o : owners) {
    max_activity = std::max<double>(max_activity, o.activity);
    total += o.activity;
  }
  const double mean = total / owners.size();
  EXPECT_GT(max_activity, 10.0 * mean);  // lognormal tail
}

TEST(SocialModel, FriendsCorrelateWithActivity) {
  Rng rng{42};
  const auto owners = generate_owners(small_config(), rng);
  std::vector<double> log_activity;
  std::vector<double> log_friends;
  for (const auto& o : owners) {
    log_activity.push_back(std::log(o.activity));
    log_friends.push_back(std::log(o.active_friends + 1.0));
  }
  const double rho = pearson_correlation(log_activity, log_friends);
  EXPECT_GT(rho, 0.5);
  EXPECT_LT(rho, 0.95);
}

TEST(SocialModel, QualityCorrelatesWithFriends) {
  Rng rng{42};
  const auto owners = generate_owners(small_config(), rng);
  std::vector<double> quality;
  std::vector<double> log_friends;
  for (const auto& o : owners) {
    quality.push_back(o.quality);
    log_friends.push_back(std::log(o.active_friends + 1.0));
  }
  const double rho = pearson_correlation(quality, log_friends);
  EXPECT_GT(rho, 0.25);
}

TEST(SocialModel, RejectsBadCoupling) {
  WorkloadConfig config = small_config();
  config.friends_activity_coupling = 1.5;
  Rng rng{42};
  EXPECT_THROW(generate_owners(config, rng), std::invalid_argument);
}

TEST(PearsonCorrelation, Basics) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
  const std::vector<double> flat{5, 5, 5, 5};
  EXPECT_EQ(pearson_correlation(xs, flat), 0.0);
  EXPECT_THROW((void)pearson_correlation(xs, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace otac
