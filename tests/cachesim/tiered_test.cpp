#include "cachesim/tiered.h"

#include <gtest/gtest.h>

#include "cachesim/lru.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace make_manual_trace(const std::vector<PhotoId>& sequence,
                        std::uint32_t size) {
  Trace trace;
  PhotoId max_id = 0;
  for (const PhotoId id : sequence) max_id = std::max(max_id, id);
  std::vector<PhotoMeta> photos(max_id + 1);
  for (auto& p : photos) p.size_bytes = size;
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Request r;
    r.time = SimTime{static_cast<std::int64_t>(i)};
    r.photo = sequence[i];
    trace.requests.push_back(r);
  }
  trace.horizon = SimTime{static_cast<std::int64_t>(sequence.size())};
  return trace;
}

TEST(Tiered, OcHitShieldsDc) {
  // A A A: first access misses both; the next two hit OC, so DC sees one
  // request only.
  const Trace trace = make_manual_trace({1, 1, 1}, 10);
  LruCache oc{100};
  LruCache dc{100};
  AlwaysAdmit a1, a2;
  const TieredStats stats = TieredSimulator{trace}.run(oc, a1, dc, a2);
  EXPECT_EQ(stats.oc.requests, 3u);
  EXPECT_EQ(stats.oc.hits, 2u);
  EXPECT_EQ(stats.dc.requests, 1u);
  EXPECT_EQ(stats.dc.hits, 0u);
  EXPECT_EQ(stats.backend_reads, 1u);
  EXPECT_DOUBLE_EQ(stats.combined_hit_rate(), 2.0 / 3.0);
}

TEST(Tiered, DcCatchesOcEvictions) {
  // OC holds 1 object, DC holds many: cycling two objects misses OC every
  // time but hits DC after the first round.
  const Trace trace = make_manual_trace({1, 2, 1, 2, 1, 2}, 10);
  LruCache oc{10};   // exactly one object
  LruCache dc{100};  // both objects
  AlwaysAdmit a1, a2;
  const TieredStats stats = TieredSimulator{trace}.run(oc, a1, dc, a2);
  EXPECT_EQ(stats.oc.hits, 0u);
  EXPECT_EQ(stats.dc.requests, 6u);
  EXPECT_EQ(stats.dc.hits, 4u);
  EXPECT_EQ(stats.backend_reads, 2u);
  EXPECT_DOUBLE_EQ(stats.combined_hit_rate(), 4.0 / 6.0);
}

TEST(Tiered, AdmissionPerTier) {
  // OC rejects everything: all requests reach DC; DC admits normally.
  const Trace trace = make_manual_trace({1, 1, 2, 2}, 10);
  LruCache oc{100};
  LruCache dc{100};
  NeverAdmit oc_admission;
  AlwaysAdmit dc_admission;
  const TieredStats stats =
      TieredSimulator{trace}.run(oc, oc_admission, dc, dc_admission);
  EXPECT_EQ(stats.oc.hits, 0u);
  EXPECT_EQ(stats.oc.insertions, 0u);
  EXPECT_EQ(stats.oc.rejected, 4u);
  EXPECT_EQ(stats.dc.requests, 4u);
  EXPECT_EQ(stats.dc.hits, 2u);
  EXPECT_EQ(stats.dc.insertions, 2u);
}

TEST(Tiered, LatencyOrdering) {
  const Trace trace = make_manual_trace({1, 1, 2, 3}, 10);
  LruCache oc{100};
  LruCache dc{100};
  AlwaysAdmit a1, a2;
  const TieredStats stats = TieredSimulator{trace}.run(oc, a1, dc, a2);
  const LatencyModel model{};
  const double with_fast_wan = stats.mean_latency_us(model, 1'000.0);
  const double with_slow_wan = stats.mean_latency_us(model, 20'000.0);
  EXPECT_GT(with_slow_wan, with_fast_wan);
  EXPECT_GT(with_fast_wan, model.hit_cost_us());
}

TEST(Tiered, CombinedBeatsSingleTierOfSameOcSize) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  const Trace trace = TraceGenerator{config}.generate();
  double dataset = 0.0;
  for (const auto& p : trace.catalog.photos()) dataset += p.size_bytes;

  LruCache oc{static_cast<std::uint64_t>(dataset * 0.005)};
  LruCache dc{static_cast<std::uint64_t>(dataset * 0.05)};
  AlwaysAdmit a1, a2;
  const TieredStats tiered = TieredSimulator{trace}.run(oc, a1, dc, a2);

  LruCache solo{static_cast<std::uint64_t>(dataset * 0.005)};
  AlwaysAdmit a3;
  // Single-tier equivalent of the OC alone.
  TieredSimulator sim{trace};
  LruCache empty_dc{1};
  NeverAdmit never;
  const TieredStats oc_only = sim.run(solo, a3, empty_dc, never);

  EXPECT_GT(tiered.combined_hit_rate(), oc_only.combined_hit_rate());
}

TEST(TieredStatsStruct, EmptyIsZero) {
  const TieredStats stats;
  EXPECT_DOUBLE_EQ(stats.combined_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_latency_us(LatencyModel{}, 1000.0), 0.0);
}

}  // namespace
}  // namespace otac
