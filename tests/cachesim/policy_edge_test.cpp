// Edge-case behaviour: ghost-list dynamics, metadata bounds, variable-size
// corner cases that the randomized property suite is unlikely to pin down.
#include <gtest/gtest.h>

#include "cachesim/arc.h"
#include "cachesim/belady.h"
#include "cachesim/lfu.h"
#include "cachesim/lirs.h"
#include "cachesim/lru.h"
#include "cachesim/s3lru.h"
#include "util/rng.h"

namespace otac {
namespace {

bool touch(CachePolicy& policy, PhotoId key, std::uint32_t size,
           std::uint64_t next = kNeverAgain) {
  policy.set_next_access_hint(next);
  if (policy.access(key, size)) return true;
  policy.insert(key, size);
  return false;
}

TEST(ArcEdge, B2GhostHitShrinksTarget) {
  ArcCache cache{4};
  // Build T2 = {1,2}, T1 = {3,4}.
  touch(cache, 1, 1);
  touch(cache, 2, 1);
  touch(cache, 1, 1);
  touch(cache, 2, 1);
  touch(cache, 3, 1);
  touch(cache, 4, 1);
  // Grow p via B1 hits first.
  touch(cache, 5, 1);  // evicts 3 -> B1
  touch(cache, 3, 1);  // B1 hit: p grows
  const double p_high = cache.target_t1_bytes();
  ASSERT_GT(p_high, 0.0);
  // Now force a T2 eviction into B2 and hit it.
  touch(cache, 6, 1);
  touch(cache, 7, 1);
  touch(cache, 8, 1);  // T2 victims land in B2 eventually
  // Find some evicted old-T2 key: 1 or 2 should be gone by now.
  const PhotoId ghost = cache.contains(1) ? 2 : 1;
  ASSERT_FALSE(cache.contains(ghost));
  touch(cache, ghost, 1);
  EXPECT_LE(cache.target_t1_bytes(), p_high);
}

TEST(ArcEdge, ResidentCountNeverExceedsCapacityUnits) {
  ArcCache cache{8};
  Rng rng{1};
  for (int i = 0; i < 5000; ++i) {
    touch(cache, static_cast<PhotoId>(rng.next_below(64)), 1);
    ASSERT_LE(cache.object_count(), 8u);
  }
}

TEST(LirsEdge, NonresidentMetadataBounded) {
  LirsCache cache{20, 0.5};
  // Stream a huge number of one-time objects: nonresident ghosts must not
  // grow without bound (the invariant checker counts internal state).
  for (PhotoId id = 0; id < 50'000; ++id) {
    touch(cache, id, 1);
  }
  EXPECT_TRUE(cache.check_invariants());
  // Resident count bounded by capacity; the table is resident + ghosts,
  // which the bound keeps within max(64, 2x resident).
  EXPECT_LE(cache.object_count(), 20u);
}

TEST(LirsEdge, LargeObjectForcesLirDemotion) {
  LirsCache cache{100, 0.9};  // HIR area only 10 bytes
  // Fill LIR with small objects.
  for (PhotoId id = 0; id < 9; ++id) touch(cache, id, 10);
  EXPECT_EQ(cache.used_bytes(), 90u);
  // A 40-byte object cannot fit in the HIR area alone: LIR must shrink.
  touch(cache, 100, 40);
  EXPECT_TRUE(cache.contains(100));
  EXPECT_LE(cache.used_bytes(), 100u);
  EXPECT_TRUE(cache.check_invariants());
}

TEST(LirsEdge, StackPruningAfterBottomLirAccess) {
  LirsCache cache{10, 0.5};
  for (PhotoId id = 0; id < 5; ++id) touch(cache, id, 1);  // LIR = 0..4
  // HIR churn to put non-LIR entries at the stack bottom region.
  touch(cache, 10, 1);
  touch(cache, 11, 1);
  // Access the bottom LIR block (0): stack must prune and stay valid.
  EXPECT_TRUE(cache.access(0, 1));
  EXPECT_TRUE(cache.check_invariants());
}

TEST(S3LruEdge, ObjectLargerThanSegmentRefused) {
  S3LruCache cache{300};  // segments of 100
  EXPECT_FALSE(cache.insert(1, 150));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.insert(2, 100));
  EXPECT_TRUE(cache.contains(2));
}

TEST(S3LruEdge, CascadeDemotionPreservesTotalBytes) {
  S3LruCache cache{90};  // 30 per segment
  // Promote three objects to the top segment one by one; each promotion
  // cascades demotions.
  for (PhotoId id = 1; id <= 3; ++id) {
    touch(cache, id, 25);
    touch(cache, id, 25);
    touch(cache, id, 25);
  }
  EXPECT_EQ(cache.used_bytes(), cache.segment_bytes(0) +
                                    cache.segment_bytes(1) +
                                    cache.segment_bytes(2));
  EXPECT_LE(cache.used_bytes(), 90u);
  EXPECT_TRUE(cache.contains(3));  // most recently promoted survives
}

TEST(LfuEdge, ReinsertionAfterEvictionResetsFrequency) {
  LfuCache cache{2};
  touch(cache, 1, 1);
  touch(cache, 1, 1);
  touch(cache, 1, 1);  // freq 3
  touch(cache, 2, 1);
  touch(cache, 3, 1);  // evicts 2 (freq 1)
  EXPECT_FALSE(cache.contains(2));
  touch(cache, 2, 1);  // evicts 3; 2 back with freq 1
  EXPECT_EQ(cache.frequency(2), 1u);
  EXPECT_EQ(cache.frequency(1), 3u);
}

TEST(BeladyEdge, VariableSizesEvictMultiple) {
  BeladyCache cache{100};
  touch(cache, 1, 40, 10);
  touch(cache, 2, 40, 5);
  touch(cache, 3, 70, 7);  // must evict 1 (farthest) then 2
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(BeladyEdge, StaleHeapEntriesSkipped) {
  BeladyCache cache{2};
  touch(cache, 1, 1, 5);
  touch(cache, 1, 1, 100);  // hit refreshes priority; old heap entry stale
  touch(cache, 2, 1, 6);
  touch(cache, 3, 1, 7);  // must evict 1 (next=100), not follow stale 5
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruEdge, ExactCapacityFitDoesNotEvict) {
  LruCache cache{100};
  std::uint64_t evictions = 0;
  cache.set_eviction_callback(
      [&evictions](PhotoId, std::uint32_t) { ++evictions; });
  touch(cache, 1, 60);
  touch(cache, 2, 40);  // exactly full
  EXPECT_EQ(evictions, 0u);
  EXPECT_EQ(cache.used_bytes(), 100u);
  touch(cache, 3, 1);  // one byte over: evict LRU (1)
  EXPECT_EQ(evictions, 1u);
  EXPECT_FALSE(cache.contains(1));
}

}  // namespace
}  // namespace otac
