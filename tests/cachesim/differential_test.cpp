// Differential testing: the optimized LRU/FIFO/LFU implementations must
// agree, hit-for-hit, with trivially-correct O(n) reference models under
// randomized workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "cachesim/fifo.h"
#include "cachesim/lfu.h"
#include "cachesim/lru.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac {
namespace {

struct RefEntry {
  PhotoId key;
  std::uint32_t size;
  std::uint64_t freq = 1;
  std::uint64_t last_used = 0;
  std::uint64_t inserted = 0;
};

/// O(n) reference cache with pluggable victim selection.
class ReferenceCache {
 public:
  enum class Kind { lru, fifo, lfu };

  ReferenceCache(Kind kind, std::uint64_t capacity)
      : kind_(kind), capacity_(capacity) {}

  bool access(PhotoId key, std::uint64_t tick) {
    for (RefEntry& entry : entries_) {
      if (entry.key == key) {
        entry.freq += 1;
        entry.last_used = tick;
        return true;
      }
    }
    return false;
  }

  void insert(PhotoId key, std::uint32_t size, std::uint64_t tick) {
    if (size > capacity_) return;
    while (used_ + size > capacity_) {
      const auto victim = select_victim();
      used_ -= victim->size;
      entries_.erase(victim);
    }
    entries_.push_back(RefEntry{key, size, 1, tick, tick});
    used_ += size;
  }

 private:
  std::vector<RefEntry>::iterator select_victim() {
    switch (kind_) {
      case Kind::lru:
        return std::min_element(entries_.begin(), entries_.end(),
                                [](const RefEntry& a, const RefEntry& b) {
                                  return a.last_used < b.last_used;
                                });
      case Kind::fifo:
        return std::min_element(entries_.begin(), entries_.end(),
                                [](const RefEntry& a, const RefEntry& b) {
                                  return a.inserted < b.inserted;
                                });
      case Kind::lfu:
        // Lowest frequency; tie broken by least-recently-used, matching
        // LfuCache's in-bucket LRU order.
        return std::min_element(entries_.begin(), entries_.end(),
                                [](const RefEntry& a, const RefEntry& b) {
                                  if (a.freq != b.freq) return a.freq < b.freq;
                                  return a.last_used < b.last_used;
                                });
    }
    return entries_.begin();
  }

  Kind kind_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::vector<RefEntry> entries_;
};

struct DifferentialCase {
  const char* label;
  ReferenceCache::Kind kind;
  bool unit_sizes;
};

class Differential : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(Differential, AgreesWithReferenceModel) {
  const DifferentialCase& param = GetParam();
  constexpr std::uint64_t kCapacity = 5'000;
  std::unique_ptr<CachePolicy> fast;
  switch (param.kind) {
    case ReferenceCache::Kind::lru:
      fast = std::make_unique<LruCache>(kCapacity);
      break;
    case ReferenceCache::Kind::fifo:
      fast = std::make_unique<FifoCache>(kCapacity);
      break;
    case ReferenceCache::Kind::lfu:
      fast = std::make_unique<LfuCache>(kCapacity);
      break;
  }
  ReferenceCache reference{param.kind, kCapacity};

  Rng rng{99};
  const ZipfSampler zipf{300, 0.8};
  std::vector<std::uint32_t> size_of(301);
  for (auto& s : size_of) {
    s = param.unit_sizes ? 1
                         : static_cast<std::uint32_t>(rng.uniform_int(50, 900));
  }

  for (std::uint64_t tick = 0; tick < 20'000; ++tick) {
    const auto key = static_cast<PhotoId>(zipf.sample(rng));
    const std::uint32_t size = size_of[key];
    const bool fast_hit = fast->access(key, size);
    const bool ref_hit = reference.access(key, tick);
    ASSERT_EQ(fast_hit, ref_hit) << param.label << " diverged at " << tick;
    if (!fast_hit) {
      fast->insert(key, size);
      reference.insert(key, size, tick);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, Differential,
    ::testing::Values(
        DifferentialCase{"lru_unit", ReferenceCache::Kind::lru, true},
        DifferentialCase{"lru_sized", ReferenceCache::Kind::lru, false},
        DifferentialCase{"fifo_unit", ReferenceCache::Kind::fifo, true},
        DifferentialCase{"fifo_sized", ReferenceCache::Kind::fifo, false},
        DifferentialCase{"lfu_unit", ReferenceCache::Kind::lfu, true},
        DifferentialCase{"lfu_sized", ReferenceCache::Kind::lfu, false}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      return std::string{info.param.label};
    });

}  // namespace
}  // namespace otac
