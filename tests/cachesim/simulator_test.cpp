#include "cachesim/simulator.h"

#include <gtest/gtest.h>

#include "cachesim/lru.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace make_manual_trace(const std::vector<PhotoId>& sequence,
                        std::uint32_t size_bytes,
                        std::int64_t seconds_apart = 1) {
  Trace trace;
  PhotoId max_id = 0;
  for (const PhotoId id : sequence) max_id = std::max(max_id, id);
  std::vector<PhotoMeta> photos(max_id + 1);
  for (auto& p : photos) p.size_bytes = size_bytes;
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Request r;
    r.time = SimTime{static_cast<std::int64_t>(i) * seconds_apart};
    r.photo = sequence[i];
    trace.requests.push_back(r);
  }
  trace.horizon =
      SimTime{static_cast<std::int64_t>(sequence.size()) * seconds_apart};
  return trace;
}

TEST(Simulator, CountsHitsAndWrites) {
  // A B A A B -> misses: A,B; hits: A,A,B.
  const Trace trace = make_manual_trace({1, 2, 1, 1, 2}, 10);
  LruCache cache{100};
  AlwaysAdmit admission;
  const CacheStats stats = Simulator{trace}.run(cache, admission);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_DOUBLE_EQ(stats.request_bytes, 50.0);
  EXPECT_DOUBLE_EQ(stats.hit_bytes, 30.0);
  EXPECT_DOUBLE_EQ(stats.inserted_bytes, 20.0);
  EXPECT_DOUBLE_EQ(stats.file_hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(stats.byte_hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(stats.file_write_rate(), 0.4);
  EXPECT_DOUBLE_EQ(stats.byte_write_rate(), 0.4);
}

TEST(Simulator, NeverAdmitMeansZeroHitsAndWrites) {
  const Trace trace = make_manual_trace({1, 1, 1, 2, 2}, 10);
  LruCache cache{100};
  NeverAdmit admission;
  const CacheStats stats = Simulator{trace}.run(cache, admission);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_DOUBLE_EQ(stats.rejected_bytes, 50.0);
}

TEST(Simulator, EvictionAccounting) {
  const Trace trace = make_manual_trace({1, 2, 3, 4}, 10);
  LruCache cache{20};  // holds 2 objects
  AlwaysAdmit admission;
  const CacheStats stats = Simulator{trace}.run(cache, admission);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_DOUBLE_EQ(stats.evicted_bytes, 20.0);
}

TEST(Simulator, OracleAdmissionFiltersOneTimers) {
  // Objects 1,2 reaccessed closely; 3,4,5 one-time.
  const Trace trace = make_manual_trace({1, 2, 1, 2, 3, 4, 5}, 10);
  const NextAccessInfo oracle = compute_next_access(trace);
  LruCache cache{1000};
  OracleAdmission admission{oracle, /*reaccess_threshold=*/10};
  Simulator sim{trace};
  sim.set_oracle(oracle);
  const CacheStats stats = sim.run(cache, admission);
  EXPECT_EQ(stats.insertions, 2u);  // only 1 and 2 admitted
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(Simulator, OracleAdmissionHonoursThreshold) {
  // Object 1 reaccess distance is 4 (> threshold 2): rejected both times.
  const Trace trace = make_manual_trace({1, 2, 3, 4, 1}, 10);
  const NextAccessInfo oracle = compute_next_access(trace);
  LruCache cache{1000};
  OracleAdmission admission{oracle, 2};
  Simulator sim{trace};
  sim.set_oracle(oracle);
  const CacheStats stats = sim.run(cache, admission);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST(Simulator, DayCallbackFiresOnBoundaries) {
  const Trace trace =
      make_manual_trace({1, 2, 3, 4, 5}, 10, kSecondsPerDay / 2);
  LruCache cache{1000};
  AlwaysAdmit admission;
  Simulator sim{trace};
  std::vector<std::int64_t> days;
  std::vector<std::uint64_t> indices;
  sim.set_day_callback([&](std::int64_t day, std::uint64_t index) {
    days.push_back(day);
    indices.push_back(index);
  });
  (void)sim.run(cache, admission);
  // Times: 0, .5d, 1d, 1.5d, 2d -> days 0 (at idx 0), 1 (idx 2), 2 (idx 4).
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0], 0);
  EXPECT_EQ(days[1], 1);
  EXPECT_EQ(days[2], 2);
  EXPECT_EQ(indices[1], 2u);
  EXPECT_EQ(indices[2], 4u);
}

TEST(Simulator, GeneratedTraceSanity) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  const Trace trace = TraceGenerator{config}.generate();
  LruCache cache{static_cast<std::uint64_t>(2e7)};
  AlwaysAdmit admission;
  const CacheStats stats = Simulator{trace}.run(cache, admission);
  EXPECT_EQ(stats.requests, trace.requests.size());
  EXPECT_GT(stats.file_hit_rate(), 0.0);
  EXPECT_LT(stats.file_hit_rate(), 1.0);
  EXPECT_EQ(stats.hits + stats.insertions + stats.rejected, stats.requests);
}

TEST(CacheStatsStruct, MergeAddsFields) {
  CacheStats a;
  a.requests = 10;
  a.hits = 5;
  a.request_bytes = 100;
  CacheStats b;
  b.requests = 6;
  b.hits = 1;
  b.request_bytes = 50;
  a.merge(b);
  EXPECT_EQ(a.requests, 16u);
  EXPECT_EQ(a.hits, 6u);
  EXPECT_EQ(a.misses(), 10u);
  EXPECT_DOUBLE_EQ(a.request_bytes, 150.0);
}

TEST(CacheStatsStruct, RatesOnEmptyAreZero) {
  const CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.file_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.byte_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.file_write_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.byte_write_rate(), 0.0);
}

}  // namespace
}  // namespace otac
