// Cross-policy property tests: invariants every replacement policy must
// hold under randomized workloads.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache_policy.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac {
namespace {

struct Op {
  PhotoId key;
  std::uint32_t size;
  std::uint64_t next;  // oracle hint (for Belady)
};

std::vector<Op> random_workload(std::size_t n, std::size_t universe,
                                std::uint64_t seed, bool unit_sizes) {
  Rng rng{seed};
  const ZipfSampler zipf{universe, 0.9};
  std::vector<Op> ops(n);
  // Sizes per key are stable across the workload.
  std::vector<std::uint32_t> size_of(universe + 1);
  for (auto& s : size_of) {
    s = unit_sizes ? 1
                   : static_cast<std::uint32_t>(rng.uniform_int(500, 200'000));
  }
  std::vector<std::vector<std::size_t>> positions(universe + 1);
  for (std::size_t i = 0; i < n; ++i) {
    ops[i].key = static_cast<PhotoId>(zipf.sample(rng));
    ops[i].size = size_of[ops[i].key];
    positions[ops[i].key].push_back(i);
  }
  // Oracle next pointers.
  for (const auto& plist : positions) {
    for (std::size_t j = 0; j < plist.size(); ++j) {
      ops[plist[j]].next =
          j + 1 < plist.size() ? plist[j + 1] : kNeverAgain;
    }
  }
  return ops;
}

class PolicyProperty : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyProperty, NeverExceedsCapacityVariableSizes) {
  constexpr std::uint64_t kCapacity = 1'000'000;
  const auto policy = make_policy(GetParam(), kCapacity);
  const auto ops = random_workload(20'000, 2'000, 42, false);
  for (const Op& op : ops) {
    policy->set_next_access_hint(op.next);
    if (!policy->access(op.key, op.size)) {
      policy->insert(op.key, op.size);
    }
    ASSERT_LE(policy->used_bytes(), kCapacity);
  }
}

TEST_P(PolicyProperty, ContainsAgreesWithAccess) {
  constexpr std::uint64_t kCapacity = 500'000;
  const auto policy = make_policy(GetParam(), kCapacity);
  const auto ops = random_workload(10'000, 1'000, 7, false);
  for (const Op& op : ops) {
    policy->set_next_access_hint(op.next);
    const bool resident_before = policy->contains(op.key);
    const bool hit = policy->access(op.key, op.size);
    ASSERT_EQ(resident_before, hit) << "key " << op.key;
    if (!hit) {
      // A successful insert must leave the object resident; a refused
      // insert must leave no trace.
      const bool inserted = policy->insert(op.key, op.size);
      ASSERT_EQ(policy->contains(op.key), inserted) << "key " << op.key;
    }
  }
}

TEST_P(PolicyProperty, OversizedObjectIsRefused) {
  const auto policy = make_policy(GetParam(), 1'000);
  policy->set_next_access_hint(5);
  EXPECT_FALSE(policy->insert(1, 2'000));
  EXPECT_FALSE(policy->contains(1));
  EXPECT_EQ(policy->used_bytes(), 0u);
}

TEST_P(PolicyProperty, DeterministicReplay) {
  constexpr std::uint64_t kCapacity = 300'000;
  const auto ops = random_workload(8'000, 800, 11, false);
  const auto run = [&] {
    const auto policy = make_policy(GetParam(), kCapacity);
    std::vector<bool> outcomes;
    outcomes.reserve(ops.size());
    for (const Op& op : ops) {
      policy->set_next_access_hint(op.next);
      const bool hit = policy->access(op.key, op.size);
      if (!hit) policy->insert(op.key, op.size);
      outcomes.push_back(hit);
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(PolicyProperty, EvictionCallbackBalancesBytes) {
  constexpr std::uint64_t kCapacity = 200'000;
  const auto policy = make_policy(GetParam(), kCapacity);
  std::uint64_t inserted_bytes = 0;
  std::uint64_t evicted_bytes = 0;
  policy->set_eviction_callback(
      [&](PhotoId, std::uint32_t size) { evicted_bytes += size; });
  const auto ops = random_workload(15'000, 1'500, 13, false);
  for (const Op& op : ops) {
    policy->set_next_access_hint(op.next);
    if (!policy->access(op.key, op.size)) {
      if (policy->insert(op.key, op.size)) inserted_bytes += op.size;
    }
  }
  EXPECT_EQ(inserted_bytes - evicted_bytes, policy->used_bytes());
}

TEST_P(PolicyProperty, ObjectCountMatchesUnitSizeBytes) {
  constexpr std::uint64_t kCapacity = 100;  // 100 unit-size objects
  const auto policy = make_policy(GetParam(), kCapacity);
  const auto ops = random_workload(5'000, 400, 17, true);
  for (const Op& op : ops) {
    policy->set_next_access_hint(op.next);
    if (!policy->access(op.key, op.size)) {
      policy->insert(op.key, op.size);
    }
    ASSERT_EQ(policy->object_count(), policy->used_bytes());
    ASSERT_LE(policy->object_count(), 100u);
  }
}

TEST_P(PolicyProperty, SmallCacheStillFunctions) {
  const auto policy = make_policy(GetParam(), 1'000);
  const auto ops = random_workload(3'000, 100, 19, false);
  std::uint64_t hits = 0;
  for (const Op& op : ops) {
    policy->set_next_access_hint(op.next);
    if (policy->access(op.key, op.size)) {
      ++hits;
    } else {
      policy->insert(op.key, op.size);
    }
  }
  // Nothing to assert beyond survival + sanity.
  EXPECT_LE(policy->used_bytes(), 1'000u);
  (void)hits;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values(PolicyKind::lru, PolicyKind::fifo, PolicyKind::s3lru,
                      PolicyKind::arc, PolicyKind::lirs, PolicyKind::lfu,
                      PolicyKind::belady),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      return policy_name(info.param);
    });

TEST(PolicyFactory, NamesMatch) {
  for (const PolicyKind kind :
       {PolicyKind::lru, PolicyKind::fifo, PolicyKind::s3lru, PolicyKind::arc,
        PolicyKind::lirs, PolicyKind::lfu, PolicyKind::belady}) {
    const auto policy = make_policy(kind, 1000);
    EXPECT_EQ(policy->name(), policy_name(kind));
    EXPECT_EQ(policy->capacity_bytes(), 1000u);
  }
}

}  // namespace
}  // namespace otac
