// Per-policy behavioural tests on hand-constructed access sequences.
#include <gtest/gtest.h>

#include "cachesim/arc.h"
#include "cachesim/belady.h"
#include "cachesim/fifo.h"
#include "cachesim/lfu.h"
#include "cachesim/lirs.h"
#include "cachesim/lru.h"
#include "cachesim/s3lru.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac {
namespace {

// Touch helper: standard request flow with always-admit.
bool touch(CachePolicy& policy, PhotoId key, std::uint32_t size,
           std::uint64_t next = kNeverAgain) {
  policy.set_next_access_hint(next);
  if (policy.access(key, size)) return true;
  policy.insert(key, size);
  return false;
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache{3};
  touch(cache, 1, 1);
  touch(cache, 2, 1);
  touch(cache, 3, 1);
  touch(cache, 1, 1);  // 1 now MRU; order (MRU->LRU): 1,3,2
  touch(cache, 4, 1);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Lru, VariableSizeEvictsUntilFit) {
  LruCache cache{100};
  touch(cache, 1, 40);
  touch(cache, 2, 40);
  touch(cache, 3, 70);  // needs evicting both 1 and 2
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.used_bytes(), 70u);

  LruCache snug{100};
  touch(snug, 1, 40);
  touch(snug, 2, 40);
  touch(snug, 3, 20);  // fits alongside both
  EXPECT_TRUE(snug.contains(1));
  EXPECT_TRUE(snug.contains(2));
  EXPECT_EQ(snug.used_bytes(), 100u);
}

TEST(Fifo, HitDoesNotRefresh) {
  FifoCache cache{3};
  touch(cache, 1, 1);
  touch(cache, 2, 1);
  touch(cache, 3, 1);
  touch(cache, 1, 1);  // hit, but stays first-in
  touch(cache, 4, 1);  // evicts 1 (oldest) despite recent hit
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(S3Lru, HitPromotesThroughSegments) {
  S3LruCache cache{300};
  touch(cache, 1, 10);
  EXPECT_EQ(cache.segment_bytes(0), 10u);
  touch(cache, 1, 10);  // promote to segment 1
  EXPECT_EQ(cache.segment_bytes(0), 0u);
  EXPECT_EQ(cache.segment_bytes(1), 10u);
  touch(cache, 1, 10);  // promote to segment 2
  EXPECT_EQ(cache.segment_bytes(2), 10u);
  touch(cache, 1, 10);  // stays in top segment
  EXPECT_EQ(cache.segment_bytes(2), 10u);
}

TEST(S3Lru, OneTimeObjectsCannotEvictProtected) {
  S3LruCache cache{300};  // 100 bytes per segment
  // Build a protected object.
  touch(cache, 100, 50);
  touch(cache, 100, 50);
  touch(cache, 100, 50);  // now in segment 2
  // Flood with one-time objects.
  for (PhotoId id = 0; id < 50; ++id) touch(cache, id, 30);
  EXPECT_TRUE(cache.contains(100));  // protected survived the scan
}

TEST(S3Lru, OverflowDemotesDownward) {
  S3LruCache cache{90};  // 30 bytes per segment
  touch(cache, 1, 25);
  touch(cache, 1, 25);  // to segment 1
  touch(cache, 2, 25);
  touch(cache, 2, 25);  // to segment 1 -> overflow, 1 demoted to segment 0
  EXPECT_EQ(cache.segment_bytes(1), 25u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.segment_bytes(0), 25u);
}

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache cache{3};
  touch(cache, 1, 1);
  touch(cache, 1, 1);
  touch(cache, 1, 1);  // freq 3
  touch(cache, 2, 1);
  touch(cache, 2, 1);  // freq 2
  touch(cache, 3, 1);  // freq 1
  touch(cache, 4, 1);  // evicts 3 (lowest freq)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_EQ(cache.frequency(1), 3u);
  EXPECT_EQ(cache.frequency(4), 1u);
}

TEST(Lfu, TieBrokenByRecency) {
  LfuCache cache{2};
  touch(cache, 1, 1);
  touch(cache, 2, 1);  // both freq 1; 1 is older within the bucket
  touch(cache, 3, 1);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Arc, GhostHitAdaptsTarget) {
  ArcCache cache{4};
  // Build T2 content so REPLACE ghosts T1 victims into B1 (with an empty
  // T2, textbook ARC Case IV(a) deletes T1's LRU without ghosting).
  touch(cache, 1, 1);
  touch(cache, 2, 1);
  touch(cache, 1, 1);  // T2 = {1}
  touch(cache, 2, 1);  // T2 = {1,2}
  touch(cache, 3, 1);
  touch(cache, 4, 1);  // cache full: T1 = {3,4}, T2 = {1,2}
  touch(cache, 5, 1);  // REPLACE evicts T1 LRU (3) into B1
  const double p_before = cache.target_t1_bytes();
  EXPECT_FALSE(cache.contains(3));
  touch(cache, 3, 1);  // B1 ghost hit -> p grows
  EXPECT_GT(cache.target_t1_bytes(), p_before);
}

TEST(Arc, RepeatedSetStaysResident) {
  ArcCache cache{4};
  // Working set of 3 objects accessed repeatedly survives a scan.
  for (int round = 0; round < 3; ++round) {
    for (PhotoId id = 1; id <= 3; ++id) touch(cache, id, 1);
  }
  for (PhotoId id = 100; id < 120; ++id) touch(cache, id, 1);  // scan
  int survivors = 0;
  for (PhotoId id = 1; id <= 3; ++id) {
    survivors += cache.contains(id) ? 1 : 0;
  }
  EXPECT_GE(survivors, 2);  // frequency side shielded from the scan
}

TEST(Arc, GhostBytesBounded) {
  ArcCache cache{1000};
  Rng rng{42};
  for (int i = 0; i < 20000; ++i) {
    const auto id = static_cast<PhotoId>(rng.next_below(5000));
    touch(cache, id, static_cast<std::uint32_t>(rng.uniform_int(10, 200)));
    ASSERT_LE(cache.used_bytes() + cache.ghost_bytes(), 2000u + 200u);
  }
}

TEST(Lirs, RejectsBadFraction) {
  EXPECT_THROW(LirsCache(100, 0.0), std::invalid_argument);
  EXPECT_THROW(LirsCache(100, 1.0), std::invalid_argument);
}

TEST(Lirs, HotSetResistsScan) {
  LirsCache cache{10, 0.9};  // 9 bytes LIR, 1 byte HIR
  // Establish hot LIR set.
  for (int round = 0; round < 2; ++round) {
    for (PhotoId id = 1; id <= 9; ++id) touch(cache, id, 1);
  }
  // Long one-time scan: HIR blocks churn through the 1-byte HIR area.
  for (PhotoId id = 100; id < 200; ++id) touch(cache, id, 1);
  int survivors = 0;
  for (PhotoId id = 1; id <= 9; ++id) {
    survivors += cache.contains(id) ? 1 : 0;
  }
  EXPECT_EQ(survivors, 9);  // LIR set untouched by the scan
  EXPECT_TRUE(cache.check_invariants());
}

TEST(Lirs, ReusedHirIsPromoted) {
  LirsCache cache{10, 0.5};  // 5 LIR, 5 HIR
  for (PhotoId id = 1; id <= 5; ++id) touch(cache, id, 1);  // warm LIR
  touch(cache, 10, 1);  // HIR resident
  touch(cache, 10, 1);  // reuse while on stack -> promoted to LIR
  // One LIR block was demoted to make room; 10 must still be resident.
  EXPECT_TRUE(cache.contains(10));
  EXPECT_TRUE(cache.check_invariants());
}

TEST(Lirs, InvariantsUnderRandomChurn) {
  LirsCache cache{5000, 0.85};
  Rng rng{42};
  const ZipfSampler zipf{800, 0.8};
  for (int i = 0; i < 30000; ++i) {
    const auto id = static_cast<PhotoId>(zipf.sample(rng));
    touch(cache, id, static_cast<std::uint32_t>(rng.uniform_int(5, 300)));
    if (i % 1000 == 0) {
      ASSERT_TRUE(cache.check_invariants()) << "step " << i;
    }
  }
  EXPECT_TRUE(cache.check_invariants());
}

TEST(Belady, EvictsFarthestNextAccess) {
  BeladyCache cache{2};
  touch(cache, 1, 1, /*next=*/10);
  touch(cache, 2, 1, /*next=*/5);
  touch(cache, 3, 1, /*next=*/7);  // must evict key 1 (next=10, farthest)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Belady, NeverAgainEvictedFirst) {
  BeladyCache cache{2};
  touch(cache, 1, 1, kNeverAgain);
  touch(cache, 2, 1, 5);
  touch(cache, 3, 1, 6);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Belady, HintUpdateOnHitRefreshesPriority) {
  BeladyCache cache{2};
  touch(cache, 1, 1, 3);
  touch(cache, 2, 1, 4);
  touch(cache, 1, 1, 100);  // hit; 1's next is now far away
  touch(cache, 3, 1, 5);    // should evict 1 (farthest), not 2
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Belady, OptimalOnSmallCase) {
  // Sequence: A B C A B C with cache of 2 (unit sizes).
  // Belady achieves 2 hits; LRU achieves 0.
  const std::vector<PhotoId> seq{1, 2, 3, 1, 2, 3};
  std::vector<std::uint64_t> next{3, 4, 5, kNeverAgain, kNeverAgain,
                                  kNeverAgain};
  const auto run = [&](CachePolicy& policy) {
    int hits = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      policy.set_next_access_hint(next[i]);
      if (policy.access(seq[i], 1)) {
        ++hits;
      } else {
        policy.insert(seq[i], 1);
      }
    }
    return hits;
  };
  BeladyCache belady{2};
  LruCache lru{2};
  EXPECT_EQ(run(belady), 2);
  EXPECT_EQ(run(lru), 0);
}

}  // namespace
}  // namespace otac
