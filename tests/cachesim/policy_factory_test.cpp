// Round-trip and rejection coverage for the PolicyKind <-> name mapping
// that the CLI (otac_sim --policy/--shards) and sweep configs rely on.
#include "cachesim/cache_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

namespace otac {
namespace {

TEST(PolicyFactory, EveryKindRoundTripsThroughItsName) {
  for (const PolicyKind kind : all_policy_kinds()) {
    const std::string name = policy_name(kind);
    EXPECT_EQ(policy_kind_from_name(name), kind) << name;

    // The factory builds a working policy whose self-reported name agrees.
    const auto policy = make_policy(kind, 1 << 20);
    EXPECT_EQ(policy->name(), name);
    EXPECT_EQ(policy->capacity_bytes(), 1u << 20);
  }
}

TEST(PolicyFactory, LookupIsCaseInsensitive) {
  for (const PolicyKind kind : all_policy_kinds()) {
    std::string lower = policy_name(kind);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::string upper = lower;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    EXPECT_EQ(policy_kind_from_name(lower), kind);
    EXPECT_EQ(policy_kind_from_name(upper), kind);
  }
}

TEST(PolicyFactory, AllKindsAreEnumeratedExactlyOnce) {
  const std::vector<PolicyKind>& kinds = all_policy_kinds();
  EXPECT_EQ(kinds.size(), 7u);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(kinds[i], kinds[j]);
    }
  }
}

TEST(PolicyFactory, RejectsUnknownNames) {
  for (const char* bad : {"", "lru2", "least-recently-used", "LR U", "clock",
                          "belady2", "random"}) {
    EXPECT_THROW((void)policy_kind_from_name(bad), std::invalid_argument)
        << "name: '" << bad << "'";
  }
}

}  // namespace
}  // namespace otac
