// Golden-equivalence pin for the slab-backed policy rewrite.
//
// The expectations below were captured from the seed implementations
// (std::list + std::unordered_map, commit 34e37c1) on a fixed 100k-request
// Zipf trace: hit/insert/reject counts, final occupancy, and an FNV-1a hash
// over the exact eviction sequence (key, size per victim). The slab
// policies must reproduce every byte of that behavior — any divergence in
// recency handling, eviction order, or ghost bookkeeping trips the hash
// even when aggregate hit rates happen to agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cachesim/cache_policy.h"
#include "util/fnv.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac {
namespace {

struct Op {
  PhotoId key;
  std::uint32_t size;
};

std::vector<Op> make_trace(std::size_t n, std::uint64_t seed,
                           std::uint64_t photos, double alpha) {
  Rng rng{seed};
  const ZipfSampler zipf{photos, alpha};
  std::vector<Op> ops(n);
  for (auto& op : ops) {
    op.key = static_cast<PhotoId>(zipf.sample(rng));
    op.size = static_cast<std::uint32_t>(rng.uniform_int(4'000, 200'000));
  }
  return ops;
}

struct Golden {
  const char* name;
  PolicyKind kind;
  std::uint64_t hits;
  std::uint64_t insertions;
  std::uint64_t rejected;
  std::uint64_t evictions;
  std::uint64_t used_bytes;
  std::size_t object_count;
  std::uint64_t evict_hash;
};

// Captured from the seed list/unordered_map implementations.
constexpr Golden kGolden[] = {
    {"LRU", PolicyKind::lru, 29144, 70856, 0, 70207, 67013684, 649,
     0x1d673cee41f95de0ULL},
    {"FIFO", PolicyKind::fifo, 25762, 74238, 0, 73588, 67017174, 650,
     0x4da99f98ffa1df66ULL},
    {"S3LRU", PolicyKind::s3lru, 36917, 63083, 0, 62421, 66925135, 662,
     0xe8e4d6ad45459795ULL},
    {"ARC", PolicyKind::arc, 38787, 61213, 0, 60548, 66982656, 665,
     0x44335a233b1fcf35ULL},
    {"LIRS", PolicyKind::lirs, 37061, 62939, 0, 62103, 66939103, 836,
     0x51539a9ecb9cea96ULL},
};

class GoldenEquivalence : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenEquivalence, MatchesSeedImplementationByteForByte) {
  const Golden& golden = GetParam();
  const auto ops = make_trace(100'000, 7, 20'000, 0.8);
  const auto policy = make_policy(golden.kind, 64ULL * 1024 * 1024);

  std::uint64_t evict_hash = kFnvOffset;
  std::uint64_t evictions = 0;
  policy->set_eviction_callback([&](PhotoId key, std::uint32_t size) {
    fnv64(evict_hash, key);
    fnv64(evict_hash, size);
    ++evictions;
  });

  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t rejected = 0;
  for (const Op& op : ops) {
    if (policy->access(op.key, op.size)) {
      ++hits;
    } else if (policy->insert(op.key, op.size)) {
      ++insertions;
    } else {
      ++rejected;
    }
  }

  EXPECT_EQ(hits, golden.hits);
  EXPECT_EQ(insertions, golden.insertions);
  EXPECT_EQ(rejected, golden.rejected);
  EXPECT_EQ(evictions, golden.evictions);
  EXPECT_EQ(policy->used_bytes(), golden.used_bytes);
  EXPECT_EQ(policy->object_count(), golden.object_count);
  EXPECT_EQ(evict_hash, golden.evict_hash)
      << "eviction sequence diverged from the seed implementation";
}

INSTANTIATE_TEST_SUITE_P(SlabPolicies, GoldenEquivalence,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string{info.param.name};
                         });

}  // namespace
}  // namespace otac
