#include <gtest/gtest.h>

#include "cachesim/lru.h"
#include "cachesim/simulator.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

TEST(Warmup, RejectsBadFraction) {
  WorkloadConfig config;
  config.num_owners = 100;
  config.num_photos = 1'000;
  const Trace trace = TraceGenerator{config}.generate();
  Simulator sim{trace};
  EXPECT_THROW(sim.set_warmup_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(sim.set_warmup_fraction(1.0), std::invalid_argument);
}

TEST(Warmup, ExcludesEarlyRequestsFromStats) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  const Trace trace = TraceGenerator{config}.generate();
  AlwaysAdmit admission;

  LruCache cold{5'000'000};
  const CacheStats cold_stats = Simulator{trace}.run(cold, admission);

  LruCache warm{5'000'000};
  Simulator warm_sim{trace};
  warm_sim.set_warmup_fraction(0.3);
  const CacheStats warm_stats = warm_sim.run(warm, admission);

  // Warm measurement counts only 70% of requests...
  EXPECT_NEAR(static_cast<double>(warm_stats.requests),
              0.7 * static_cast<double>(cold_stats.requests),
              2.0);
  // ...and reports a higher hit rate (no cold-start misses in the window).
  EXPECT_GT(warm_stats.file_hit_rate(), cold_stats.file_hit_rate());
  // Accounting identity still holds within the measured window.
  EXPECT_EQ(warm_stats.hits + warm_stats.insertions + warm_stats.rejected,
            warm_stats.requests);
}

TEST(Warmup, ZeroFractionMatchesDefault) {
  WorkloadConfig config;
  config.num_owners = 200;
  config.num_photos = 2'000;
  const Trace trace = TraceGenerator{config}.generate();
  AlwaysAdmit admission;
  LruCache a{1'000'000};
  LruCache b{1'000'000};
  const CacheStats default_stats = Simulator{trace}.run(a, admission);
  Simulator zero_sim{trace};
  zero_sim.set_warmup_fraction(0.0);
  const CacheStats zero_stats = zero_sim.run(b, admission);
  EXPECT_EQ(default_stats.hits, zero_stats.hits);
  EXPECT_EQ(default_stats.insertions, zero_stats.insertions);
  EXPECT_EQ(default_stats.evictions, zero_stats.evictions);
}

}  // namespace
}  // namespace otac
