// Chaos-schedule suite (ctest label: chaos; run under ASan+UBSan and TSan
// by `scripts/ci.sh chaos`). Drives the builtin scenarios
// (tools/chaos/chaos.h) through full sharded replays and pins the
// overload-resilience invariants:
//   - the storm scenario makes every failpoint registered in
//     util/failpoint_names.h fire at least once, and the replay plus a
//     checkpoint round-trip still complete and recover;
//   - load-shedding stays bounded and observable;
//   - once faults clear, a transient-retrain replay is bit-identical to
//     the fault-free golden (CacheStats including the eviction hash);
//   - the threaded watchdog abandons hung retrains without deadlock and
//     resumes training when the hang window closes;
//   - checkpoint corruption mid-serve is absorbed by bounded retries.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/chaos/chaos.h"
#include "trace/trace_generator.h"
#include "util/failpoint.h"
#include "util/failpoint_names.h"

namespace otac {
namespace {

class ChaosReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 250;
    config.num_photos = 6'000;
    harness_ = new chaos::Harness{TraceGenerator{config}.generate()};
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }

  void SetUp() override {
    if (!chaos::failpoints_compiled()) {
      GTEST_SKIP() << "failpoint sites compiled out (OTAC_FAILPOINTS=OFF)";
    }
    fail::Registry::instance().disable_all();
  }
  void TearDown() override { fail::Registry::instance().disable_all(); }

  static chaos::Harness* harness_;
};

chaos::Harness* ChaosReplayTest::harness_ = nullptr;

TEST_F(ChaosReplayTest, BuiltinScenariosAreRegistryPinned) {
  // Every scenario arms cleanly (Registry::enable rejects names missing
  // from util/failpoint_names.h) and is reachable by name.
  for (const chaos::Scenario& scenario : chaos::builtin_scenarios()) {
    ASSERT_NO_THROW(chaos::arm(scenario)) << scenario.name;
    EXPECT_EQ(chaos::find_scenario(scenario.name).name, scenario.name);
    chaos::disarm();
  }
  EXPECT_THROW((void)chaos::find_scenario("no_such_scenario"),
               std::invalid_argument);
}

TEST_F(ChaosReplayTest, StormFiresEveryRegisteredFailpointAndRecovers) {
  const chaos::Scenario& storm = chaos::find_scenario("failpoint_storm");

  // The storm must stay exhaustive: every name in the central registry is
  // armed, so a future failpoint cannot dodge chaos coverage silently.
  std::vector<std::string> armed;
  for (const chaos::FaultSpec& fault : storm.faults) {
    armed.push_back(fault.failpoint);
  }
  for (const std::string_view name : fail::kKnownFailpoints) {
    EXPECT_TRUE(std::find(armed.begin(), armed.end(), std::string{name}) !=
                armed.end())
        << "failpoint not covered by the storm scenario: " << name;
  }

  const chaos::ScenarioReport report = harness_->run(storm);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.faulty.stats.requests, harness_->trace().requests.size());
  // Fires persist in the registry after disarm — assert per name, not
  // just the report's sum.
  for (const std::string& name : armed) {
    EXPECT_GT(fail::Registry::instance().fires(name), 0u)
        << "storm never fired " << name;
  }
  EXPECT_TRUE(report.shed_rate_bounded) << "shed rate " << report.shed_rate;
  EXPECT_TRUE(report.checkpoint_recovered);
  // The injected faults left visible degradation telemetry behind.
  EXPECT_GT(report.faulty.degradation.retrain_retries, 0u);
  EXPECT_GT(report.faulty.degradation.ssd_write_retries, 0u);
  EXPECT_GT(report.faulty.degradation.ssd_write_drops, 0u);
}

TEST_F(ChaosReplayTest, TransientRetrainFaultIsGoldenIdentical) {
  const chaos::ScenarioReport report =
      harness_->run(chaos::find_scenario("retrain_transient"));
  ASSERT_TRUE(report.completed);
  ASSERT_TRUE(report.golden_run);
  // One retry absorbed the throw; nothing else may differ from the
  // fault-free run — stats equality covers the eviction-sequence hash,
  // i.e. the cache state evolved identically.
  EXPECT_TRUE(report.stats_identical);
  EXPECT_EQ(report.faulty.stats.eviction_hash,
            report.golden.stats.eviction_hash);
  EXPECT_EQ(report.faulty.degradation.retrain_retries, 1u);
  EXPECT_EQ(report.faulty.degradation.retrain_failures, 0u);
  EXPECT_EQ(report.faulty.degradation.shed_requests, 0u);
}

TEST_F(ChaosReplayTest, HungRetrainIsAbandonedWithoutStallingServing) {
  const chaos::ScenarioReport report =
      harness_->run(chaos::find_scenario("retrain_hang"));
  ASSERT_TRUE(report.completed);
  // Barriers 1-2 trained clean through the threaded watchdog before the
  // hang window opened at trigger 3.
  EXPECT_GE(report.faulty.trainings, 2);
  // The hanging retrain (250ms against a 200ms timeout) was abandoned;
  // any barrier arriving while the worker still slept counted as busy.
  // Either way serving never stalled and no retrain *failed*.
  EXPECT_GE(report.faulty.degradation.retrain_timeouts, 1u);
  EXPECT_EQ(report.faulty.degradation.retrain_failures, 0u);
  EXPECT_EQ(report.faulty.stats.requests, harness_->trace().requests.size());
}

TEST_F(ChaosReplayTest, CheckpointCorruptionMidServeIsAbsorbed) {
  const chaos::ScenarioReport report =
      harness_->run(chaos::find_scenario("checkpoint_corruption_mid_serve"));
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.checkpoint_cycles, 0u);
  // Bounded retries outlasted every scripted fault window; after faults
  // cleared the store saved and loaded a clean current generation.
  EXPECT_TRUE(report.checkpoint_recovered);
  // Serving was never disturbed: the faults all live in the checkpointer
  // thread.
  EXPECT_EQ(report.faulty.degradation.shed_requests, 0u);
  EXPECT_EQ(report.faulty.degradation.retrain_failures, 0u);
}

TEST_F(ChaosReplayTest, FlashCrowdShedsBoundedAndDrainsDeterministically) {
  const chaos::Scenario& scenario = chaos::find_scenario("flash_crowd");
  const chaos::ScenarioReport first = harness_->run(scenario);
  ASSERT_TRUE(first.completed);
  // The burst pushed a shard into Shedding: drops happened, were counted,
  // and stayed under the scenario ceiling.
  EXPECT_GT(first.faulty.degradation.shed_requests, 0u);
  EXPECT_TRUE(first.shed_rate_bounded) << "shed rate " << first.shed_rate;
  // The queue walked down the hysteresis ladder and fully drained: every
  // enter has a matching exit, so the merged transition count is even.
  EXPECT_GE(first.faulty.degradation.overload_transitions, 4u);
  EXPECT_EQ(first.faulty.degradation.overload_transitions % 2, 0u);

  // threads=1 pins the failpoint evaluation order, so the faulty replay
  // is reproducible bit-for-bit, shed counts and eviction hash included.
  const chaos::ScenarioReport second = harness_->run(scenario);
  EXPECT_TRUE(second.faulty == first.faulty);
}

}  // namespace
}  // namespace otac
