#include <gtest/gtest.h>

#include "storage/device_model.h"
#include "storage/latency_model.h"
#include "storage/wear_model.h"

namespace otac {
namespace {

TEST(LatencyModel, EquationFourFiveSix) {
  const LatencyModel model{LatencyConfig{1.0, 0.4, 3000.0, 100.0}};
  EXPECT_DOUBLE_EQ(model.hit_cost_us(), 101.0);
  EXPECT_DOUBLE_EQ(model.miss_penalty_original_us(), 3001.0);
  EXPECT_DOUBLE_EQ(model.miss_penalty_proposed_us(), 3001.4);
}

TEST(LatencyModel, EquationThree) {
  const LatencyModel model{};
  const double h = 0.5;
  EXPECT_DOUBLE_EQ(model.mean_access_time_original_us(h),
                   0.5 * 101.0 + 0.5 * 3001.0);
  EXPECT_DOUBLE_EQ(model.mean_access_time_proposed_us(h),
                   0.5 * 101.0 + 0.5 * 3001.4);
}

TEST(LatencyModel, HitRateGainDominatesClassifyCost) {
  // The paper's argument: t_classify (0.4 us) is negligible next to a few
  // points of hit rate at a 3 ms miss penalty.
  const LatencyModel model{};
  const double original = model.mean_access_time_original_us(0.50);
  const double proposed = model.mean_access_time_proposed_us(0.55);
  EXPECT_LT(proposed, original);
  const double improvement = (original - proposed) / original;
  EXPECT_GT(improvement, 0.05);
  EXPECT_LT(improvement, 0.15);
}

TEST(LatencyModel, ProposedAtSameHitRateIsBarelySlower) {
  const LatencyModel model{};
  const double h = 0.5;
  const double delta = model.mean_access_time_proposed_us(h) -
                       model.mean_access_time_original_us(h);
  EXPECT_NEAR(delta, 0.2, 1e-9);  // (1-h) * t_classify
}

TEST(DeviceModel, LatencyScalesWithSize) {
  const DeviceModel ssd = typical_ssd();
  EXPECT_LT(ssd.read_latency_us(4 * 1024), ssd.read_latency_us(1024 * 1024));
  // 32 KB read on the typical SSD lands near the paper-era ~100-200 us.
  const double t32k = ssd.read_latency_us(32 * 1024);
  EXPECT_GT(t32k, 50.0);
  EXPECT_LT(t32k, 400.0);
}

TEST(DeviceModel, HddSlowerThanSsd) {
  const DeviceModel ssd = typical_ssd();
  const DeviceModel hdd = typical_hdd();
  EXPECT_GT(hdd.read_latency_us(32 * 1024), 5.0 * ssd.read_latency_us(32 * 1024));
  // ~3 ms, matching the paper's t_hddr.
  EXPECT_NEAR(hdd.read_latency_us(32 * 1024), 3000.0, 300.0);
}

TEST(WearModel, EnduranceAndLifetime) {
  const SsdWearModel model{
      SsdWearConfig{.capacity_bytes = 1'000'000'000'000ULL,  // 1 TB
                    .pe_cycles = 3000.0,
                    .write_amplification = 1.5}};
  EXPECT_DOUBLE_EQ(model.endurance_bytes(), 2e15);
  // Writing 2 TB/day wears it out in 1000 days.
  EXPECT_DOUBLE_EQ(model.lifetime_days(2e12), 1000.0);
  EXPECT_DOUBLE_EQ(model.wear_fraction(2e12, 500.0), 0.5);
  EXPECT_DOUBLE_EQ(model.lifetime_days(0.0), 0.0);
}

TEST(WearModel, WriteDensity) {
  const SsdWearModel model{SsdWearConfig{.capacity_bytes = 1'000}};
  EXPECT_DOUBLE_EQ(model.write_density(5'000.0), 5.0);  // 5 overwrites/day
}

TEST(WearModel, WriteReductionExtendsLifetimeProportionally) {
  const SsdWearModel model{
      SsdWearConfig{.capacity_bytes = 1'000'000'000'000ULL}};
  const double base = model.lifetime_days(1e12);
  const double reduced = model.lifetime_days(1e12 * 0.21);  // paper: -79%
  EXPECT_NEAR(reduced / base, 1.0 / 0.21, 1e-9);
}

}  // namespace
}  // namespace otac
