#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

TEST(TreeSerialize, RoundTripPredictionsMatch) {
  const Dataset data = testing::gaussian_blobs(2000, 4, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  const std::string blob = tree.serialize();
  const DecisionTree loaded = DecisionTree::deserialize(blob);

  EXPECT_EQ(loaded.split_count(), tree.split_count());
  EXPECT_EQ(loaded.height(), tree.height());
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  Rng rng{7};
  for (int i = 0; i < 500; ++i) {
    std::vector<float> row(4);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    ASSERT_DOUBLE_EQ(loaded.predict_proba(row), tree.predict_proba(row));
  }
}

TEST(TreeSerialize, RoundTripImportance) {
  const Dataset data = testing::gaussian_blobs(1000, 3, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  const DecisionTree loaded = DecisionTree::deserialize(tree.serialize());
  ASSERT_EQ(loaded.feature_importance().size(),
            tree.feature_importance().size());
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(loaded.feature_importance()[f], tree.feature_importance()[f],
                1e-3 * (1.0 + tree.feature_importance()[f]));
  }
}

TEST(TreeSerialize, RejectsGarbage) {
  EXPECT_THROW((void)DecisionTree::deserialize("not a tree"),
               std::invalid_argument);
  EXPECT_THROW((void)DecisionTree::deserialize("otac-dtree 99 1 0 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)DecisionTree::deserialize("otac-dtree 1 5 2 1 3\n0 1"),
               std::invalid_argument);
}

TEST(TreeSerialize, RejectsCorruptChildIndices) {
  const Dataset data = testing::gaussian_blobs(500, 2, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  std::string blob = tree.serialize();
  // Corrupt a child index beyond node count: find the second line and set
  // an absurd left child. Easier: construct a minimal bad blob directly.
  const std::string bad =
      "otac-dtree 1 1 1 1 2\n0 0.5 7 8 0.5 0\n0 0\n";
  EXPECT_THROW((void)DecisionTree::deserialize(bad), std::invalid_argument);
  (void)blob;
}

TEST(TreeSerialize, LeafOnlyTree) {
  Dataset data{{"x"}};
  for (int i = 0; i < 10; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, 1);
  }
  DecisionTree tree;
  tree.fit(data);
  const DecisionTree loaded = DecisionTree::deserialize(tree.serialize());
  EXPECT_DOUBLE_EQ(loaded.predict_proba(std::vector<float>{3.0F}), 1.0);
}

}  // namespace
}  // namespace otac::ml
