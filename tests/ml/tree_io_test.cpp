#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "ml/decision_tree.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

TEST(TreeSerialize, RoundTripPredictionsMatch) {
  const Dataset data = testing::gaussian_blobs(2000, 4, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  const std::string blob = tree.serialize();
  const DecisionTree loaded = DecisionTree::deserialize(blob);

  EXPECT_EQ(loaded.split_count(), tree.split_count());
  EXPECT_EQ(loaded.height(), tree.height());
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  Rng rng{7};
  for (int i = 0; i < 500; ++i) {
    std::vector<float> row(4);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    ASSERT_DOUBLE_EQ(loaded.predict_proba(row), tree.predict_proba(row));
  }
}

TEST(TreeSerialize, RoundTripImportance) {
  const Dataset data = testing::gaussian_blobs(1000, 3, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  const DecisionTree loaded = DecisionTree::deserialize(tree.serialize());
  ASSERT_EQ(loaded.feature_importance().size(),
            tree.feature_importance().size());
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(loaded.feature_importance()[f], tree.feature_importance()[f],
                1e-3 * (1.0 + tree.feature_importance()[f]));
  }
}

TEST(TreeSerialize, RejectsGarbage) {
  EXPECT_THROW((void)DecisionTree::deserialize("not a tree"),
               std::invalid_argument);
  EXPECT_THROW((void)DecisionTree::deserialize("otac-dtree 99 1 0 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)DecisionTree::deserialize("otac-dtree 1 5 2 1 3\n0 1"),
               std::invalid_argument);
}

TEST(TreeSerialize, RejectsCorruptChildIndices) {
  const Dataset data = testing::gaussian_blobs(500, 2, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  std::string blob = tree.serialize();
  // Corrupt a child index beyond node count: find the second line and set
  // an absurd left child. Easier: construct a minimal bad blob directly.
  const std::string bad =
      "otac-dtree 1 1 1 1 2\n0 0.5 7 8 0.5 0\n0 0\n";
  EXPECT_THROW((void)DecisionTree::deserialize(bad), std::invalid_argument);
  (void)blob;
}

TEST(TreeSerialize, MalformedBlobMatrix) {
  // Each entry is a structurally hostile blob exercising one validation
  // rule in deserialize(). All must throw std::invalid_argument — never
  // crash, hang (child-index cycle), or return a half-loaded tree.
  const struct {
    const char* why;
    const char* blob;
  } cases[] = {
      {"zero node count", "otac-dtree 1 0 0 0 1\n\n"},
      {"node count far beyond blob size", "otac-dtree 1 400 0 0 1\n0 0\n"},
      {"feature count far beyond blob size", "otac-dtree 1 1 0 0 400\n"},
      {"splits >= node count", "otac-dtree 1 1 1 0 1\n-1 0 -1 -1 0.5 0\n0 \n"},
      {"height >= node count", "otac-dtree 1 1 0 1 1\n-1 0 -1 -1 0.5 0\n0 \n"},
      {"NaN probability", "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 nan 0\n0 \n"},
      {"probability above one", "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 1.5 0\n0 \n"},
      {"negative probability", "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 -0.5 0\n0 \n"},
      {"leaf with a child",
       "otac-dtree 1 3 1 1 1\n-1 0 1 2 0.5 0\n-1 0 -1 -1 1 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"feature id out of range",
       "otac-dtree 1 3 1 1 1\n5 0.5 1 2 0.5 0\n-1 0 -1 -1 1 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"infinite threshold",
       "otac-dtree 1 3 1 1 1\n0 inf 1 2 0.5 0\n-1 0 -1 -1 1 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"self-referential child (cycle)",
       "otac-dtree 1 3 1 1 1\n0 0.5 0 2 0.5 0\n-1 0 -1 -1 1 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"backward child index",
       "otac-dtree 1 3 2 2 1\n0 0.5 1 2 0.5 0\n0 0.5 0 2 0.5 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"child beyond node count",
       "otac-dtree 1 3 1 1 1\n0 0.5 1 9 0.5 0\n-1 0 -1 -1 1 1\n"
       "-1 0 -1 -1 0 1\n0 \n"},
      {"NaN importance",
       "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 0.5 0\nnan \n"},
      {"negative importance",
       "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 0.5 0\n-2 \n"},
      {"truncated node block", "otac-dtree 1 2 1 1 1\n0 0.5 1\n"},
      {"truncated importance block",
       "otac-dtree 1 1 0 0 3\n-1 0 -1 -1 0.5 0\n0 \n"},
      {"excessive depth",
       "otac-dtree 1 1 0 0 1\n-1 0 -1 -1 0.5 40\n0 \n"},
  };
  for (const auto& test_case : cases) {
    EXPECT_THROW((void)DecisionTree::deserialize(test_case.blob),
                 std::invalid_argument)
        << test_case.why;
  }
}

TEST(TreeSerialize, TokenMutationNeverCrashes) {
  // Replace every whitespace-separated token of a real blob with hostile
  // values. Deserialization must throw invalid_argument or produce a tree
  // whose predict() terminates with a probability in [0, 1] — never UB.
  const Dataset data = testing::gaussian_blobs(600, 3, 0.8, 9);
  DecisionTree tree;
  tree.fit(data);
  const std::string blob = tree.serialize();

  std::vector<std::pair<std::size_t, std::size_t>> tokens;  // [begin, end)
  std::size_t begin = std::string::npos;
  for (std::size_t i = 0; i <= blob.size(); ++i) {
    const bool sep = i == blob.size() || std::isspace(blob[i]) != 0;
    if (!sep && begin == std::string::npos) begin = i;
    if (sep && begin != std::string::npos) {
      tokens.emplace_back(begin, i);
      begin = std::string::npos;
    }
  }
  const char* hostile[] = {"nan", "-1", "999999999", "inf", "x", "1e308"};
  const std::vector<float> probe(3, 0.0F);
  for (const auto& [token_begin, token_end] : tokens) {
    for (const char* replacement : hostile) {
      std::string mutated = blob;
      mutated.replace(token_begin, token_end - token_begin, replacement);
      try {
        const DecisionTree loaded = DecisionTree::deserialize(mutated);
        const double proba = loaded.predict_proba(probe);
        ASSERT_GE(proba, 0.0);
        ASSERT_LE(proba, 1.0);
      } catch (const std::invalid_argument&) {
        // Clean rejection.
      }
    }
  }
}

TEST(TreeSerialize, LeafOnlyTree) {
  Dataset data{{"x"}};
  for (int i = 0; i < 10; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, 1);
  }
  DecisionTree tree;
  tree.fit(data);
  const DecisionTree loaded = DecisionTree::deserialize(tree.serialize());
  EXPECT_DOUBLE_EQ(loaded.predict_proba(std::vector<float>{3.0F}), 1.0);
}

}  // namespace
}  // namespace otac::ml
