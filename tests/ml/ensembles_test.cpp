#include <gtest/gtest.h>

#include "ml/adaboost.h"
#include "ml/random_forest.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

using testing::accuracy_on;
using testing::gaussian_blobs;
using testing::xor_dataset;

TEST(RandomForest, RejectsBadConfigAndUse) {
  RandomForestConfig config;
  config.num_trees = 0;
  EXPECT_THROW(RandomForest{config}, std::invalid_argument);
  RandomForest forest;
  EXPECT_THROW((void)forest.predict_proba(std::vector<float>{1.0F}),
               std::logic_error);
}

TEST(RandomForest, LearnsBlobs) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest{config};
  forest.fit(data);
  EXPECT_GT(accuracy_on(forest, data), 0.9);
  EXPECT_EQ(forest.tree_count(), 10u);
}

TEST(RandomForest, LearnsXor) {
  const Dataset data = xor_dataset(3000, 42);
  RandomForestConfig config;
  config.num_trees = 15;
  RandomForest forest{config};
  forest.fit(data);
  EXPECT_GT(accuracy_on(forest, data), 0.9);
}

TEST(RandomForest, AveragesTreeProbabilities) {
  const Dataset data = gaussian_blobs(500, 3, 1.0, 42);
  RandomForestConfig config;
  config.num_trees = 5;
  RandomForest forest{config};
  forest.fit(data);
  const std::vector<float> row{0.0F, 0.0F, 0.0F};
  double manual = 0.0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    manual += forest.tree(t).predict_proba(row);
  }
  EXPECT_NEAR(forest.predict_proba(row), manual / 5.0, 1e-12);
}

TEST(RandomForest, GeneralizesBetterThanSingleTreeOnNoisyData) {
  const Dataset data = gaussian_blobs(4000, 6, 1.6, 42);
  Rng rng{3};
  const auto split = data.train_test_split(0.4, rng);

  DecisionTreeConfig overfit;
  overfit.max_splits = 500;
  overfit.max_depth = 30;
  overfit.min_child_weight = 1.0;
  DecisionTree tree{overfit};
  tree.fit(split.train);

  RandomForestConfig config;
  config.num_trees = 20;
  config.tree = overfit;
  RandomForest forest{config};
  forest.fit(split.train);

  EXPECT_GE(accuracy_on(forest, split.test),
            accuracy_on(tree, split.test) - 0.01);
}

TEST(AdaBoost, RejectsBadConfigAndUse) {
  AdaBoostConfig config;
  config.num_rounds = 0;
  EXPECT_THROW(AdaBoost{config}, std::invalid_argument);
  AdaBoost boost;
  EXPECT_THROW((void)boost.predict_proba(std::vector<float>{1.0F}),
               std::logic_error);
}

TEST(AdaBoost, LearnsBlobs) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  AdaBoost boost;
  boost.fit(data);
  EXPECT_GT(accuracy_on(boost, data), 0.9);
}

TEST(AdaBoost, LearnsXorWithDepthTwoTrees) {
  const Dataset data = xor_dataset(3000, 42);
  AdaBoost boost;
  boost.fit(data);
  EXPECT_GT(accuracy_on(boost, data), 0.9);
}

TEST(AdaBoost, BoostingImprovesOverOneWeakLearner) {
  const Dataset data = xor_dataset(3000, 7);
  DecisionTreeConfig weak;
  weak.max_splits = 1;
  weak.max_depth = 1;
  DecisionTree stump{weak};
  stump.fit(data);

  AdaBoostConfig config;
  config.tree = DecisionTreeConfig{.max_splits = 3, .max_depth = 2};
  config.num_rounds = 30;
  AdaBoost boost{config};
  boost.fit(data);
  EXPECT_GT(accuracy_on(boost, data), accuracy_on(stump, data) + 0.2);
}

TEST(AdaBoost, StopsEarlyOnPureData) {
  Dataset data{{"x"}};
  for (int i = 0; i < 100; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, i < 50 ? 0 : 1);
  }
  AdaBoost boost;
  boost.fit(data);
  EXPECT_GE(boost.round_count(), 1u);
  EXPECT_EQ(boost.predict(std::vector<float>{10.0F}), 0);
  EXPECT_EQ(boost.predict(std::vector<float>{90.0F}), 1);
}

}  // namespace
}  // namespace otac::ml
