#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

namespace otac::ml {
namespace {

Dataset small() {
  Dataset data{{"a", "b"}};
  data.add_row(std::vector<float>{1.0F, 2.0F}, 0, 1.0F);
  data.add_row(std::vector<float>{3.0F, 4.0F}, 1, 2.0F);
  data.add_row(std::vector<float>{5.0F, 6.0F}, 1, 1.0F);
  return data;
}

TEST(Dataset, RejectsBadConstructionAndRows) {
  EXPECT_THROW(Dataset{std::vector<std::string>{}}, std::invalid_argument);
  Dataset data{{"a"}};
  EXPECT_THROW(data.add_row(std::vector<float>{1.0F, 2.0F}, 0),
               std::invalid_argument);
  EXPECT_THROW(data.add_row(std::vector<float>{1.0F}, 2),
               std::invalid_argument);
  EXPECT_THROW(data.add_row(std::vector<float>{1.0F}, 0, 0.0F),
               std::invalid_argument);
}

TEST(Dataset, AccessorsWork) {
  const Dataset data = small();
  EXPECT_EQ(data.num_rows(), 3u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.label(1), 1);
  EXPECT_FLOAT_EQ(data.weight(1), 2.0F);
  EXPECT_FLOAT_EQ(data.value(2, 1), 6.0F);
  EXPECT_FLOAT_EQ(data.row(0)[0], 1.0F);
}

TEST(Dataset, WeightAggregates) {
  const Dataset data = small();
  EXPECT_DOUBLE_EQ(data.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(data.positive_weight(), 3.0);
}

TEST(Dataset, SubsetRowsAllowsRepeats) {
  const Dataset data = small();
  const std::vector<std::size_t> idx{2, 2, 0};
  const Dataset sub = data.subset_rows(idx);
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_FLOAT_EQ(sub.value(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(sub.value(1, 0), 5.0F);
  EXPECT_EQ(sub.label(2), 0);
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW((void)data.subset_rows(bad), std::out_of_range);
}

TEST(Dataset, SubsetFeaturesReorders) {
  const Dataset data = small();
  const std::vector<std::size_t> features{1, 0};
  const Dataset sub = data.subset_features(features);
  EXPECT_EQ(sub.feature_names()[0], "b");
  EXPECT_FLOAT_EQ(sub.value(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(sub.value(0, 1), 1.0F);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW((void)data.subset_features(bad), std::out_of_range);
}

TEST(Dataset, CostMatrixMultipliesNegatives) {
  Dataset data = small();
  data.apply_cost_matrix(2.0);
  EXPECT_FLOAT_EQ(data.weight(0), 2.0F);  // negative row doubled
  EXPECT_FLOAT_EQ(data.weight(1), 2.0F);  // positive untouched
  EXPECT_THROW(data.apply_cost_matrix(0.0), std::invalid_argument);
}

TEST(Dataset, SetWeightsValidates) {
  Dataset data = small();
  const std::vector<float> w{1.0F, 1.0F};
  EXPECT_THROW(data.set_weights(w), std::invalid_argument);
  const std::vector<float> ok{1.0F, 1.0F, 5.0F};
  data.set_weights(ok);
  EXPECT_FLOAT_EQ(data.weight(2), 5.0F);
}

TEST(Dataset, TrainTestSplitPartitions) {
  Dataset data{{"x"}};
  for (int i = 0; i < 100; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, i % 2);
  }
  Rng rng{42};
  const auto split = data.train_test_split(0.25, rng);
  EXPECT_EQ(split.test.num_rows(), 25u);
  EXPECT_EQ(split.train.num_rows(), 75u);
  // Each original value appears exactly once across the two parts.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < split.train.num_rows(); ++i) {
    seen[static_cast<int>(split.train.value(i, 0))] += 1;
  }
  for (std::size_t i = 0; i < split.test.num_rows(); ++i) {
    seen[static_cast<int>(split.test.value(i, 0))] += 1;
  }
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 100);
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_THROW((void)data.train_test_split(0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)data.train_test_split(1.0, rng), std::invalid_argument);
}

TEST(Dataset, KfoldCoversAllRowsOnce) {
  Dataset data{{"x"}};
  for (int i = 0; i < 103; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, 0);
  }
  Rng rng{42};
  const auto folds = data.kfold_indices(5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(103, 0);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 20u);
    EXPECT_LE(fold.size(), 21u);
    for (const std::size_t i : fold) seen[i] += 1;
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_THROW((void)data.kfold_indices(1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace otac::ml
