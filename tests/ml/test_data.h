// Shared synthetic datasets for classifier tests.
#pragma once

#include <cmath>

#include "ml/dataset.h"
#include "util/rng.h"

namespace otac::ml::testing {

/// Two Gaussian blobs separated along the first two of `dims` features;
/// `noise` controls overlap (0.5 ~ well separated, 2.0 ~ heavy overlap).
inline Dataset gaussian_blobs(std::size_t n, std::size_t dims, double noise,
                              std::uint64_t seed, double positive_fraction = 0.5) {
  std::vector<std::string> names;
  names.reserve(dims);
  for (std::size_t f = 0; f < dims; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  Dataset data{std::move(names)};
  Rng rng{seed};
  std::vector<float> row(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(positive_fraction) ? 1 : 0;
    const double center = label == 1 ? 1.0 : -1.0;
    for (std::size_t f = 0; f < dims; ++f) {
      const double mean = f < 2 ? center : 0.0;
      row[f] = static_cast<float>(mean + noise * rng.normal());
    }
    data.add_row(row, label);
  }
  return data;
}

/// XOR-style dataset no linear model can fit but trees/NNs can.
inline Dataset xor_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data{{"x", "y"}};
  Rng rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float y = static_cast<float>(rng.uniform(-1.0, 1.0));
    const int label = (x > 0) != (y > 0) ? 1 : 0;
    data.add_row(std::vector<float>{x, y}, label);
  }
  return data;
}

/// Accuracy of a fitted classifier on a dataset.
template <typename C>
double accuracy_on(const C& classifier, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (classifier.predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_rows());
}

}  // namespace otac::ml::testing
