#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace otac::ml {
namespace {

TEST(ConfusionMatrix, Definitions) {
  ConfusionMatrix cm;
  // 3 TP, 1 FP, 4 TN, 2 FN
  for (int i = 0; i < 3; ++i) cm.add(1, 1);
  cm.add(0, 1);
  for (int i = 0; i < 4; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(1, 0);

  EXPECT_EQ(cm.tp, 3u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 4u);
  EXPECT_EQ(cm.fn, 2u);
  EXPECT_DOUBLE_EQ(cm.precision(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 7.0 / 10.0);
  const double p = 0.75, r = 0.6;
  EXPECT_DOUBLE_EQ(cm.f1(), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, EmptyIsZero) {
  const ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrix, FromPredictionsValidates) {
  const std::vector<int> actual{1, 0, 1};
  const std::vector<int> predicted{1, 1};
  EXPECT_THROW((void)confusion_from_predictions(actual, predicted),
               std::invalid_argument);
}

TEST(Auc, PerfectSeparation) {
  const std::vector<int> actual{0, 0, 1, 1};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 1.0);
}

TEST(Auc, PerfectlyWrong) {
  const std::vector<int> actual{1, 1, 0, 0};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 0.0);
}

TEST(Auc, RandomScoresNearHalf) {
  const std::vector<int> actual{0, 1, 0, 1};
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 0.5);  // all tied => midranks
}

TEST(Auc, SingleClassReturnsHalf) {
  const std::vector<int> actual{1, 1, 1};
  const std::vector<double> scores{0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 0.5);
}

TEST(Auc, KnownMixedCase) {
  // Positives at scores {0.8, 0.4}, negatives at {0.6, 0.2}.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) => 3/4.
  const std::vector<int> actual{1, 1, 0, 0};
  const std::vector<double> scores{0.8, 0.4, 0.6, 0.2};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 0.75);
}

TEST(Auc, TieBetweenClassesCountsHalf) {
  const std::vector<int> actual{1, 0};
  const std::vector<double> scores{0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(actual, scores), 0.5);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  const std::vector<int> actual{1, 0, 1, 0, 1};
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.3, 0.2};
  const auto curve = roc_curve(actual, scores);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(RocCurve, AgreesWithAucByTrapezoid) {
  const std::vector<int> actual{1, 0, 1, 0, 1, 0, 1, 1, 0, 0};
  const std::vector<double> scores{0.9, 0.8, 0.75, 0.7, 0.6,
                                   0.55, 0.5, 0.3, 0.25, 0.1};
  const auto curve = roc_curve(actual, scores);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].fpr - curve[i - 1].fpr) *
            (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  EXPECT_NEAR(area, auc(actual, scores), 1e-12);
}

}  // namespace
}  // namespace otac::ml
