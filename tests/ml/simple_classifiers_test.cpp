#include <gtest/gtest.h>

#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

using testing::accuracy_on;
using testing::gaussian_blobs;
using testing::xor_dataset;

TEST(NaiveBayes, LearnsBlobs) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  GaussianNaiveBayes nb;
  nb.fit(data);
  EXPECT_GT(accuracy_on(nb, data), 0.9);
}

TEST(NaiveBayes, UnfittedThrows) {
  GaussianNaiveBayes nb;
  EXPECT_THROW((void)nb.predict_proba(std::vector<float>{1.0F}),
               std::logic_error);
}

TEST(NaiveBayes, PriorsReflectClassImbalance) {
  const Dataset data = gaussian_blobs(4000, 2, 10.0, 42, 0.9);
  GaussianNaiveBayes nb;
  nb.fit(data);
  // Features are nearly uninformative; posterior tracks the 0.9 prior.
  EXPECT_GT(nb.predict_proba(std::vector<float>{0.0F, 0.0F}), 0.7);
}

TEST(NaiveBayes, HandlesSingleClassData) {
  Dataset data{{"x"}};
  for (int i = 0; i < 20; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, 1);
  }
  GaussianNaiveBayes nb;
  nb.fit(data);
  EXPECT_GT(nb.predict_proba(std::vector<float>{5.0F}), 0.99);
}

TEST(Knn, RejectsBadConfig) {
  KnnConfig config;
  config.k = 0;
  EXPECT_THROW(KnnClassifier{config}, std::invalid_argument);
}

TEST(Knn, LearnsBlobs) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  KnnClassifier knn;
  knn.fit(data);
  EXPECT_GT(accuracy_on(knn, data), 0.9);
}

TEST(Knn, LearnsXor) {
  const Dataset data = xor_dataset(2000, 42);
  KnnClassifier knn;
  knn.fit(data);
  EXPECT_GT(accuracy_on(knn, data), 0.9);
}

TEST(Knn, SubsamplesBeyondCap) {
  KnnConfig config;
  config.max_train_rows = 100;
  KnnClassifier knn{config};
  const Dataset data = gaussian_blobs(1000, 2, 0.8, 42);
  knn.fit(data);
  EXPECT_EQ(knn.stored_rows(), 100u);
  EXPECT_GT(accuracy_on(knn, data), 0.85);
}

TEST(Knn, ExactNearestNeighbourWhenKIsOne) {
  Dataset data{{"x", "y"}};
  data.add_row(std::vector<float>{0.0F, 0.0F}, 0);
  data.add_row(std::vector<float>{10.0F, 10.0F}, 1);
  KnnConfig config;
  config.k = 1;
  KnnClassifier knn{config};
  knn.fit(data);
  EXPECT_EQ(knn.predict(std::vector<float>{1.0F, 1.0F}), 0);
  EXPECT_EQ(knn.predict(std::vector<float>{9.0F, 9.0F}), 1);
}

TEST(Logistic, LearnsLinearProblem) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  LogisticRegression logistic;
  logistic.fit(data);
  EXPECT_GT(accuracy_on(logistic, data), 0.9);
}

TEST(Logistic, CannotLearnXor) {
  const Dataset data = xor_dataset(2000, 42);
  LogisticRegression logistic;
  logistic.fit(data);
  EXPECT_LT(accuracy_on(logistic, data), 0.6);  // linear model, XOR target
}

TEST(Logistic, CoefficientsPointAtSignalFeatures) {
  const Dataset data = gaussian_blobs(3000, 5, 0.8, 42);
  LogisticRegression logistic;
  logistic.fit(data);
  const auto& coef = logistic.coefficients();
  ASSERT_EQ(coef.size(), 5u);
  EXPECT_GT(std::abs(coef[0]), 5.0 * std::abs(coef[3]));
  EXPECT_GT(coef[0], 0.0);  // positive class sits at +1
}

TEST(Logistic, UnfittedThrows) {
  LogisticRegression logistic;
  EXPECT_THROW((void)logistic.predict_proba(std::vector<float>{0.0F}),
               std::logic_error);
}

TEST(Mlp, RejectsBadConfig) {
  MlpConfig config;
  config.hidden_units = 0;
  EXPECT_THROW(MlpClassifier{config}, std::invalid_argument);
  config.hidden_units = 4;
  config.batch_size = 0;
  EXPECT_THROW(MlpClassifier{config}, std::invalid_argument);
}

TEST(Mlp, LearnsBlobs) {
  const Dataset data = gaussian_blobs(2000, 4, 0.8, 42);
  MlpClassifier mlp;
  mlp.fit(data);
  EXPECT_GT(accuracy_on(mlp, data), 0.9);
}

TEST(Mlp, LearnsXorUnlikeLogistic) {
  const Dataset data = xor_dataset(2000, 42);
  MlpConfig config;
  config.epochs = 80;
  MlpClassifier mlp{config};
  mlp.fit(data);
  EXPECT_GT(accuracy_on(mlp, data), 0.85);
}

TEST(Mlp, DeterministicForSeed) {
  const Dataset data = gaussian_blobs(500, 3, 1.0, 42);
  MlpClassifier a;
  MlpClassifier b;
  a.fit(data);
  b.fit(data);
  const std::vector<float> row{0.3F, -0.2F, 0.1F};
  EXPECT_DOUBLE_EQ(a.predict_proba(row), b.predict_proba(row));
}

}  // namespace
}  // namespace otac::ml
