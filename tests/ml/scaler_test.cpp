#include "ml/scaler.h"

#include <gtest/gtest.h>

#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

TEST(Scaler, RejectsEmptyAndMismatch) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.fit(Dataset{{"x"}}), std::invalid_argument);
  const Dataset data = testing::gaussian_blobs(100, 3, 1.0, 42);
  scaler.fit(data);
  std::vector<float> out;
  EXPECT_THROW(scaler.transform(std::vector<float>{1.0F}, out),
               std::invalid_argument);
}

TEST(Scaler, ProducesZeroMeanUnitVariance) {
  Dataset data{{"a", "b"}};
  Rng rng{42};
  for (int i = 0; i < 5000; ++i) {
    data.add_row(std::vector<float>{
                     static_cast<float>(10.0 + 3.0 * rng.normal()),
                     static_cast<float>(-5.0 + 0.5 * rng.normal())},
                 i % 2);
  }
  StandardScaler scaler;
  scaler.fit(data);
  const Dataset scaled = scaler.transform(data);
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0;
    for (std::size_t i = 0; i < scaled.num_rows(); ++i) {
      mean += scaled.value(i, f);
    }
    mean /= static_cast<double>(scaled.num_rows());
    double var = 0.0;
    for (std::size_t i = 0; i < scaled.num_rows(); ++i) {
      const double d = scaled.value(i, f) - mean;
      var += d * d;
    }
    var /= static_cast<double>(scaled.num_rows());
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Dataset data{{"c"}};
  for (int i = 0; i < 10; ++i) {
    data.add_row(std::vector<float>{7.0F}, i % 2);
  }
  StandardScaler scaler;
  scaler.fit(data);
  std::vector<float> out;
  scaler.transform(std::vector<float>{7.0F}, out);
  EXPECT_FLOAT_EQ(out[0], 0.0F);
}

TEST(Scaler, PreservesLabelsAndWeights) {
  Dataset data{{"x"}};
  data.add_row(std::vector<float>{1.0F}, 1, 2.5F);
  data.add_row(std::vector<float>{2.0F}, 0, 1.5F);
  StandardScaler scaler;
  scaler.fit(data);
  const Dataset scaled = scaler.transform(data);
  EXPECT_EQ(scaled.label(0), 1);
  EXPECT_FLOAT_EQ(scaled.weight(0), 2.5F);
  EXPECT_EQ(scaled.label(1), 0);
}

TEST(Scaler, WeightedFitUsesWeights) {
  Dataset data{{"x"}};
  data.add_row(std::vector<float>{0.0F}, 0, 3.0F);
  data.add_row(std::vector<float>{4.0F}, 1, 1.0F);
  StandardScaler scaler;
  scaler.fit(data);
  EXPECT_NEAR(scaler.mean()[0], 1.0, 1e-12);  // (3*0 + 1*4)/4
}

}  // namespace
}  // namespace otac::ml
