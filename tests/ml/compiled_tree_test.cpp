// Bit-identity pin for the batched inference engine (ml/compiled_tree.h).
//
// CompiledTree must reproduce DecisionTree::predict_proba *bit for bit* —
// the golden eviction hashes and the shards=1 identity of the sharded
// replay both ride on it. The suite sweeps every golden-pinned tree recipe
// (the schedules/seeds of tests/ml/presort_golden_test.cpp), degenerate
// shapes (root-only leaf, single split, max-splits chain), every batch
// size 1..kMaxBatch, NaN routing, the arity-mismatch throw, and the
// seqlock word-codec round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/model_slot.h"
#include "ml/compiled_tree.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/rng.h"

namespace otac::ml {
namespace {

Dataset make_golden_dataset(std::size_t rows, std::size_t features,
                            std::uint64_t seed) {
  // Same generator as tests/ml/presort_golden_test.cpp, so the trees under
  // test are exactly the golden-pinned ones.
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  Dataset data{names};
  Rng rng{seed};
  std::vector<float> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    float score = 0.0F;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = static_cast<float>(rng.uniform_int(0, 1000)) / 10.0F;
      score += row[f] * (f % 2 == 0 ? 1.0F : -0.5F);
    }
    const int label =
        (score + static_cast<float>(rng.uniform_int(0, 40))) > 30.0F ? 1 : 0;
    data.add_row(row, label, 1.0F);
  }
  return data;
}

/// Assert scalar and batched compiled predictions match the reference tree
/// bit for bit over every row of `data`, for every batch size 1..kMaxBatch.
void expect_bit_identity(const DecisionTree& tree, const Dataset& data) {
  const CompiledTree compiled = CompiledTree::compile(tree);
  EXPECT_EQ(compiled.node_count(), tree.node_count());
  EXPECT_EQ(compiled.height(), tree.height());
  ASSERT_LE(compiled.required_arity(), data.num_features());

  // Scalar parity (exact double equality — both are widened floats).
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    ASSERT_EQ(compiled.predict_proba(data.row(i)),
              tree.predict_proba(data.row(i)))
        << "row " << i;
  }

  // Batched parity at every batch size. Dataset rows are contiguous
  // row-major storage, so row(0).data() with stride num_features() is the
  // arena layout the serving path uses.
  const float* rows = data.row(0).data();
  const std::size_t stride = data.num_features();
  std::vector<float> out(CompiledTree::kMaxBatch, -1.0F);
  for (std::size_t batch = 1; batch <= CompiledTree::kMaxBatch; ++batch) {
    for (std::size_t begin = 0; begin + batch <= data.num_rows();
         begin += batch) {
      compiled.predict_proba_batch(rows + begin * stride, batch, stride,
                                   out.data());
      for (std::size_t r = 0; r < batch; ++r) {
        ASSERT_EQ(static_cast<double>(out[r]),
                  tree.predict_proba(data.row(begin + r)))
            << "batch " << batch << " row " << begin + r;
      }
    }
  }
}

TEST(CompiledTree, GoldenFullFeatureTreeBitIdentical) {
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  DecisionTree tree{config};
  tree.fit(data);
  ASSERT_EQ(tree.split_count(), 30U);  // the golden-pinned shape
  expect_bit_identity(tree, data);
}

TEST(CompiledTree, GoldenFeatureSubsampledTreeBitIdentical) {
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  config.max_features = 2;
  config.feature_subsample_seed = 1234;
  DecisionTree tree{config};
  tree.fit(data);
  expect_bit_identity(tree, data);
}

TEST(CompiledTree, GoldenSmallTreeBitIdentical) {
  const Dataset data = make_golden_dataset(1000, 4, 5);
  DecisionTreeConfig config;
  config.max_splits = 15;
  DecisionTree tree{config};
  tree.fit(data);
  expect_bit_identity(tree, data);
}

TEST(CompiledTree, RootOnlyLeaf) {
  // One class -> no split is ever profitable -> a single leaf. max_splits=0
  // forces the shape regardless.
  Dataset data{{"f0", "f1"}};
  for (int i = 0; i < 50; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i), 1.0F}, 1);
  }
  DecisionTreeConfig config;
  config.max_splits = 0;
  DecisionTree tree{config};
  tree.fit(data);
  ASSERT_EQ(tree.node_count(), 1U);
  ASSERT_EQ(tree.height(), 0U);
  const CompiledTree compiled = CompiledTree::compile(tree);
  EXPECT_EQ(compiled.required_arity(), 0U);
  expect_bit_identity(tree, data);
  // height 0 => the batched walk runs zero levels and still lands on the
  // root leaf.
  float out = -1.0F;
  compiled.predict_proba_batch(data.row(0).data(), 1, data.num_features(),
                               &out);
  EXPECT_EQ(static_cast<double>(out), tree.predict_proba(data.row(0)));
}

TEST(CompiledTree, SingleSplit) {
  Dataset data{{"f0"}};
  for (int i = 0; i < 60; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, i < 30 ? 0 : 1);
  }
  DecisionTreeConfig config;
  config.max_splits = 1;
  DecisionTree tree{config};
  tree.fit(data);
  ASSERT_EQ(tree.split_count(), 1U);
  ASSERT_EQ(tree.node_count(), 3U);
  expect_bit_identity(tree, data);
}

TEST(CompiledTree, MaxSplitsChain) {
  // A staircase label pattern on one feature grows a deep chain: splits
  // keep subdividing the same axis, exercising uneven leaf depths (some
  // rows finish their walk many levels before others — the self-loop
  // encoding must hold them in place).
  Dataset data{{"f0"}};
  for (int i = 0; i < 512; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)},
                 (i / 32) % 2);
  }
  DecisionTreeConfig config;
  config.max_splits = 30;
  config.max_depth = 30;
  DecisionTree tree{config};
  tree.fit(data);
  ASSERT_GE(tree.height(), 4U);
  expect_bit_identity(tree, data);
}

TEST(CompiledTree, NanRoutesRightLikeScalar) {
  const Dataset data = make_golden_dataset(500, 4, 7);
  DecisionTreeConfig config;
  config.max_splits = 10;
  DecisionTree tree{config};
  tree.fit(data);
  const CompiledTree compiled = CompiledTree::compile(tree);

  std::vector<float> row(data.row(0).begin(), data.row(0).end());
  for (std::size_t poison = 0; poison < row.size(); ++poison) {
    std::vector<float> nan_row = row;
    nan_row[poison] = std::numeric_limits<float>::quiet_NaN();
    const double scalar_ref = tree.predict_proba(nan_row);
    EXPECT_EQ(compiled.predict_proba(nan_row), scalar_ref);
    float out = -1.0F;
    compiled.predict_proba_batch(nan_row.data(), 1, nan_row.size(), &out);
    EXPECT_EQ(static_cast<double>(out), scalar_ref);
  }
}

TEST(CompiledTree, ErrorSemanticsMatchDecisionTree) {
  EXPECT_THROW((void)CompiledTree{}.predict_proba(std::vector<float>{1.0F}),
               std::logic_error);
  EXPECT_THROW(CompiledTree::compile(DecisionTree{}), std::logic_error);

  const Dataset data = make_golden_dataset(500, 4, 7);
  DecisionTreeConfig config;
  config.max_splits = 10;
  DecisionTree tree{config};
  tree.fit(data);
  const CompiledTree compiled = CompiledTree::compile(tree);
  // Narrow rows behave identically: either both walks reach a split whose
  // feature is out of range (invalid_argument) or both land on a leaf first
  // and return the same probability. Sweep widths 0..3 so at least one
  // width is narrower than required_arity().
  ASSERT_GT(compiled.required_arity(), 1U);
  const std::span<const float> full = data.row(0);
  for (std::size_t width = 0; width < compiled.required_arity(); ++width) {
    const std::span<const float> narrow = full.subspan(0, width);
    bool tree_threw = false;
    bool compiled_threw = false;
    double tree_value = -1.0;
    double compiled_value = -2.0;
    try {
      tree_value = tree.predict_proba(narrow);
    } catch (const std::invalid_argument&) {
      tree_threw = true;
    }
    try {
      compiled_value = compiled.predict_proba(narrow);
    } catch (const std::invalid_argument&) {
      compiled_threw = true;
    }
    EXPECT_EQ(tree_threw, compiled_threw) << "width " << width;
    if (!tree_threw && !compiled_threw) {
      EXPECT_EQ(tree_value, compiled_value) << "width " << width;
    }
  }

  float out = 0.0F;
  EXPECT_THROW(
      compiled.predict_proba_batch(data.row(0).data(),
                                   CompiledTree::kMaxBatch + 1,
                                   data.num_features(), &out),
      std::invalid_argument);
}

TEST(CompiledTree, WordCodecRoundTripsExactly) {
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  DecisionTree tree{config};
  tree.fit(data);
  const CompiledTree compiled = CompiledTree::compile(tree);

  std::vector<std::uint32_t> words(compiled.word_count(), 0);
  compiled.encode_words(words);
  CompiledTree decoded;
  ASSERT_TRUE(CompiledTree::decode_words(words, decoded));
  EXPECT_EQ(decoded, compiled);

  // Decode into a previously used object (the per-shard reuse path).
  const Dataset small = make_golden_dataset(1000, 4, 5);
  DecisionTreeConfig small_config;
  small_config.max_splits = 15;
  DecisionTree small_tree{small_config};
  small_tree.fit(small);
  const CompiledTree small_compiled = CompiledTree::compile(small_tree);
  std::vector<std::uint32_t> small_words(small_compiled.word_count(), 0);
  small_compiled.encode_words(small_words);
  ASSERT_TRUE(CompiledTree::decode_words(small_words, decoded));
  EXPECT_EQ(decoded, small_compiled);

  // Implausible images are rejected, not trusted.
  CompiledTree sink;
  EXPECT_FALSE(CompiledTree::decode_words(std::vector<std::uint32_t>{}, sink));
  std::vector<std::uint32_t> truncated(words.begin(), words.begin() + 4);
  EXPECT_FALSE(CompiledTree::decode_words(truncated, sink));
}

TEST(ModelSlot, StoreLoadRoundTripsExactly) {
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  DecisionTree tree{config};
  tree.fit(data);
  const CompiledTree compiled = CompiledTree::compile(tree);
  ASSERT_TRUE(otac::ModelSlot::fits(compiled));

  otac::ModelSlot slot;
  CompiledTree loaded;
  EXPECT_FALSE(slot.load(loaded));  // nothing published yet
  EXPECT_EQ(slot.publish_count(), 0U);

  slot.store(compiled);
  EXPECT_EQ(slot.publish_count(), 1U);
  ASSERT_TRUE(slot.load(loaded));
  EXPECT_EQ(loaded, compiled);

  // Re-publish a different tree; the reader-owned snapshot is reused.
  const Dataset small = make_golden_dataset(1000, 4, 5);
  DecisionTreeConfig small_config;
  small_config.max_splits = 15;
  DecisionTree small_tree{small_config};
  small_tree.fit(small);
  const CompiledTree small_compiled = CompiledTree::compile(small_tree);
  slot.store(small_compiled);
  EXPECT_EQ(slot.publish_count(), 2U);
  ASSERT_TRUE(slot.load(loaded));
  EXPECT_EQ(loaded, small_compiled);
}

TEST(ModelSlot, RejectsEmptyAndOversizedTrees) {
  otac::ModelSlot slot;
  EXPECT_THROW(slot.store(CompiledTree{}), std::length_error);

  // Hand-build an oversized-but-structurally-valid image through the word
  // codec (kMaxNodes + 1 leaves): no fitted tree reaches this size, but the
  // slot must still reject it rather than overrun a generation.
  const std::size_t count = otac::ModelSlot::kMaxNodes + 1;
  std::vector<std::uint32_t> words(CompiledTree::kHeaderWords +
                                   CompiledTree::kWordsPerNode * count);
  words[0] = static_cast<std::uint32_t>(count);
  words[1] = 0;  // height
  words[2] = 0;  // required arity
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t* node =
        words.data() + CompiledTree::kHeaderWords + CompiledTree::kWordsPerNode * i;
    node[0] = 0;                                  // feature
    node[1] = static_cast<std::uint32_t>(i);      // left: self-loop leaf
    node[2] = static_cast<std::uint32_t>(i);      // right
    node[3] = 0;                                  // threshold bits
    node[4] = 0x3F000000U;                        // probability bits (0.5F)
  }
  CompiledTree oversized;
  ASSERT_TRUE(CompiledTree::decode_words(words, oversized));
  ASSERT_GT(oversized.node_count(), otac::ModelSlot::kMaxNodes);
  EXPECT_FALSE(otac::ModelSlot::fits(oversized));
  EXPECT_THROW(slot.store(oversized), std::length_error);
  // The failed publish left the slot empty and unpublished.
  CompiledTree loaded;
  EXPECT_FALSE(slot.load(loaded));
  EXPECT_EQ(slot.publish_count(), 0U);
}

}  // namespace
}  // namespace otac::ml
