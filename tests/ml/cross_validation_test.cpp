#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/naive_bayes.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

ClassifierFactory tree_factory() {
  return [] { return std::make_unique<DecisionTree>(); };
}

TEST(CrossValidate, MetricsOnSeparableData) {
  const Dataset data = testing::gaussian_blobs(2000, 3, 0.5, 42);
  Rng rng{1};
  const CvMetrics metrics = cross_validate(data, tree_factory(), 5, rng);
  EXPECT_GT(metrics.accuracy, 0.93);
  EXPECT_GT(metrics.precision, 0.9);
  EXPECT_GT(metrics.recall, 0.9);
  EXPECT_GT(metrics.auc, 0.95);
  EXPECT_GT(metrics.fit_seconds, 0.0);
  EXPECT_EQ(metrics.confusion.total(), 2000u);
}

TEST(CrossValidate, PoolsAllRowsExactlyOnce) {
  const Dataset data = testing::gaussian_blobs(503, 2, 1.0, 42);
  Rng rng{1};
  const CvMetrics metrics = cross_validate(data, tree_factory(), 4, rng);
  EXPECT_EQ(metrics.confusion.total(), 503u);
}

TEST(CrossValidate, ChanceLevelOnNoise) {
  const Dataset data = testing::gaussian_blobs(2000, 3, 50.0, 42);
  Rng rng{1};
  const CvMetrics metrics = cross_validate(data, tree_factory(), 5, rng);
  EXPECT_NEAR(metrics.accuracy, 0.5, 0.08);
  EXPECT_NEAR(metrics.auc, 0.5, 0.08);
}

TEST(EvaluateSplit, MatchesManualComputation) {
  const Dataset data = testing::gaussian_blobs(1000, 3, 0.6, 42);
  Rng rng{2};
  const auto split = data.train_test_split(0.3, rng);
  const CvMetrics metrics =
      evaluate_split(split.train, split.test, tree_factory());
  EXPECT_EQ(metrics.confusion.total(), split.test.num_rows());
  EXPECT_GT(metrics.accuracy, 0.9);
}

TEST(EvaluateSplit, WorksForOtherClassifiers) {
  const Dataset data = testing::gaussian_blobs(1000, 3, 0.6, 42);
  Rng rng{2};
  const auto split = data.train_test_split(0.3, rng);
  const CvMetrics metrics = evaluate_split(
      split.train, split.test,
      [] { return std::make_unique<GaussianNaiveBayes>(); });
  EXPECT_GT(metrics.accuracy, 0.85);
}

}  // namespace
}  // namespace otac::ml
