#include "ml/feature_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/decision_tree.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(5.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.0, 0.0), 0.0);
  EXPECT_NEAR(binary_entropy(1.0, 4.0), 0.8112781244591328, 1e-12);
}

TEST(InformationGain, PerfectPredictorGetsFullEntropy) {
  Dataset data{{"signal", "noise"}};
  Rng rng{42};
  for (int i = 0; i < 1000; ++i) {
    const int label = i % 2;
    data.add_row(std::vector<float>{static_cast<float>(label),
                                    static_cast<float>(rng.normal())},
                 label);
  }
  const double signal_gain = information_gain(data, 0);
  const double noise_gain = information_gain(data, 1);
  EXPECT_NEAR(signal_gain, 1.0, 1e-6);  // label entropy is 1 bit
  EXPECT_LT(noise_gain, 0.1);
  EXPECT_THROW((void)information_gain(data, 5), std::out_of_range);
}

TEST(InformationGain, MonotoneInSignalStrength) {
  // Feature = label + noise at increasing noise levels.
  const auto gain_at = [](double noise) {
    Dataset data{{"x"}};
    Rng rng{42};
    for (int i = 0; i < 4000; ++i) {
      const int label = i % 2;
      data.add_row(
          std::vector<float>{static_cast<float>(label + noise * rng.normal())},
          label);
    }
    return information_gain(data, 0);
  };
  const double strong = gain_at(0.2);
  const double medium = gain_at(1.0);
  const double weak = gain_at(4.0);
  EXPECT_GT(strong, medium);
  EXPECT_GT(medium, weak);
}

TEST(InformationGain, EmptyDatasetIsZero) {
  const Dataset data{{"x"}};
  EXPECT_DOUBLE_EQ(information_gain(data, 0), 0.0);
}

TEST(InformationGains, OnePerFeature) {
  const Dataset data = testing::gaussian_blobs(500, 4, 1.0, 42);
  const auto gains = information_gains(data);
  EXPECT_EQ(gains.size(), 4u);
  // Signal features (0,1) must outrank noise features (2,3).
  EXPECT_GT(gains[0], gains[2]);
  EXPECT_GT(gains[1], gains[3]);
}

TEST(ForwardSelect, PicksSignalFeaturesAndStops) {
  // 2 signal + 4 noise features: selection should keep a small set
  // containing the signal and not all the noise.
  const Dataset data = testing::gaussian_blobs(3000, 6, 0.9, 42);
  const ClassifierFactory factory = [] {
    return std::make_unique<DecisionTree>();
  };
  const ForwardSelectionResult result = forward_select(data, factory);
  ASSERT_FALSE(result.selected.empty());
  EXPECT_LE(result.selected.size(), 4u);
  const bool has_signal =
      std::find(result.selected.begin(), result.selected.end(), 0u) !=
          result.selected.end() ||
      std::find(result.selected.begin(), result.selected.end(), 1u) !=
          result.selected.end();
  EXPECT_TRUE(has_signal);
  EXPECT_EQ(result.gains.size(), 6u);
  EXPECT_EQ(result.accuracy_trace.size() >= result.selected.size(), true);
}

TEST(ForwardSelect, FirstPickHasHighestGain) {
  const Dataset data = testing::gaussian_blobs(2000, 5, 0.9, 42);
  const ClassifierFactory factory = [] {
    return std::make_unique<DecisionTree>();
  };
  const ForwardSelectionResult result = forward_select(data, factory);
  const auto gains = result.gains;
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(gains.begin(), gains.end()) - gains.begin());
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected.front(), best);
}

}  // namespace
}  // namespace otac::ml
