// Cross-classifier property tests: contracts every learner must satisfy,
// parameterized over all seven Table-1 algorithms.
#include <gtest/gtest.h>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

struct NamedFactory {
  const char* label;
  ClassifierFactory factory;
};

const NamedFactory kFactories[] = {
    {"NaiveBayes", [] { return std::make_unique<GaussianNaiveBayes>(); }},
    {"DecisionTree", [] { return std::make_unique<DecisionTree>(); }},
    {"MLP", [] { return std::make_unique<MlpClassifier>(); }},
    {"KNN", [] { return std::make_unique<KnnClassifier>(); }},
    {"AdaBoost", [] { return std::make_unique<AdaBoost>(); }},
    {"RandomForest", [] { return std::make_unique<RandomForest>(); }},
    {"Logistic", [] { return std::make_unique<LogisticRegression>(); }},
};

class ClassifierProperty : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(ClassifierProperty, ProbabilitiesAreProbabilities) {
  const Dataset data = testing::gaussian_blobs(800, 3, 1.0, 42);
  const auto model = GetParam().factory();
  model->fit(data);
  Rng rng{3};
  for (int i = 0; i < 300; ++i) {
    std::vector<float> row(3);
    for (auto& v : row) v = static_cast<float>(3.0 * rng.normal());
    const double p = model->predict_proba(row);
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
    ASSERT_EQ(model->predict(row), p >= 0.5 ? 1 : 0);
  }
}

TEST_P(ClassifierProperty, BeatsChanceOnSeparableBlobs) {
  const Dataset data = testing::gaussian_blobs(1500, 3, 0.7, 42);
  Rng rng{5};
  const auto split = data.train_test_split(0.3, rng);
  const auto model = GetParam().factory();
  model->fit(split.train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.num_rows(); ++i) {
    correct += model->predict(split.test.row(i)) == split.test.label(i);
  }
  const double accuracy = static_cast<double>(correct) /
                          static_cast<double>(split.test.num_rows());
  EXPECT_GT(accuracy, 0.8) << GetParam().label;
}

TEST_P(ClassifierProperty, DeterministicRefit) {
  const Dataset data = testing::gaussian_blobs(600, 3, 1.0, 42);
  const auto a = GetParam().factory();
  const auto b = GetParam().factory();
  a->fit(data);
  b->fit(data);
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    std::vector<float> row(3);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    ASSERT_DOUBLE_EQ(a->predict_proba(row), b->predict_proba(row))
        << GetParam().label;
  }
}

TEST_P(ClassifierProperty, RefitReplacesOldModel) {
  // Fit on one problem, then refit on the inverted problem: predictions
  // must flip, proving fit() does not accumulate stale state.
  Dataset first{{"x"}};
  Dataset second{{"x"}};
  Rng rng{17};
  for (int i = 0; i < 400; ++i) {
    const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const int label = x > 0 ? 1 : 0;
    first.add_row(std::vector<float>{x}, label);
    second.add_row(std::vector<float>{x}, 1 - label);
  }
  const auto model = GetParam().factory();
  model->fit(first);
  EXPECT_EQ(model->predict(std::vector<float>{0.8F}), 1) << GetParam().label;
  model->fit(second);
  EXPECT_EQ(model->predict(std::vector<float>{0.8F}), 0) << GetParam().label;
}

TEST_P(ClassifierProperty, CostWeightsShiftDecisionsTowardNegatives) {
  // Heavily weighting the negative class must not *increase* the number of
  // positive predictions on ambiguous data.
  const Dataset data = testing::gaussian_blobs(1500, 2, 2.0, 42);
  const auto count_positives = [&](double cost) {
    Dataset weighted = data;
    weighted.apply_cost_matrix(cost);
    const auto model = GetParam().factory();
    model->fit(weighted);
    std::size_t positives = 0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      positives += model->predict(data.row(i)) == 1;
    }
    return positives;
  };
  EXPECT_LE(count_positives(4.0), count_positives(1.0) + data.num_rows() / 50)
      << GetParam().label;
}

TEST_P(ClassifierProperty, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().factory()->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierProperty, ::testing::ValuesIn(kFactories),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return std::string{info.param.label};
    });

}  // namespace
}  // namespace otac::ml
