#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "tests/ml/test_data.h"

namespace otac::ml {
namespace {

using testing::accuracy_on;
using testing::gaussian_blobs;
using testing::xor_dataset;

TEST(DecisionTree, RejectsEmptyAndUnfittedUse) {
  DecisionTree tree;
  EXPECT_THROW(tree.fit(Dataset{{"x"}}), std::invalid_argument);
  EXPECT_THROW((void)tree.predict_proba(std::vector<float>{1.0F}),
               std::logic_error);
}

TEST(DecisionTree, LearnsLinearSeparation) {
  const Dataset data = gaussian_blobs(2000, 4, 0.5, 42);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_GT(accuracy_on(tree, data), 0.95);
}

TEST(DecisionTree, LearnsXor) {
  const Dataset data = xor_dataset(2000, 42);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_GT(accuracy_on(tree, data), 0.95);
}

TEST(DecisionTree, RespectsSplitBudget) {
  const Dataset data = xor_dataset(5000, 42);
  DecisionTreeConfig config;
  config.max_splits = 30;  // paper's cap
  DecisionTree tree{config};
  tree.fit(data);
  EXPECT_LE(tree.split_count(), 30u);
  EXPECT_EQ(tree.node_count(), 2 * tree.split_count() + 1);
}

TEST(DecisionTree, RespectsDepthCap) {
  const Dataset data = gaussian_blobs(3000, 6, 1.5, 42);
  DecisionTreeConfig config;
  config.max_depth = 3;
  config.max_splits = 1000;
  DecisionTree tree{config};
  tree.fit(data);
  EXPECT_LE(tree.height(), 3u);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset data{{"x"}};
  for (int i = 0; i < 50; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, 1);
  }
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.split_count(), 0u);
  EXPECT_DOUBLE_EQ(tree.predict_proba(std::vector<float>{25.0F}), 1.0);
}

TEST(DecisionTree, SingleThresholdProblemNeedsOneSplit) {
  Dataset data{{"x"}};
  for (int i = 0; i < 100; ++i) {
    data.add_row(std::vector<float>{static_cast<float>(i)}, i < 50 ? 0 : 1);
  }
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.split_count(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.predict(std::vector<float>{10.0F}), 0);
  EXPECT_EQ(tree.predict(std::vector<float>{90.0F}), 1);
}

TEST(DecisionTree, InstanceWeightsShiftTheDecision) {
  // Mixed region where negatives dominate by count but positives by weight.
  Dataset data{{"x"}};
  for (int i = 0; i < 60; ++i) data.add_row(std::vector<float>{0.0F}, 0, 1.0F);
  for (int i = 0; i < 40; ++i) data.add_row(std::vector<float>{0.0F}, 1, 3.0F);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.predict(std::vector<float>{0.0F}), 1);
}

TEST(DecisionTree, CostMatrixReducesFalsePositives) {
  // Overlapping blobs: raising the false-positive cost (negatives weighted
  // up, §4.4.1) must not increase the number of false positives.
  const Dataset data = gaussian_blobs(4000, 3, 1.5, 42);
  const auto count_fp = [&](double cost) {
    Dataset weighted = data;
    weighted.apply_cost_matrix(cost);
    DecisionTree tree;
    tree.fit(weighted);
    std::uint64_t fp = 0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      if (data.label(i) == 0 && tree.predict(data.row(i)) == 1) ++fp;
    }
    return fp;
  };
  EXPECT_LE(count_fp(3.0), count_fp(1.0));
}

TEST(DecisionTree, FeatureImportanceConcentratesOnSignal) {
  const Dataset data = gaussian_blobs(3000, 6, 0.8, 42);
  DecisionTree tree;
  tree.fit(data);
  const auto& importance = tree.feature_importance();
  ASSERT_EQ(importance.size(), 6u);
  const double signal = importance[0] + importance[1];
  double noise = 0.0;
  for (std::size_t f = 2; f < 6; ++f) noise += importance[f];
  EXPECT_GT(signal, 5.0 * noise);
}

TEST(DecisionTree, DecisionPathLengthBoundedByHeight) {
  const Dataset data = xor_dataset(1000, 42);
  DecisionTree tree;
  tree.fit(data);
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> row{
        static_cast<float>(rng.uniform(-1.0, 1.0)),
        static_cast<float>(rng.uniform(-1.0, 1.0))};
    EXPECT_LE(tree.decision_path_length(row), tree.height());
  }
}

TEST(DecisionTree, ToTextListsFeatures) {
  const Dataset data = xor_dataset(500, 42);
  DecisionTree tree;
  tree.fit(data);
  const std::string text = tree.to_text({"x", "y"});
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_TRUE(text.find("x <=") != std::string::npos ||
              text.find("y <=") != std::string::npos);
}

TEST(DecisionTree, DeterministicFits) {
  const Dataset data = gaussian_blobs(1000, 4, 1.0, 42);
  DecisionTree a;
  DecisionTree b;
  a.fit(data);
  b.fit(data);
  Rng rng{9};
  for (int i = 0; i < 200; ++i) {
    std::vector<float> row(4);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    EXPECT_DOUBLE_EQ(a.predict_proba(row), b.predict_proba(row));
  }
}

class TreeNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(TreeNoiseSweep, AccuracyDegradesGracefullyWithNoise) {
  const Dataset data = gaussian_blobs(3000, 4, GetParam(), 42);
  Rng rng{1};
  const auto split = data.train_test_split(0.3, rng);
  DecisionTree tree;
  tree.fit(split.train);
  const double acc = accuracy_on(tree, split.test);
  EXPECT_GT(acc, 0.55);  // always beats chance on separated blobs
  EXPECT_LE(acc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Noise, TreeNoiseSweep,
                         ::testing::Values(0.3, 0.8, 1.2, 1.8));

}  // namespace
}  // namespace otac::ml
