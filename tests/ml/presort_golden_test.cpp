// Golden-equivalence pin for the presort-partition CART rewrite.
//
// The serialized-tree hashes below were captured from the seed splitter
// (per-node gather + std::sort, commit 34e37c1) on a fixed synthetic
// dataset. The presorted splitter must produce the *identical* tree —
// same splits, thresholds, probabilities, and importance — which holds
// because unit weights make the double accumulations exact, thresholds
// are midpoints of distinct boundary values, and the RNG draw sequence of
// feature subsampling is unchanged. Any reordering bug, tie-handling
// slip, or float deviation changes the serialize() blob and trips these.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/rng.h"

namespace otac::ml {
namespace {

Dataset make_golden_dataset(std::size_t rows, std::size_t features,
                            std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  Dataset data{names};
  Rng rng{seed};
  std::vector<float> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    float score = 0.0F;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = static_cast<float>(rng.uniform_int(0, 1000)) / 10.0F;
      score += row[f] * (f % 2 == 0 ? 1.0F : -0.5F);
    }
    const int label =
        (score + static_cast<float>(rng.uniform_int(0, 40))) > 30.0F ? 1 : 0;
    data.add_row(row, label, 1.0F);
  }
  return data;
}

std::uint64_t blob_hash(const std::string& blob) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : blob) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

TEST(PresortGolden, FullFeatureTreeMatchesSeedSplitter) {
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  DecisionTree tree{config};
  tree.fit(data);

  EXPECT_EQ(tree.split_count(), 30U);
  EXPECT_EQ(tree.height(), 8U);
  EXPECT_EQ(tree.node_count(), 61U);
  EXPECT_EQ(blob_hash(tree.serialize()), 0x5715a8d9e1cde63bULL)
      << "serialized tree diverged from the seed splitter";
}

TEST(PresortGolden, FeatureSubsampledTreeMatchesSeedSplitter) {
  // Random-forest mode: pins the RNG draw sequence of feature subsampling
  // on top of the split arithmetic.
  const Dataset data = make_golden_dataset(4000, 6, 99);
  DecisionTreeConfig config;
  config.max_splits = 30;
  config.max_features = 2;
  config.feature_subsample_seed = 1234;
  DecisionTree tree{config};
  tree.fit(data);

  EXPECT_EQ(tree.split_count(), 30U);
  EXPECT_EQ(blob_hash(tree.serialize()), 0x184bb9d7b7e7e7f1ULL)
      << "serialized tree diverged from the seed splitter";
}

TEST(PresortGolden, RefitProducesIdenticalTree) {
  // fit() must be stateless across calls: the presort index is rebuilt per
  // fit, so refitting the same data yields the same blob.
  const Dataset data = make_golden_dataset(1000, 4, 5);
  DecisionTreeConfig config;
  config.max_splits = 15;
  DecisionTree tree{config};
  tree.fit(data);
  const std::string first = tree.serialize();
  tree.fit(data);
  EXPECT_EQ(tree.serialize(), first);
}

}  // namespace
}  // namespace otac::ml
