// Golden pins for the run-report serializers plus end-to-end report
// invariants on a seeded 1-shard run.
//
// The serializer goldens use handcrafted snapshots (no wall clock
// anywhere), so they pin the exact bytes of the JSON schema and the
// Prometheus exposition grammar. The end-to-end test then checks the
// deterministic half of a real run's report — everything except the
// "_seconds" wall-clock histograms — is reproducible run to run and
// consistent with the RunResult it rode along with.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/intelligent_cache.h"
#include "core/sharded_cache.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

using obs::BarrierSample;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::RunReport;

// ---------------------------------------------------------------------------
// Serializer goldens (handcrafted, fully deterministic).

MetricsSnapshot small_snapshot() {
  MetricsRegistry registry;
  *registry.counter("requests") = 4;
  *registry.gauge("bytes") = 2.5;
  return registry.snapshot();
}

TEST(ReportGolden, JsonBytesArePinned) {
  RunReport report;
  report.source = "test";
  report.mode = "Proposal";
  report.policy = "LRU";
  report.shards = 1;
  report.threads = 1;
  report.derived["hit_rate"] = 0.5;
  report.merged = small_snapshot();
  report.per_shard.push_back(report.merged);
  report.timeline.push_back(BarrierSample{3, 86400, report.merged});

  const std::string expected = R"({
  "source": "test",
  "mode": "Proposal",
  "policy": "LRU",
  "shards": 1,
  "threads": 1,
  "derived": {
    "hit_rate": 0.5
  },
  "merged": {
    "counters": {
      "requests": 4
    },
    "gauges": {
      "bytes": 2.5
    },
    "histograms": {}
  },
  "per_shard": [
    {
      "counters": {
        "requests": 4
      },
      "gauges": {
        "bytes": 2.5
      },
      "histograms": {}
    }
  ],
  "timeline": [
    {
      "request_index": 3,
      "sim_seconds": 86400,
      "metrics": {
        "counters": {
          "requests": 4
        },
        "gauges": {
          "bytes": 2.5
        },
        "histograms": {}
      }
    }
  ]
}
)";
  EXPECT_EQ(report.to_json(), expected);
}

// Histogram golden: all mass in the overflow bucket makes every quantile
// exactly the last finite bound, so the numbers are pinnable byte for byte.
TEST(ReportGolden, HistogramJsonAndPrometheusArePinned) {
  RunReport report;
  report.source = "test";
  report.mode = "Proposal";
  report.policy = "LRU";
  report.shards = 1;
  report.threads = 1;
  report.derived["hit_rate"] = 0.5;
  MetricsRegistry registry;
  *registry.counter("requests") = 4;
  *registry.gauge("bytes") = 2.5;
  registry.histogram("lat", {1.0, 10.0})->add(100.0, 4);
  report.merged = registry.snapshot();

  const std::string expected_json = R"({
  "source": "test",
  "mode": "Proposal",
  "policy": "LRU",
  "shards": 1,
  "threads": 1,
  "derived": {
    "hit_rate": 0.5
  },
  "merged": {
    "counters": {
      "requests": 4
    },
    "gauges": {
      "bytes": 2.5
    },
    "histograms": {
      "lat": {
        "upper_bounds": [1, 10],
        "counts": [0, 0, 4],
        "count": 4,
        "sum": 400,
        "p50": 10,
        "p90": 10,
        "p99": 10,
        "p999": 10
      }
    }
  },
  "per_shard": [],
  "timeline": []
}
)";
  EXPECT_EQ(report.to_json(), expected_json);

  const std::string expected_prom =
      R"(# otacache run report: source=test mode=Proposal policy=LRU shards=1 threads=1
# TYPE otac_requests counter
otac_requests{shard="all"} 4
# TYPE otac_bytes gauge
otac_bytes{shard="all"} 2.5
# TYPE otac_lat histogram
otac_lat_bucket{shard="all",le="1"} 0
otac_lat_bucket{shard="all",le="10"} 0
otac_lat_bucket{shard="all",le="+Inf"} 4
otac_lat_sum{shard="all"} 400
otac_lat_count{shard="all"} 4
# TYPE otac_lat_p50 gauge
otac_lat_p50{shard="all"} 10
# TYPE otac_lat_p90 gauge
otac_lat_p90{shard="all"} 10
# TYPE otac_lat_p99 gauge
otac_lat_p99{shard="all"} 10
# TYPE otac_lat_p999 gauge
otac_lat_p999{shard="all"} 10
# TYPE otac_derived_hit_rate gauge
otac_derived_hit_rate{shard="all"} 0.5
)";
  EXPECT_EQ(report.to_prometheus(), expected_prom);
}

TEST(ReportGolden, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("latency.request_us"),
            "otac_latency_request_us");
  EXPECT_EQ(obs::prometheus_name("a-b c"), "otac_a_b_c");
}

// ---------------------------------------------------------------------------
// End-to-end: seeded 1-shard run.

Trace make_trace() {
  WorkloadConfig workload;
  workload.seed = 7;
  workload.num_photos = 4'000;
  workload.num_owners = 300;
  workload.horizon_days = 3.0;
  return TraceGenerator{workload}.generate();
}

RunConfig proposal_config(const IntelligentCache& system) {
  RunConfig config;
  config.mode = AdmissionMode::proposal;
  config.capacity_bytes =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.02);
  config.shards = 1;
  config.threads = 1;
  return config;
}

// Wall-clock durations are the one non-deterministic metric family; by
// convention their names end in "_seconds" and they are excluded from all
// determinism pins.
MetricsSnapshot strip_timings(MetricsSnapshot snapshot) {
  for (auto it = snapshot.histograms.begin();
       it != snapshot.histograms.end();) {
    const std::string& name = it->first;
    const bool timing = name.size() >= 8 &&
                        name.compare(name.size() - 8, 8, "_seconds") == 0;
    it = timing ? snapshot.histograms.erase(it) : std::next(it);
  }
  return snapshot;
}

TEST(ReportGolden, SeededRunIsDeterministicModuloTimings) {
  const Trace trace = make_trace();
  const IntelligentCache system{trace};
  const RunConfig config = proposal_config(system);
  const RunResult a = ShardedCache{system}.run(config);
  const RunResult b = ShardedCache{system}.run(config);

  EXPECT_EQ(strip_timings(a.obs.merged), strip_timings(b.obs.merged));
  ASSERT_EQ(a.obs.timeline.size(), b.obs.timeline.size());
  for (std::size_t t = 0; t < a.obs.timeline.size(); ++t) {
    EXPECT_EQ(a.obs.timeline[t].request_index,
              b.obs.timeline[t].request_index);
    EXPECT_EQ(a.obs.timeline[t].sim_seconds, b.obs.timeline[t].sim_seconds);
    EXPECT_EQ(strip_timings(a.obs.timeline[t].merged),
              strip_timings(b.obs.timeline[t].merged));
  }
  EXPECT_EQ(a.obs.derived, b.obs.derived);
}

TEST(ReportGolden, ReportAgreesWithRunResult) {
  const Trace trace = make_trace();
  const IntelligentCache system{trace};
  const RunResult result = ShardedCache{system}.run(proposal_config(system));
  const MetricsSnapshot& merged = result.obs.merged;

  EXPECT_EQ(merged.counters.at("cache.requests"), result.stats.requests);
  EXPECT_EQ(merged.counters.at("cache.hits"), result.stats.hits);
  EXPECT_EQ(merged.counters.at("cache.misses"), result.stats.misses());
  EXPECT_EQ(merged.counters.at("cache.insertions"), result.stats.insertions);
  EXPECT_EQ(merged.counters.at("cache.rejected"), result.stats.rejected);
  EXPECT_EQ(merged.counters.at("cache.hits") +
                merged.counters.at("cache.misses"),
            merged.counters.at("cache.requests"));
  EXPECT_EQ(merged.counters.at("trainer.trainings"),
            static_cast<std::uint64_t>(result.trainings));

  // The latency histogram saw every request, split hit/miss exactly as the
  // replay did. (Under OTAC_OBS_OFF the per-request recorder is compiled
  // out, so the histogram exists but stays empty.)
  const obs::HistogramSnapshot& latency =
      merged.histograms.at("latency.request_us");
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(latency.count(), result.stats.requests);
  } else {
    EXPECT_EQ(latency.count(), 0U);
  }

  EXPECT_DOUBLE_EQ(result.obs.derived.at("file_hit_rate"),
                   result.stats.file_hit_rate());
  EXPECT_DOUBLE_EQ(result.obs.derived.at("mean_latency_us"),
                   result.mean_latency_us);

  // Timeline: barrier order, cumulative, ends at the last request.
  ASSERT_FALSE(result.obs.timeline.empty());
  for (std::size_t t = 1; t < result.obs.timeline.size(); ++t) {
    EXPECT_GT(result.obs.timeline[t].request_index,
              result.obs.timeline[t - 1].request_index);
    EXPECT_LE(result.obs.timeline[t - 1]
                  .merged.counters.at("cache.requests"),
              result.obs.timeline[t].merged.counters.at("cache.requests"));
  }
  EXPECT_EQ(result.obs.timeline.back().request_index,
            trace.requests.size() - 1);
  EXPECT_EQ(result.obs.timeline.back().merged.counters.at("cache.requests"),
            result.stats.requests);

  EXPECT_EQ(result.obs.shards, 1U);
  ASSERT_EQ(result.obs.per_shard.size(), 1U);
  EXPECT_EQ(strip_timings(result.obs.per_shard[0]).counters.at(
                "cache.requests"),
            result.stats.requests);
}

TEST(ReportGolden, ShardedOneMatchesUnshardedModuloTimings) {
  const Trace trace = make_trace();
  const IntelligentCache system{trace};
  const RunConfig config = proposal_config(system);
  const RunResult unsharded = system.run(config);
  const RunResult sharded = ShardedCache{system}.run(config);

  MetricsSnapshot a = strip_timings(unsharded.obs.merged);
  MetricsSnapshot b = strip_timings(sharded.obs.merged);
  // These metrics only exist on the sharded path: the shard-buffer drain
  // counter, the seqlock publish counter, and the admission micro-batch
  // size histogram (the unsharded system serves scalar).
  b.counters.erase("trainer.samples_drained");
  b.counters.erase("trainer.compiled_tree_swaps");
  b.histograms.erase("serving.admission_batch_size");
  EXPECT_EQ(a, b);
  EXPECT_EQ(unsharded.obs.derived, sharded.obs.derived);
}

TEST(ReportGolden, RealRunJsonSchemaAndPrometheusGrammar) {
  const Trace trace = make_trace();
  const IntelligentCache system{trace};
  RunResult result = ShardedCache{system}.run(proposal_config(system));
  result.obs.source = "test";
  const std::string json = result.obs.to_json();

  // Top-level key order is part of the schema (std::map + explicit emit
  // order) — downstream diff tooling depends on it.
  std::size_t pos = 0;
  for (const char* key :
       {"\"source\":", "\"mode\":", "\"policy\":", "\"shards\":",
        "\"threads\":", "\"derived\":", "\"merged\":", "\"per_shard\":",
        "\"timeline\":"}) {
    const std::size_t found = json.find(key, pos);
    ASSERT_NE(found, std::string::npos) << key;
    pos = found;
  }
  EXPECT_NE(json.find("\"latency.request_us\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);

  // Prometheus text exposition: every line is a comment or a
  // name{shard="..."} value sample.
  const std::string prom = result.obs.to_prometheus();
  std::istringstream lines{prom};
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("otac_", 0), 0U) << line;
    EXPECT_NE(line.find("{shard=\""), std::string::npos) << line;
    EXPECT_NE(line.find("} "), std::string::npos) << line;
    ++samples;
  }
  EXPECT_GT(samples, 20U);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("otac_latency_request_us_p99{shard=\"all\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace otac
