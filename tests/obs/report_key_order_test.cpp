// Regression pin for the serialization-order invariant the static-analysis
// gate (DESIGN.md §11, otac-lint rule `unordered-serialization`) exists to
// protect: every name-keyed section of a RunReport must serialize in
// sorted key order, independent of the order metrics were registered.
// Registration order is scheduling/insertion history — if it ever leaked
// into the report bytes, report goldens and cross-shard diffs would churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"

namespace otac::obs {
namespace {

/// Object keys of one brace-delimited JSON section, in document order.
std::vector<std::string> section_keys(const std::string& json,
                                      const std::string& section) {
  const std::size_t start = json.find("\"" + section + "\": {");
  EXPECT_NE(start, std::string::npos) << "missing section " << section;
  std::size_t depth = 0;
  std::size_t i = json.find('{', start);
  const std::size_t open = i;
  for (; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) break;
  }
  const std::string body = json.substr(open, i - open);
  std::vector<std::string> keys;
  // Keys sit one brace deep; nested histogram objects are skipped.
  depth = 0;
  const std::regex key_re(R"re("([^"]+)":)re");
  std::size_t pos = 0;
  for (std::size_t j = 0; j < body.size(); ++j) {
    if (body[j] == '{') ++depth;
    if (body[j] == '}') --depth;
    if (depth == 1 && body[j] == '"') {
      std::smatch m;
      const std::string rest = body.substr(j);
      if (std::regex_search(rest.begin(), rest.end(), m, key_re) &&
          m.position(0) == 0) {
        keys.push_back(m[1]);
        j += static_cast<std::size_t>(m.length(0)) - 1;
      }
    }
    (void)pos;
  }
  return keys;
}

TEST(ReportKeyOrder, AdversarialRegistrationOrderSerializesSorted) {
  MetricsRegistry registry;
  // Deliberately register in reverse-sorted and interleaved order.
  *registry.counter("zeta.last") = 1;
  *registry.counter("cache.hits") = 2;
  *registry.counter("mid.way") = 3;
  *registry.counter("alpha.first") = 4;
  registry.set_gauge("z.gauge", 1.0);
  registry.set_gauge("a.gauge", 2.0);
  (void)registry.histogram("z.hist", {1.0, 2.0});
  (void)registry.histogram("a.hist", {1.0, 2.0});

  RunReport report;
  report.source = "key_order_test";
  report.merged = registry.snapshot();
  report.derived = {{"z_rate", 0.5}, {"a_rate", 0.25}};
  const std::string json = report.to_json();

  for (const std::string section : {"counters", "gauges", "histograms",
                                    "derived"}) {
    const std::vector<std::string> keys = section_keys(json, section);
    EXPECT_FALSE(keys.empty()) << section;
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
        << "section '" << section << "' not in sorted key order in:\n"
        << json;
  }

  // The exact counter order, pinned: registration order must not show.
  EXPECT_EQ(section_keys(json, "counters"),
            (std::vector<std::string>{"alpha.first", "cache.hits", "mid.way",
                                      "zeta.last"}));
}

TEST(ReportKeyOrder, PrometheusFamiliesFollowSortedMergedKeys) {
  MetricsRegistry registry;
  *registry.counter("b.second") = 1;
  *registry.counter("a.first") = 2;
  registry.set_gauge("d.gauge", 1.0);
  registry.set_gauge("c.gauge", 2.0);

  RunReport report;
  report.merged = registry.snapshot();
  const std::string prom = report.to_prometheus();

  const std::vector<std::string> expected_order{
      "otac_a_first", "otac_b_second", "otac_c_gauge", "otac_d_gauge"};
  std::size_t last = 0;
  for (const std::string& name : expected_order) {
    const std::size_t at = prom.find("# TYPE " + name + " ");
    ASSERT_NE(at, std::string::npos) << name << " missing in:\n" << prom;
    EXPECT_GE(at, last) << "family " << name << " out of order in:\n"
                        << prom;
    last = at;
  }
}

}  // namespace
}  // namespace otac::obs
