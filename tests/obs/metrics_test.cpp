// Unit coverage for the obs metrics layer: histogram bucket/quantile edge
// cases (empty, single-bucket, overflow), merge semantics (grid adoption,
// mismatch rejection), registry handle stability, merge associativity
// across shard counts, and the LatencyRecorder fast path.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace otac::obs {
namespace {

TEST(FixedHistogram, EmptyReportsZero) {
  const FixedHistogram h{std::vector<double>{1.0, 10.0}};
  EXPECT_EQ(h.count(), 0U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
}

TEST(FixedHistogram, NoBoundsIsSingleOverflowBucket) {
  FixedHistogram h{std::vector<double>{}};
  h.add(5.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 2U);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 1e9);
  // No finite bound exists, so the quantile cannot resolve a value.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(FixedHistogram, SingleBucketSplitsAtBound) {
  FixedHistogram h{std::vector<double>{10.0}};
  h.add(3.0);    // below: bucket 0
  h.add(10.0);   // le semantics: exactly the bound stays in bucket 0
  h.add(10.01);  // above: overflow bucket
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 2U);
  EXPECT_EQ(snap.counts[0], 2U);
  EXPECT_EQ(snap.counts[1], 1U);
}

TEST(FixedHistogram, OverflowQuantileClampsToLastBound) {
  FixedHistogram h{std::vector<double>{1.0, 10.0}};
  for (int i = 0; i < 100; ++i) h.add(1e6);  // everything overflows
  EXPECT_EQ(h.count(), 100U);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 10.0);
  EXPECT_DOUBLE_EQ(h.sum(), 1e8);
}

TEST(FixedHistogram, QuantileInterpolatesInsideBucket) {
  FixedHistogram h{std::vector<double>{100.0, 200.0}};
  for (int i = 0; i < 100; ++i) h.add(150.0);  // all in (100, 200]
  // The whole mass sits in bucket 1: the median interpolates halfway
  // through [100, 200].
  EXPECT_NEAR(h.quantile(0.5), 150.0, 1.0);
  EXPECT_GT(h.quantile(0.99), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.999), 200.0);
}

TEST(FixedHistogram, BucketOfMatchesLeSemantics) {
  const FixedHistogram h{std::vector<double>{1.0, 2.0, 5.0}};
  EXPECT_EQ(h.bucket_of(0.0), 0U);
  EXPECT_EQ(h.bucket_of(1.0), 0U);
  EXPECT_EQ(h.bucket_of(1.5), 1U);
  EXPECT_EQ(h.bucket_of(2.0), 1U);
  EXPECT_EQ(h.bucket_of(5.0), 2U);
  EXPECT_EQ(h.bucket_of(5.1), 3U);
}

TEST(FixedHistogram, MergePreservesCountsAndSum) {
  FixedHistogram a{std::vector<double>{1.0, 10.0}};
  FixedHistogram b{std::vector<double>{1.0, 10.0}};
  a.add(0.5);
  a.add(5.0);
  b.add(5.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4U);
  EXPECT_DOUBLE_EQ(a.sum(), 110.5);
  const HistogramSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.counts[0], 1U);
  EXPECT_EQ(snap.counts[1], 2U);
  EXPECT_EQ(snap.counts[2], 1U);
}

TEST(FixedHistogram, MergeRejectsMismatchedBounds) {
  FixedHistogram a{std::vector<double>{1.0, 10.0}};
  FixedHistogram b{std::vector<double>{1.0, 20.0}};
  a.add(1.0);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(FixedHistogram, MergeIntoDefaultAdoptsGrid) {
  FixedHistogram empty;  // default: no grid yet
  FixedHistogram data{std::vector<double>{1.0, 10.0}};
  data.add(5.0, 3);
  empty.merge(data);
  EXPECT_EQ(empty.count(), 3U);
  EXPECT_EQ(empty.upper_bounds(), data.upper_bounds());
  EXPECT_DOUBLE_EQ(empty.sum(), 15.0);
}

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  MetricsRegistry::Counter a = registry.counter("x");
  // Creating more metrics must not invalidate existing handles (node-based
  // map storage).
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("c" + std::to_string(i));
  }
  MetricsRegistry::Counter b = registry.counter("x");
  EXPECT_EQ(a, b);
  ++*a;
  *b += 2;
  EXPECT_EQ(registry.snapshot().counters.at("x"), 3U);
}

TEST(MetricsRegistry, HistogramFirstRegistrationWins) {
  MetricsRegistry registry;
  FixedHistogram* first = registry.histogram("h", {1.0, 2.0});
  FixedHistogram* second = registry.histogram("h", {5.0, 6.0, 7.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, SetIsIdempotentAssignment) {
  MetricsRegistry registry;
  registry.set("cum", 10);
  registry.set("cum", 10);
  registry.set("cum", 25);
  EXPECT_EQ(registry.snapshot().counters.at("cum"), 25U);
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", 2.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("g"), 2.5);
}

TEST(MetricsSnapshot, MergeSumsAndAdoptsMissingNames) {
  MetricsRegistry a;
  MetricsRegistry b;
  *a.counter("shared") = 2;
  *b.counter("shared") = 3;
  *b.counter("only_b") = 7;
  *a.gauge("bytes") = 10.0;
  *b.gauge("bytes") = 2.5;
  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 5U);
  EXPECT_EQ(merged.counters.at("only_b"), 7U);
  EXPECT_DOUBLE_EQ(merged.gauges.at("bytes"), 12.5);
}

// Deterministic per-shard content for the associativity pins below.
MetricsSnapshot shard_snapshot(std::size_t shard) {
  MetricsRegistry registry;
  *registry.counter("requests") = 100 * (shard + 1);
  *registry.counter("shard_" + std::to_string(shard)) = shard + 1;
  *registry.gauge("bytes") = 0.5 * static_cast<double>(shard + 1);
  FixedHistogram* h = registry.histogram("lat", {1.0, 10.0, 100.0});
  for (std::size_t i = 0; i <= shard; ++i) {
    h->add(static_cast<double>(i) * 7.0 + 0.5);
  }
  return registry.snapshot();
}

TEST(MetricsSnapshot, MergeIsAssociativeAcrossShardCounts) {
  for (const std::size_t shards : {1U, 2U, 3U, 5U, 8U}) {
    std::vector<MetricsSnapshot> parts;
    for (std::size_t s = 0; s < shards; ++s) {
      parts.push_back(shard_snapshot(s));
    }
    // Left fold: ((s0 + s1) + s2) + ...
    MetricsSnapshot left;
    for (const MetricsSnapshot& part : parts) left.merge(part);
    // Right fold: s0 + (s1 + (s2 + ...))
    MetricsSnapshot right;
    for (std::size_t s = shards; s-- > 0;) {
      MetricsSnapshot next = parts[s];
      next.merge(right);
      right = next;
    }
    EXPECT_EQ(left, right) << "shards=" << shards;
    // Pairwise tree fold must agree too (how a hierarchical aggregator
    // would combine them).
    std::vector<MetricsSnapshot> level = parts;
    while (level.size() > 1) {
      std::vector<MetricsSnapshot> next;
      for (std::size_t i = 0; i < level.size(); i += 2) {
        MetricsSnapshot pair = level[i];
        if (i + 1 < level.size()) pair.merge(level[i + 1]);
        next.push_back(pair);
      }
      level = next;
    }
    EXPECT_EQ(left, level[0]) << "shards=" << shards;
  }
}

TEST(MetricsRegistry, MergeMatchesSnapshotMerge) {
  MetricsRegistry target;
  *target.counter("c") = 1;
  target.histogram("lat", {1.0, 10.0, 100.0})->add(5.0);
  MetricsSnapshot expected = target.snapshot();
  expected.merge(shard_snapshot(2));

  target.merge(shard_snapshot(2));
  EXPECT_EQ(target.snapshot(), expected);
}

TEST(LatencyRecorder, RecordsPrecomputedBuckets) {
  MetricsRegistry registry;
  FixedHistogram* h = registry.histogram("lat", {1.0, 100.0, 10'000.0});
  LatencyRecorder recorder{h, /*hit_us=*/50.0, /*miss_us=*/3'000.0};
  recorder.record(true);
  recorder.record(true);
  recorder.record(false);
  const HistogramSnapshot snap = h->snapshot();
  if constexpr (kEnabled) {
    EXPECT_EQ(snap.counts[1], 2U);  // 50us -> (1, 100]
    EXPECT_EQ(snap.counts[2], 1U);  // 3000us -> (100, 10000]
    EXPECT_DOUBLE_EQ(snap.sum, 3'100.0);
  } else {
    // OTAC_OBS_OFF compiles record() down to nothing.
    EXPECT_EQ(snap.count(), 0U);
  }
}

TEST(LatencyRecorder, NullHistogramIsNoop) {
  LatencyRecorder recorder;  // default: no histogram bound
  recorder.record(true);     // must not crash
  recorder.record(false);
}

}  // namespace
}  // namespace otac::obs
