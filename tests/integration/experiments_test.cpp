// Integration tests over the experiments layer: the sweep engine, its CSV
// cache, the Table-1 runner, and the paper's end-to-end orderings at small
// scale.
#include <gtest/gtest.h>

#include <cstdlib>

#include "experiments/capacity_sweep.h"
#include "experiments/classifier_experiments.h"
#include "experiments/workloads.h"

namespace otac {
namespace {

class ExperimentsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setenv("OTAC_CACHE_DIR", "", 1);  // no disk cache inside tests
    trace_ = new Trace{load_bench_trace(0.08, 7)};
    info_ = new BenchWorkloadInfo{describe(*trace_, 0.08, 7)};
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete info_;
    unsetenv("OTAC_CACHE_DIR");
  }

  static SweepConfig small_sweep() {
    SweepConfig config;
    config.paper_gb = {4.0, 16.0};
    config.policies = {PolicyKind::lru, PolicyKind::fifo};
    return config;
  }

  static Trace* trace_;
  static BenchWorkloadInfo* info_;
};

Trace* ExperimentsFixture::trace_ = nullptr;
BenchWorkloadInfo* ExperimentsFixture::info_ = nullptr;

TEST_F(ExperimentsFixture, WorkloadDescribe) {
  EXPECT_EQ(info_->seed, 7u);
  EXPECT_GT(info_->requests, 10'000u);
  EXPECT_GT(info_->photos, 10'000u);
  EXPECT_GT(info_->mean_photo_size, 1'000.0);
}

TEST_F(ExperimentsFixture, MapPaperGbIsProportional) {
  const double total = info_->total_object_bytes;
  EXPECT_EQ(map_paper_gb(4.0, total), 2 * map_paper_gb(2.0, total));
  EXPECT_NEAR(static_cast<double>(map_paper_gb(450.0, total)), total,
              total * 1e-9);
}

TEST_F(ExperimentsFixture, SweepProducesAllCells) {
  const SweepConfig config = small_sweep();
  const SweepResult sweep = run_capacity_sweep(*trace_, config, *info_);
  // 2 capacities x (2 policies x 3 modes + belady) = 14 cells.
  EXPECT_EQ(sweep.cells.size(), 14u);
  for (const double gb : config.paper_gb) {
    for (const PolicyKind policy : config.policies) {
      for (const AdmissionMode mode : config.modes) {
        EXPECT_TRUE(sweep.find(policy, mode, gb).has_value())
            << policy_name(policy) << "/" << admission_mode_name(mode) << "@"
            << gb;
      }
    }
    EXPECT_TRUE(
        sweep.find(PolicyKind::belady, AdmissionMode::original, gb).has_value());
  }
}

TEST_F(ExperimentsFixture, SweepOrderingsMatchPaper) {
  const SweepConfig config = small_sweep();
  const SweepResult sweep = run_capacity_sweep(*trace_, config, *info_);
  for (const double gb : config.paper_gb) {
    const auto belady =
        *sweep.find(PolicyKind::belady, AdmissionMode::original, gb);
    for (const PolicyKind policy : config.policies) {
      const auto original = *sweep.find(policy, AdmissionMode::original, gb);
      const auto proposal = *sweep.find(policy, AdmissionMode::proposal, gb);
      const auto ideal = *sweep.find(policy, AdmissionMode::ideal, gb);
      // Hit-rate ordering: Belady >= Ideal >= Proposal >= Original (small
      // tolerance for the proposal's learning noise).
      EXPECT_GE(belady.file_hit_rate + 1e-9, ideal.file_hit_rate);
      EXPECT_GE(ideal.file_hit_rate + 0.01, proposal.file_hit_rate);
      EXPECT_GT(proposal.file_hit_rate, original.file_hit_rate - 0.005);
      // Writes: Proposal and Ideal write far less than Original.
      EXPECT_LT(proposal.file_write_rate, 0.6 * original.file_write_rate);
      EXPECT_LT(ideal.file_write_rate, proposal.file_write_rate + 0.01);
      // Latency consistent with hit rates (3 ms misses dominate).
      EXPECT_LT(proposal.latency_us, original.latency_us + 1.0);
    }
  }
}

TEST_F(ExperimentsFixture, SweepCsvRoundTrip) {
  const SweepConfig config = small_sweep();
  const SweepResult sweep = run_capacity_sweep(*trace_, config, *info_);
  const std::string csv = sweep_to_csv(sweep);
  const auto loaded = sweep_from_csv(csv);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->cells.size(), sweep.cells.size());
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    const SweepCell& a = sweep.cells[i];
    const SweepCell& b = loaded->cells[i];
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_DOUBLE_EQ(a.paper_gb, b.paper_gb);
    EXPECT_EQ(a.capacity_bytes, b.capacity_bytes);
    EXPECT_NEAR(a.file_hit_rate, b.file_hit_rate, 1e-9);
    EXPECT_NEAR(a.byte_write_rate, b.byte_write_rate, 1e-9);
    EXPECT_EQ(a.insertions, b.insertions);
  }
}

TEST_F(ExperimentsFixture, SweepCsvRejectsGarbage) {
  EXPECT_FALSE(sweep_from_csv("").has_value());
  EXPECT_FALSE(sweep_from_csv("random text\n1,2,3\n").has_value());
  EXPECT_FALSE(sweep_from_csv("policy,mode,paper_gb\n1,2\n").has_value());
}

TEST_F(ExperimentsFixture, ClassifierDatasetIsSampledAndLabeled) {
  const NextAccessInfo oracle = compute_next_access(*trace_);
  const ml::Dataset data =
      build_classifier_dataset(*trace_, oracle, 5'000.0, 100);
  EXPECT_GT(data.num_rows(), 1'000u);
  EXPECT_LE(data.num_rows(), trace_->requests.size());
  EXPECT_EQ(data.num_features(), FeatureExtractor::kFeatureCount);
  const double positive_rate = data.positive_weight() / data.total_weight();
  EXPECT_GT(positive_rate, 0.05);
  EXPECT_LT(positive_rate, 0.95);
}

TEST_F(ExperimentsFixture, Table1RunnerRanksTreeHighly) {
  const NextAccessInfo oracle = compute_next_access(*trace_);
  const ml::Dataset data =
      build_classifier_dataset(*trace_, oracle, 5'000.0, 100);
  Table1Config config;
  config.max_rows = 6'000;
  const auto rows = run_table1(data, config);
  ASSERT_EQ(rows.size(), 7u);
  double tree_accuracy = 0.0;
  double best_accuracy = 0.0;
  for (const auto& row : rows) {
    EXPECT_GT(row.metrics.accuracy, 0.5) << row.algorithm;
    EXPECT_GT(row.metrics.auc, 0.5) << row.algorithm;
    if (row.algorithm == "Decision Tree") tree_accuracy = row.metrics.accuracy;
    best_accuracy = std::max(best_accuracy, row.metrics.accuracy);
  }
  // The deployment argument: the tree is within a whisker of the best.
  EXPECT_GT(tree_accuracy, best_accuracy - 0.02);
  EXPECT_GT(tree_accuracy, 0.8);  // the paper's ">80% accuracy" claim
}

TEST_F(ExperimentsFixture, TreeFactsMatchPaperRegime) {
  const NextAccessInfo oracle = compute_next_access(*trace_);
  const ml::Dataset data =
      build_classifier_dataset(*trace_, oracle, 5'000.0, 100);
  const TreeConfigFacts facts = tree_config_facts(data, 30);
  EXPECT_LE(facts.splits, 30u);
  EXPECT_GE(facts.splits, 5u);
  EXPECT_LE(facts.height, 12u);
  EXPECT_LE(facts.mean_comparisons, static_cast<double>(facts.height));
}

TEST_F(ExperimentsFixture, DailyClassificationCoversMostDays) {
  const auto days = run_daily_classification(
      *trace_, PolicyKind::lru,
      map_paper_gb(10.0, info_->total_object_bytes));
  EXPECT_GE(days.size(), 7u);
  for (const auto& day : days) {
    if (day.day == 0) continue;  // pre-model day
    EXPECT_GT(day.raw.accuracy(), 0.5) << "day " << day.day;
  }
}

}  // namespace
}  // namespace otac
