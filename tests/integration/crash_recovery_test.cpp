// Crash-recovery harness (the acceptance gate of the robustness PR): every
// failpoint registered inside the checkpoint write/load path is fired in
// turn, plus direct on-disk corruption (truncation at every boundary, bit
// flips, deleted generations). After each injected failure the recovered
// system must hold either the last-good model — verified by serialized-blob
// comparison — or a clean cold start with the admit-all fallback active.
// Never UB, never a half-loaded model.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>

#include "cachesim/simulator.h"
#include "core/checkpoint.h"
#include "core/classifier_system.h"
#include "core/ota_criteria.h"
#include "trace/trace_generator.h"
#include "util/failpoint.h"

namespace otac {
namespace {

/// One trained system shared by all tests (training is the slow part).
struct TrainedWorld {
  Trace trace;
  NextAccessInfo oracle;
  ClassifierSystemConfig cs_config;
  ClassifierSnapshot trained;  // snapshot of a fully trained classifier

  TrainedWorld() {
    WorkloadConfig workload;
    workload.seed = 7;
    workload.num_owners = 500;
    workload.num_photos = 12'000;
    workload.horizon_days = 3.0;
    trace = TraceGenerator{workload}.generate();
    oracle = compute_next_access(trace);

    double dataset_bytes = 0.0;
    for (const auto& photo : trace.catalog.photos()) {
      dataset_bytes += photo.size_bytes;
    }
    const auto capacity = static_cast<std::uint64_t>(dataset_bytes * 0.015);
    const CriteriaResult criteria =
        compute_criteria(trace, oracle, capacity, /*h=*/0.5);
    cs_config.m = criteria.m;
    cs_config.h = criteria.h;
    cs_config.p = criteria.p;
    cs_config.collect_daily_metrics = false;

    ClassifierSystem classifier{trace, oracle, cs_config};
    const auto policy = make_policy(PolicyKind::lru, capacity);
    Simulator sim{trace};
    (void)sim.run(*policy, classifier);
    trained = classifier.snapshot();
  }
};

TrainedWorld& world() {
  static TrainedWorld instance;
  return instance;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::Registry::instance().disable_all();
    dir_ = testing::TempDir() + "/otac_crash_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fail::Registry::instance().disable_all();
    std::filesystem::remove_all(dir_);
  }

  /// Restore `snapshot` into a fresh system and serve a slice of the trace
  /// through it — proves the recovered state is actually servable.
  static void serve_with(const ClassifierSnapshot& snapshot,
                         bool expect_model) {
    ClassifierSystem classifier{world().trace, world().oracle,
                                world().cs_config};
    (void)classifier.restore(snapshot);
    EXPECT_EQ(classifier.has_model(), expect_model);
    const auto& requests = world().trace.requests;
    const std::size_t n = std::min<std::size_t>(2000, requests.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Request& request = requests[i];
      const PhotoMeta& photo = world().trace.catalog.photo(request.photo);
      const bool admitted = classifier.admit(i, request, photo);
      if (!expect_model) {
        EXPECT_TRUE(admitted);  // cold start == admit-all fallback
      }
      classifier.observe(i, request, photo, false);
    }
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, WorldActuallyTrained) {
  ASSERT_FALSE(world().trained.model_blob.empty())
      << "harness precondition: the shared world must end up with a model";
  ASSERT_GT(world().trained.trainings, 0);
}

#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED

TEST_F(CrashRecoveryTest, EveryWriteFailpointRecoversToLastGoodOrNew) {
  const ClassifierSnapshot& good = world().trained;
  ClassifierSnapshot older = good;
  older.trainings = good.trainings - 1;  // distinguishable older generation

  for (const std::string& name : CheckpointManager::failpoint_names()) {
    if (name == "checkpoint.load.io") continue;  // load-side; covered below
    SCOPED_TRACE(name);
    const std::string dir = dir_ + "/" + name;
    CheckpointManager manager{dir};
    manager.save(older);  // becomes the previous generation
    manager.save(good);   // last-good current

    ClassifierSnapshot newer = good;
    newer.trainings = good.trainings + 1;
    fail::Registry::instance().enable_once(name);
    bool save_ok = true;
    try {
      manager.save(newer);
    } catch (const std::exception&) {
      save_ok = false;
    }
    fail::Registry::instance().disable_all();
    EXPECT_GT(fail::Registry::instance().fires(name), 0u)
        << "failpoint never evaluated — the site was removed or renamed";

    const CheckpointLoad loaded = manager.load();
    ASSERT_NE(loaded.origin, CheckpointOrigin::none)
        << "a failed save must never destroy both on-disk generations";
    // The recovered model must be byte-identical to a known generation:
    // the new one (save survived), or last-good / older (rolled back).
    const bool is_known = loaded.snapshot.model_blob == good.model_blob ||
                          loaded.snapshot.model_blob == older.model_blob;
    EXPECT_TRUE(is_known) << "recovered blob matches no known generation";
    EXPECT_TRUE(save_ok || loaded.snapshot.trainings != newer.trainings ||
                loaded.snapshot.model_blob == good.model_blob)
        << "failed save must not surface the interrupted snapshot unless "
           "it landed completely";

    // And the recovered snapshot must actually serve.
    serve_with(loaded.snapshot, /*expect_model=*/true);

    // The failure must not wedge the manager: a clean retry lands.
    manager.save(newer);
    const CheckpointLoad after_retry = manager.load();
    EXPECT_EQ(after_retry.origin, CheckpointOrigin::current);
    EXPECT_EQ(after_retry.snapshot.trainings, newer.trainings);
  }
}

TEST_F(CrashRecoveryTest, BitflipSaveIsCaughtAtLoadTime) {
  // checkpoint.write.bitflip "succeeds" silently — the CRC must reject the
  // current generation and fall back to the previous one.
  const ClassifierSnapshot& good = world().trained;
  CheckpointManager manager{dir_};
  manager.save(good);

  ClassifierSnapshot newer = good;
  newer.trainings = good.trainings + 1;
  fail::Registry::instance().enable_once("checkpoint.write.bitflip");
  manager.save(newer);  // no exception: the corruption is silent
  fail::Registry::instance().disable_all();

  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::previous);
  EXPECT_EQ(loaded.rejected_files, 1);
  EXPECT_EQ(loaded.snapshot.model_blob, good.model_blob);
  serve_with(loaded.snapshot, /*expect_model=*/true);
}

TEST_F(CrashRecoveryTest, LoadIoFailureFallsBack) {
  const ClassifierSnapshot& good = world().trained;
  CheckpointManager manager{dir_};
  ClassifierSnapshot older = good;
  older.trainings = good.trainings - 1;
  manager.save(older);
  manager.save(good);

  fail::Registry::instance().enable_once("checkpoint.load.io");
  const CheckpointLoad loaded = manager.load();
  fail::Registry::instance().disable_all();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::previous);
  EXPECT_EQ(loaded.snapshot.trainings, older.trainings);
  serve_with(loaded.snapshot, /*expect_model=*/true);
}

TEST_F(CrashRecoveryTest, RetrainFailureKeepsServingLastGoodTree) {
  // trainer.train.fail on every retrain: the system must keep the restored
  // tree and count the failures — serving never stops.
  ClassifierSystem classifier{world().trace, world().oracle,
                              world().cs_config};
  // Reset the retrain schedule: a snapshot taken at the end of the trace
  // would otherwise suppress retraining for the whole replay.
  ClassifierSnapshot snapshot = world().trained;
  snapshot.last_trained_day = std::numeric_limits<std::int64_t>::min();
  snapshot.last_trained_time = std::numeric_limits<std::int64_t>::min();
  ASSERT_TRUE(classifier.restore(snapshot));
  ASSERT_TRUE(classifier.has_model());
  const std::string before = classifier.model()->serialize();

  fail::Registry::instance().enable("trainer.train.fail");
  const auto& requests = world().trace.requests;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    const PhotoMeta& photo = world().trace.catalog.photo(request.photo);
    (void)classifier.admit(i, request, photo);
    classifier.observe(i, request, photo, false);
  }
  fail::Registry::instance().disable_all();

  EXPECT_GT(classifier.degradation().retrain_failures, 0u);
  ASSERT_TRUE(classifier.has_model());
  EXPECT_EQ(classifier.model()->serialize(), before)
      << "failed retrains must not replace the last-good tree";
}

#endif  // OTAC_FAILPOINTS_ENABLED

TEST_F(CrashRecoveryTest, TruncatedCurrentAtEveryBoundaryFallsBack) {
  const ClassifierSnapshot& good = world().trained;
  CheckpointManager manager{dir_};
  ClassifierSnapshot older = good;
  older.trainings = good.trainings - 1;
  manager.save(older);
  manager.save(good);

  std::string bytes;
  {
    std::ifstream in(manager.current_path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>{in}, {});
  }
  // Simulated torn writes of the *published* file (e.g. filesystem without
  // atomic rename semantics): every prefix must fall back to previous.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 64)) {
    std::ofstream out(manager.current_path(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    const CheckpointLoad loaded = manager.load();
    ASSERT_EQ(loaded.origin, CheckpointOrigin::previous) << "cut " << cut;
    ASSERT_EQ(loaded.snapshot.model_blob, older.model_blob);
  }
}

TEST_F(CrashRecoveryTest, BitFlippedCurrentFallsBack) {
  const ClassifierSnapshot& good = world().trained;
  CheckpointManager manager{dir_};
  ClassifierSnapshot older = good;
  older.trainings = good.trainings - 1;
  manager.save(older);
  manager.save(good);

  std::string bytes;
  {
    std::ifstream in(manager.current_path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>{in}, {});
  }
  for (std::size_t pos = 0; pos < bytes.size();
       pos += std::max<std::size_t>(1, bytes.size() / 97)) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x08;
    {
      std::ofstream out(manager.current_path(),
                        std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    const CheckpointLoad loaded = manager.load();
    ASSERT_EQ(loaded.origin, CheckpointOrigin::previous) << "byte " << pos;
    ASSERT_EQ(loaded.snapshot.model_blob, older.model_blob);
  }
}

TEST_F(CrashRecoveryTest, BothGenerationsGoneMeansCleanColdStart) {
  const ClassifierSnapshot& good = world().trained;
  CheckpointManager manager{dir_};
  manager.save(good);
  manager.save(good);
  for (const std::string& path :
       {manager.current_path(), manager.previous_path()}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "\xde\xad\xbe\xef corrupted beyond recognition";
  }
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::none);
  EXPECT_EQ(loaded.rejected_files, 2);
  // Cold start: fresh system, no model, admit-all fallback active.
  serve_with(loaded.snapshot, /*expect_model=*/false);
}

TEST_F(CrashRecoveryTest, CorruptModelBlobDegradesToAdmitAll) {
  // A snapshot whose model section is valid CRC-wise but holds a logically
  // corrupt tree (e.g. written by a buggy trainer) must degrade to
  // admit-all, not crash or serve garbage.
  ClassifierSnapshot snapshot = world().trained;
  snapshot.model_blob = "otac-dtree 1 2 1 1 9\n0 nan 1 1 0.5 0\n";

  ClassifierSystem classifier{world().trace, world().oracle,
                              world().cs_config};
  EXPECT_FALSE(classifier.restore(snapshot));
  EXPECT_FALSE(classifier.has_model());
  EXPECT_EQ(classifier.degradation().rejected_models, 1u);
  // History/trainer sections still restored — only the model degraded.
  EXPECT_EQ(classifier.history().rectified_count(),
            snapshot.history_rectified);

  const Request& request = world().trace.requests.front();
  EXPECT_TRUE(classifier.admit(0, request,
                               world().trace.catalog.photo(request.photo)));
}

TEST_F(CrashRecoveryTest, ArityMismatchedModelIsRejectedOnRestore) {
  // A tree trained for a different feature subset must not be served.
  ClassifierSnapshot snapshot = world().trained;
  snapshot.model_blob = "otac-dtree 1 1 0 0 3\n-1 0 -1 -1 0.5 0\n0 0 0 \n";
  ClassifierSystem classifier{world().trace, world().oracle,
                              world().cs_config};
  EXPECT_FALSE(classifier.restore(snapshot));
  EXPECT_FALSE(classifier.has_model());
  EXPECT_EQ(classifier.degradation().rejected_models, 1u);
}

TEST_F(CrashRecoveryTest, MisconfiguredSubsetDegradesPerRequest) {
  // A deployed feature subset pointing outside the extractor's nine
  // features must route every prediction to the fallback admit, counted
  // as predict_failures — not read out of bounds.
  ClassifierSystemConfig config = world().cs_config;
  config.ota.feature_subset = {0, 99};
  ClassifierSystem classifier{world().trace, world().oracle, config};

  ClassifierSnapshot snapshot;
  snapshot.model_blob = "otac-dtree 1 1 0 0 2\n-1 0 -1 -1 0.9 0\n0 0 \n";
  ASSERT_TRUE(classifier.restore(snapshot));
  ASSERT_TRUE(classifier.has_model());

  const Request& request = world().trace.requests.front();
  EXPECT_TRUE(classifier.admit(0, request,
                               world().trace.catalog.photo(request.photo)));
  EXPECT_EQ(classifier.degradation().predict_failures, 1u);
}

TEST_F(CrashRecoveryTest, SnapshotRestoreRoundTripPreservesServingState) {
  // restore(snapshot()) must reproduce byte-identical serving decisions.
  ClassifierSystem restored{world().trace, world().oracle, world().cs_config};
  ASSERT_TRUE(restored.restore(world().trained));
  EXPECT_EQ(restored.model()->serialize(), world().trained.model_blob);
  EXPECT_EQ(restored.trainings(), world().trained.trainings);
  EXPECT_EQ(restored.history().rectified_count(),
            world().trained.history_rectified);
  const ClassifierSnapshot again = restored.snapshot();
  EXPECT_EQ(again.model_blob, world().trained.model_blob);
  EXPECT_EQ(again.samples.size(), world().trained.samples.size());
  EXPECT_EQ(again.history.size(), world().trained.history.size());
}

}  // namespace
}  // namespace otac
