// Disk-cache behaviour of the experiment layer: a second load must hit the
// cache (identical results, no recomputation) and corrupt cache files must
// be regenerated rather than trusted.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "experiments/capacity_sweep.h"
#include "experiments/workloads.h"

namespace otac {
namespace {

class SweepCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("otac_sweep_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    setenv("OTAC_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("OTAC_CACHE_DIR");
    std::filesystem::remove_all(dir_);
  }

  static SweepConfig tiny_sweep() {
    SweepConfig config;
    config.paper_gb = {8.0};
    config.policies = {PolicyKind::lru};
    config.include_belady = false;
    return config;
  }

  std::filesystem::path dir_;
};

TEST_F(SweepCacheFixture, SecondLoadHitsCacheAndMatches) {
  const Trace trace = load_bench_trace(0.05, 3);
  const BenchWorkloadInfo info = describe(trace, 0.05, 3);
  const SweepConfig config = tiny_sweep();

  const auto t0 = std::chrono::steady_clock::now();
  const SweepResult first = load_or_run_sweep(trace, config, info);
  const auto compute_time = std::chrono::steady_clock::now() - t0;

  // One CSV must now exist in the cache dir.
  std::size_t csv_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    csv_files += entry.path().extension() == ".csv";
  }
  EXPECT_EQ(csv_files, 1u);

  const auto t1 = std::chrono::steady_clock::now();
  const SweepResult second = load_or_run_sweep(trace, config, info);
  const auto cached_time = std::chrono::steady_clock::now() - t1;

  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_NEAR(second.cells[i].file_hit_rate, first.cells[i].file_hit_rate,
                1e-9);
    EXPECT_EQ(second.cells[i].insertions, first.cells[i].insertions);
  }
  EXPECT_LT(cached_time, compute_time / 2);
}

TEST_F(SweepCacheFixture, DifferentConfigGetsDifferentCacheEntry) {
  const Trace trace = load_bench_trace(0.05, 3);
  const BenchWorkloadInfo info = describe(trace, 0.05, 3);
  (void)load_or_run_sweep(trace, tiny_sweep(), info);
  SweepConfig other = tiny_sweep();
  other.paper_gb = {4.0};
  (void)load_or_run_sweep(trace, other, info);
  std::size_t csv_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    csv_files += entry.path().extension() == ".csv";
  }
  EXPECT_EQ(csv_files, 2u);
}

TEST_F(SweepCacheFixture, CorruptCacheIsRegenerated) {
  const Trace trace = load_bench_trace(0.05, 3);
  const BenchWorkloadInfo info = describe(trace, 0.05, 3);
  const SweepConfig config = tiny_sweep();
  const SweepResult first = load_or_run_sweep(trace, config, info);

  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".csv") {
      std::ofstream file(entry.path(), std::ios::trunc);
      file << "garbage";
    }
  }
  const SweepResult regenerated = load_or_run_sweep(trace, config, info);
  ASSERT_EQ(regenerated.cells.size(), first.cells.size());
  EXPECT_NEAR(regenerated.cells[0].file_hit_rate,
              first.cells[0].file_hit_rate, 1e-9);
}

TEST_F(SweepCacheFixture, TraceCacheRoundTrips) {
  const Trace first = load_bench_trace(0.05, 9);
  // Second call must load the cached binary and agree exactly.
  const Trace second = load_bench_trace(0.05, 9);
  ASSERT_EQ(second.requests.size(), first.requests.size());
  for (std::size_t i = 0; i < first.requests.size(); i += 997) {
    ASSERT_EQ(second.requests[i].photo, first.requests[i].photo);
    ASSERT_EQ(second.requests[i].time.seconds, first.requests[i].time.seconds);
  }
}

}  // namespace
}  // namespace otac
