// Robustness of the headline claim across seeds and workload variations:
// the Proposal must beat the Original on hit rate and cut writes sharply
// regardless of the random universe drawn.
#include <gtest/gtest.h>

#include "core/intelligent_cache.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

struct Outcome {
  double original_hit;
  double proposal_hit;
  double write_cut;
};

Outcome run_once(const WorkloadConfig& workload) {
  const Trace trace = TraceGenerator{workload}.generate();
  const IntelligentCache system{trace};
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.015);

  config.mode = AdmissionMode::original;
  const RunResult original = system.run(config);
  config.mode = AdmissionMode::proposal;
  const RunResult proposal = system.run(config);
  return Outcome{
      original.stats.file_hit_rate(), proposal.stats.file_hit_rate(),
      1.0 - static_cast<double>(proposal.stats.insertions) /
                static_cast<double>(original.stats.insertions)};
}

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, ProposalWinsForAnySeed) {
  WorkloadConfig workload;
  workload.seed = GetParam();
  workload.num_owners = 1'000;
  workload.num_photos = 25'000;
  const Outcome outcome = run_once(workload);
  EXPECT_GT(outcome.proposal_hit, outcome.original_hit)
      << "seed " << GetParam();
  EXPECT_GT(outcome.write_cut, 0.5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(3u, 17u, 256u, 9001u));

TEST(WorkloadRobustness, HoldsUnderConceptDrift) {
  WorkloadConfig workload;
  workload.seed = 5;
  workload.num_owners = 1'000;
  workload.num_photos = 25'000;
  workload.type_popularity_rotation_days = 2;
  const Outcome outcome = run_once(workload);
  EXPECT_GT(outcome.proposal_hit, outcome.original_hit - 0.005);
  EXPECT_GT(outcome.write_cut, 0.5);
}

TEST(WorkloadRobustness, HoldsWithFewOneTimers) {
  WorkloadConfig workload;
  workload.seed = 5;
  workload.num_owners = 1'000;
  workload.num_photos = 25'000;
  workload.one_time_object_fraction = 0.25;
  workload.one_time_access_share = 0.06;
  const Outcome outcome = run_once(workload);
  // Less to exclude, but the technique must not hurt.
  EXPECT_GT(outcome.proposal_hit, outcome.original_hit - 0.01);
  EXPECT_GT(outcome.write_cut, 0.2);
}

TEST(WorkloadRobustness, HoldsWithFlatterDiurnalCurve) {
  WorkloadConfig workload;
  workload.seed = 5;
  workload.num_owners = 1'000;
  workload.num_photos = 25'000;
  workload.diurnal.peak_to_trough = 1.5;
  const Outcome outcome = run_once(workload);
  EXPECT_GT(outcome.proposal_hit, outcome.original_hit - 0.005);
  EXPECT_GT(outcome.write_cut, 0.5);
}

}  // namespace
}  // namespace otac
