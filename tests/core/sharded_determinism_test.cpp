// Determinism regression tests for the sharded replay (ctest label:
// concurrency — they ride in the TSan build because a data race is the
// most likely way this property would break).
//
// The design promise: a sharded run is a pure function of
// (trace, config, shard partition). Thread count, scheduling, and repeated
// execution must not change a single bit of the merged RunResult — the
// defaulted operator== compares every counter, every confusion matrix,
// every double, and the eviction-sequence hash.
#include "core/sharded_cache.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace otac {
namespace {

class ShardedDeterminismFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 300;
    config.num_photos = 8'000;
    trace_ = new Trace{TraceGenerator{config}.generate()};
    system_ = new IntelligentCache{*trace_};
    capacity_ =
        static_cast<std::uint64_t>(system_->total_object_bytes() * 0.02);
  }
  static void TearDownTestSuite() {
    delete system_;
    delete trace_;
    system_ = nullptr;
    trace_ = nullptr;
  }

  static RunConfig sharded_config(AdmissionMode mode, std::size_t shards,
                                  std::size_t threads) {
    RunConfig config;
    config.policy = PolicyKind::lru;
    config.capacity_bytes = capacity_;
    config.mode = mode;
    config.shards = shards;
    config.threads = threads;
    return config;
  }

  static Trace* trace_;
  static IntelligentCache* system_;
  static std::uint64_t capacity_;
};

Trace* ShardedDeterminismFixture::trace_ = nullptr;
IntelligentCache* ShardedDeterminismFixture::system_ = nullptr;
std::uint64_t ShardedDeterminismFixture::capacity_ = 0;

TEST_F(ShardedDeterminismFixture, RepeatedProposalRunsAreBitIdentical) {
  const ShardedCache sharded{*system_};
  const RunConfig config = sharded_config(AdmissionMode::proposal, 8, 8);
  const RunResult first = sharded.run(config);
  const RunResult second = sharded.run(config);
  EXPECT_TRUE(first == second)
      << "hits " << first.stats.hits << " vs " << second.stats.hits
      << ", eviction_hash " << first.stats.eviction_hash << " vs "
      << second.stats.eviction_hash << ", trainings " << first.trainings
      << " vs " << second.trainings;
  // The run did meaningful work (models trained, evictions happened) —
  // otherwise "identical" would be vacuous.
  EXPECT_GT(first.trainings, 0);
  EXPECT_GT(first.stats.evictions, 0u);
}

TEST_F(ShardedDeterminismFixture, ThreadCountDoesNotChangeResults) {
  const ShardedCache sharded{*system_};
  const RunResult serial =
      sharded.run(sharded_config(AdmissionMode::proposal, 8, 1));
  for (const std::size_t threads : {2u, 8u}) {
    const RunResult parallel =
        sharded.run(sharded_config(AdmissionMode::proposal, 8, threads));
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
}

TEST_F(ShardedDeterminismFixture, OriginalModeIsThreadCountInvariantToo) {
  const ShardedCache sharded{*system_};
  const RunResult serial =
      sharded.run(sharded_config(AdmissionMode::original, 4, 1));
  const RunResult parallel =
      sharded.run(sharded_config(AdmissionMode::original, 4, 4));
  EXPECT_TRUE(parallel == serial);
}

}  // namespace
}  // namespace otac
