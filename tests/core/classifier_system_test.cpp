#include "core/classifier_system.h"

#include <gtest/gtest.h>

#include "cachesim/simulator.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

class ClassifierSystemFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 1'000;
    config.num_photos = 30'000;
    trace_ = new Trace{TraceGenerator{config}.generate()};
    oracle_ = new NextAccessInfo{compute_next_access(*trace_)};
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete oracle_;
    trace_ = nullptr;
    oracle_ = nullptr;
  }

  static ClassifierSystemConfig default_config() {
    ClassifierSystemConfig cs;
    cs.m = 3000.0;
    cs.h = 0.4;
    cs.p = 0.5;
    cs.cost_v = 2.0;
    return cs;
  }

  static Trace* trace_;
  static NextAccessInfo* oracle_;
};

Trace* ClassifierSystemFixture::trace_ = nullptr;
NextAccessInfo* ClassifierSystemFixture::oracle_ = nullptr;

TEST_F(ClassifierSystemFixture, AdmitsEverythingBeforeFirstModel) {
  ClassifierSystem system{*trace_, *oracle_, default_config()};
  EXPECT_FALSE(system.has_model());
  const Request& r = trace_->requests.front();
  EXPECT_TRUE(system.admit(0, r, trace_->catalog.photo(r.photo)));
}

TEST_F(ClassifierSystemFixture, HistoryCapacityFollowsRule) {
  const ClassifierSystemConfig cs = default_config();
  ClassifierSystem system{*trace_, *oracle_, cs};
  EXPECT_EQ(system.history().capacity(),
            history_table_capacity(cs.m, cs.h, cs.p,
                                   cs.ota.history_table_factor));
}

TEST_F(ClassifierSystemFixture, TrainsDailyAtConfiguredHour) {
  ClassifierSystem system{*trace_, *oracle_, default_config()};
  // Feed the whole trace through observe (as the simulator would).
  for (std::uint64_t i = 0; i < trace_->requests.size(); ++i) {
    const Request& r = trace_->requests[i];
    system.observe(i, r, trace_->catalog.photo(r.photo), false);
  }
  // 9-day trace, training every day at 05:00 from day 0.
  EXPECT_GE(system.trainings(), 8);
  EXPECT_TRUE(system.has_model());
  ASSERT_NE(system.model(), nullptr);
  EXPECT_LE(system.model()->split_count(), 30u);
}

TEST_F(ClassifierSystemFixture, EndToEndRejectsSubstantialShareOfMisses) {
  ClassifierSystemConfig cs = default_config();
  ClassifierSystem system{*trace_, *oracle_, cs};
  const auto policy = make_policy(PolicyKind::lru, 50'000'000);
  Simulator sim{*trace_};
  const CacheStats stats = sim.run(*policy, system);
  // After day-0 training, a large share of one-time misses must be barred.
  EXPECT_GT(stats.rejected, stats.requests / 20);
  // And the classifier's daily metrics must exist for most days.
  EXPECT_GE(system.daily_metrics().size(), 7u);
}

TEST_F(ClassifierSystemFixture, DailyMetricsAreReasonable) {
  ClassifierSystemConfig cs = default_config();
  ClassifierSystem system{*trace_, *oracle_, cs};
  const auto policy = make_policy(PolicyKind::lru, 50'000'000);
  Simulator sim{*trace_};
  (void)sim.run(*policy, system);
  // Skip day 0 (no model for the first 5 hours -> no admit decisions
  // recorded before the model exists is fine; after training they are).
  double worst_accuracy = 1.0;
  std::uint64_t decisions = 0;
  for (const DayClassifierMetrics& day : system.daily_metrics()) {
    if (day.day == 0) continue;
    worst_accuracy = std::min(worst_accuracy, day.raw.accuracy());
    decisions += day.raw.total();
  }
  EXPECT_GT(decisions, 1000u);
  EXPECT_GT(worst_accuracy, 0.55);  // must beat coin flipping every day
}

TEST_F(ClassifierSystemFixture, HistoryTableRectifies) {
  ClassifierSystemConfig cs = default_config();
  ClassifierSystem system{*trace_, *oracle_, cs};
  const auto policy = make_policy(PolicyKind::lru, 20'000'000);
  Simulator sim{*trace_};
  (void)sim.run(*policy, system);
  // Corrected decisions should flip some raw one-time verdicts: the number
  // of corrected positives must not exceed raw positives.
  std::uint64_t raw_positive = 0;
  std::uint64_t corrected_positive = 0;
  for (const DayClassifierMetrics& day : system.daily_metrics()) {
    raw_positive += day.raw.tp + day.raw.fp;
    corrected_positive += day.corrected.tp + day.corrected.fp;
  }
  EXPECT_LE(corrected_positive, raw_positive);
}

}  // namespace
}  // namespace otac
