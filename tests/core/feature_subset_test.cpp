#include <gtest/gtest.h>

#include <numeric>

#include "cachesim/simulator.h"
#include "core/classifier_system.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace small_trace() {
  WorkloadConfig config;
  config.num_owners = 800;
  config.num_photos = 20'000;
  return TraceGenerator{config}.generate();
}

CacheStats run_with_subset(const Trace& trace, const NextAccessInfo& oracle,
                           std::vector<std::size_t> subset,
                           ClassifierSystem** out = nullptr) {
  ClassifierSystemConfig cs;
  cs.m = 2'000.0;
  cs.h = 0.4;
  cs.p = 0.5;
  cs.ota.feature_subset = std::move(subset);
  static ClassifierSystem* leaked = nullptr;
  auto system = std::make_unique<ClassifierSystem>(trace, oracle, cs);
  const auto policy = make_policy(PolicyKind::lru, 30'000'000);
  Simulator sim{trace};
  const CacheStats stats = sim.run(*policy, *system);
  if (out != nullptr) {
    delete leaked;
    leaked = system.release();
    *out = leaked;
  }
  return stats;
}

TEST(FeatureSubset, SubsetModelTrainsAndFilters) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  ClassifierSystem* system = nullptr;
  const CacheStats stats = run_with_subset(
      trace, oracle,
      {FeatureExtractor::kRecency, FeatureExtractor::kAvgOwnerViews},
      &system);
  ASSERT_NE(system, nullptr);
  EXPECT_TRUE(system->has_model());
  EXPECT_GT(stats.rejected, stats.requests / 20);
  // Per-day accuracy still beats chance with just two features.
  for (const auto& day : system->daily_metrics()) {
    if (day.day == 0) continue;
    EXPECT_GT(day.raw.accuracy(), 0.55) << "day " << day.day;
  }
}

TEST(FeatureSubset, EmptySubsetEqualsAllFeatures) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  const CacheStats all = run_with_subset(trace, oracle, {});
  // Identity check: explicit full subset behaves exactly like empty.
  std::vector<std::size_t> full(FeatureExtractor::kFeatureCount);
  std::iota(full.begin(), full.end(), 0);
  const CacheStats explicit_full = run_with_subset(trace, oracle, full);
  EXPECT_EQ(all.hits, explicit_full.hits);
  EXPECT_EQ(all.insertions, explicit_full.insertions);
  EXPECT_EQ(all.rejected, explicit_full.rejected);
}

TEST(FeatureSubset, WeakSubsetFiltersLess) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  const CacheStats strong = run_with_subset(
      trace, oracle,
      {FeatureExtractor::kRecency, FeatureExtractor::kAvgOwnerViews});
  const CacheStats weak = run_with_subset(
      trace, oracle,
      {FeatureExtractor::kTerminal, FeatureExtractor::kAccessHour});
  // The weak slice must not out-hit the strong one.
  EXPECT_LE(weak.file_hit_rate(), strong.file_hit_rate() + 0.01);
}

}  // namespace
}  // namespace otac
