// The lock registry (src/core/lock_names.h) is cross-checked against the
// tree by tools/otac_analyze; these tests pin the C++-side contract the
// analyzer's parser assumes: names/ranks/(unit,identifier) keys unique,
// ranks ordered outermost-first within each unit's documented nesting,
// and is_known_lock usable in constant expressions.
#include "core/lock_names.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

namespace otac::lock {
namespace {

TEST(LockNames, NamesAreUniqueAndDotted) {
  std::set<std::string_view> names;
  for (const LockInfo& info : kKnownLocks) {
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate lock name: " << info.name;
    EXPECT_NE(info.name.find('.'), std::string_view::npos)
        << "lock names are dotted like metric names: " << info.name;
  }
}

TEST(LockNames, RanksAreUnique) {
  std::set<int> ranks;
  for (const LockInfo& info : kKnownLocks) {
    EXPECT_TRUE(ranks.insert(info.rank).second)
        << "duplicate lock rank: " << info.rank << " (" << info.name << ")";
  }
}

TEST(LockNames, UnitIdentifierKeysAreUnique) {
  std::set<std::pair<std::string, std::string>> keys;
  for (const LockInfo& info : kKnownLocks) {
    EXPECT_TRUE(keys
                    .insert({std::string(info.unit),
                             std::string(info.identifier)})
                    .second)
        << "duplicate (unit, identifier): " << info.unit << ", "
        << info.identifier;
  }
}

TEST(LockNames, UnitsAreTranslationUnitStems) {
  for (const LockInfo& info : kKnownLocks) {
    EXPECT_EQ(info.unit.substr(0, 4), "src/")
        << "unit must be a src/-relative TU stem: " << info.unit;
    EXPECT_EQ(info.unit.find(".h"), std::string_view::npos)
        << "unit is a stem, not a file: " << info.unit;
  }
}

TEST(LockNames, IsKnownLockIsConstexpr) {
  static_assert(is_known_lock("net.daemon.dispatch"));
  static_assert(is_known_lock("core.trainer_watchdog.coordination"));
  static_assert(!is_known_lock("net.daemon.nonexistent"));
  EXPECT_TRUE(is_known_lock("util.failpoint.registry"));
  EXPECT_FALSE(is_known_lock(""));
}

// The daemon's documented nesting is dispatch -> connections -> queue ->
// shutdown -> write; pin that the registry ranks encode exactly that
// order so the analyzer's ascending-rank rule matches the comments.
TEST(LockNames, DaemonRanksFollowDocumentedNesting) {
  auto rank_of = [](std::string_view name) {
    for (const LockInfo& info : kKnownLocks) {
      if (info.name == name) return info.rank;
    }
    ADD_FAILURE() << "missing lock: " << name;
    return -1;
  };
  EXPECT_LT(rank_of("net.daemon.dispatch"), rank_of("net.daemon.connections"));
  EXPECT_LT(rank_of("net.daemon.connections"),
            rank_of("net.daemon.inbound_queue"));
  EXPECT_LT(rank_of("net.daemon.inbound_queue"),
            rank_of("net.daemon.shutdown"));
  EXPECT_LT(rank_of("net.daemon.shutdown"),
            rank_of("net.daemon.connection_write"));
}

}  // namespace
}  // namespace otac::lock
