// Equivalence pins for the sharded serving layer (core/sharded_cache.h):
//
//  - shards=1 must be *bit-identical* to IntelligentCache::run — same
//    stats (including the eviction-sequence fingerprint), same criteria,
//    same daily confusion matrices, same training count, same degradation
//    counters — for every admission mode and for both retrain schedules.
//    RunResult's defaulted operator== makes that a one-line assertion with
//    no tolerance to hide behind.
//  - shards=N original-mode aggregates must equal the sum of N completely
//    independent single-shard simulations over the partitioned sub-traces,
//    which proves the shards really share nothing on the request path.
#include "core/sharded_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "cachesim/admission.h"
#include "cachesim/simulator.h"
#include "trace/trace_generator.h"
#include "util/failpoint.h"
#include "util/sim_time.h"

namespace otac {
namespace {

class ShardedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 500;
    config.num_photos = 12'000;
    trace_ = new Trace{TraceGenerator{config}.generate()};
    system_ = new IntelligentCache{*trace_};
    capacity_ =
        static_cast<std::uint64_t>(system_->total_object_bytes() * 0.015);
  }
  static void TearDownTestSuite() {
    delete system_;
    delete trace_;
    system_ = nullptr;
    trace_ = nullptr;
  }

  static RunConfig config_for(PolicyKind kind, AdmissionMode mode,
                              std::size_t shards) {
    RunConfig config;
    config.policy = kind;
    config.capacity_bytes = capacity_;
    config.mode = mode;
    config.shards = shards;
    return config;
  }

  static Trace* trace_;
  static IntelligentCache* system_;
  static std::uint64_t capacity_;
};

Trace* ShardedFixture::trace_ = nullptr;
IntelligentCache* ShardedFixture::system_ = nullptr;
std::uint64_t ShardedFixture::capacity_ = 0;

TEST(ShardOfPhoto, IsDeterministicInRangeAndRoughlyBalanced) {
  constexpr std::size_t kShards = 8;
  std::vector<std::size_t> counts(kShards, 0);
  for (PhotoId photo = 0; photo < 80'000; ++photo) {
    const std::size_t s = shard_of_photo(photo, kShards);
    ASSERT_LT(s, kShards);
    ASSERT_EQ(s, shard_of_photo(photo, kShards));  // pure function
    ++counts[s];
  }
  // Sequential ids must spread: each shard within ±20% of the mean.
  for (const std::size_t count : counts) {
    EXPECT_GT(count, 8'000u);
    EXPECT_LT(count, 12'000u);
  }
}

TEST(RetrainTriggers, MatchDailyAndIntervalSchedules) {
  // Hand-built trace: requests at 04:00 and 06:00 of days 0, 1, 2.
  Trace trace;
  trace.catalog.add_photo(PhotoMeta{});
  for (std::int64_t day = 0; day < 3; ++day) {
    for (const std::int64_t hour : {4, 6}) {
      Request request;
      request.time = SimTime{day * kSecondsPerDay + hour * kSecondsPerHour};
      request.photo = 0;
      trace.requests.push_back(request);
    }
  }

  OtaConfig daily;  // retrain_hour = 5, interval = 0
  // Day 0 06:00 fires (day 0 > "never"), then each later 06:00.
  EXPECT_EQ(retrain_trigger_indices(trace, daily),
            (std::vector<std::uint64_t>{1, 3, 5}));

  OtaConfig interval;
  interval.retrain_interval_hours = 24.0;
  // First request always fires (trainer cold start), then every >= 24h.
  EXPECT_EQ(retrain_trigger_indices(trace, interval),
            (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST_F(ShardedFixture, RejectsDegenerateConfigs) {
  const ShardedCache sharded{*system_};
  RunConfig config = config_for(PolicyKind::lru, AdmissionMode::original, 0);
  EXPECT_THROW((void)sharded.run(config), std::invalid_argument);
  config.shards = 1;
  config.capacity_bytes = 0;
  EXPECT_THROW((void)sharded.run(config), std::invalid_argument);
  // So many shards that each gets zero bytes.
  config.capacity_bytes = 16;
  config.shards = 32;
  EXPECT_THROW((void)sharded.run(config), std::invalid_argument);
}

TEST_F(ShardedFixture, SingleShardBitIdenticalAcrossModes) {
  const ShardedCache sharded{*system_};
  for (const AdmissionMode mode :
       {AdmissionMode::original, AdmissionMode::bypass, AdmissionMode::ideal,
        AdmissionMode::proposal}) {
    const RunConfig config = config_for(PolicyKind::lru, mode, 1);
    const RunResult reference = system_->run(config);
    const RunResult mine = sharded.run(config);
    EXPECT_TRUE(mine == reference)
        << "mode=" << admission_mode_name(mode)
        << " hits " << mine.stats.hits << " vs " << reference.stats.hits
        << ", insertions " << mine.stats.insertions << " vs "
        << reference.stats.insertions << ", eviction_hash "
        << mine.stats.eviction_hash << " vs " << reference.stats.eviction_hash
        << ", trainings " << mine.trainings << " vs " << reference.trainings;
    if (mode == AdmissionMode::proposal) {
      // The interesting machinery actually engaged.
      EXPECT_GT(mine.trainings, 0);
      EXPECT_FALSE(mine.daily.empty());
      EXPECT_GT(mine.stats.evictions, 0u);
    }
  }
}

TEST_F(ShardedFixture, SingleShardBitIdenticalForLirsProposal) {
  // LIRS exercises the criteria rescaling path (M shrinks by the LIR share).
  const ShardedCache sharded{*system_};
  const RunConfig config =
      config_for(PolicyKind::lirs, AdmissionMode::proposal, 1);
  EXPECT_TRUE(sharded.run(config) == system_->run(config));
}

TEST_F(ShardedFixture, SingleShardBitIdenticalForIntervalRetrain) {
  const ShardedCache sharded{*system_};
  RunConfig config = config_for(PolicyKind::lru, AdmissionMode::proposal, 1);
  config.ota.retrain_interval_hours = 6.0;
  const RunResult reference = system_->run(config);
  const RunResult mine = sharded.run(config);
  EXPECT_TRUE(mine == reference);
  EXPECT_GT(mine.trainings, 0);
}

TEST_F(ShardedFixture, ShardedOriginalEqualsSumOfIndependentShardRuns) {
  constexpr std::size_t kShards = 3;
  const ShardedCache sharded{*system_};
  const RunResult merged =
      sharded.run(config_for(PolicyKind::lru, AdmissionMode::original,
                             kShards));

  // N fully independent simulations over the partitioned sub-traces, each
  // with its slice of the capacity — no shared anything.
  CacheStats sum;
  bool first = true;
  for (std::size_t s = 0; s < kShards; ++s) {
    Trace sub;
    sub.catalog = trace_->catalog;
    for (const Request& request : trace_->requests) {
      if (shard_of_photo(request.photo, kShards) == s) {
        sub.requests.push_back(request);
      }
    }
    const auto policy = make_policy(PolicyKind::lru, capacity_ / kShards);
    AlwaysAdmit admission;
    const CacheStats stats = Simulator{sub}.run(*policy, admission);
    if (first) {
      sum = stats;
      first = false;
    } else {
      sum.merge(stats);
    }
  }
  EXPECT_TRUE(merged.stats == sum)
      << "hits " << merged.stats.hits << " vs " << sum.hits
      << ", evictions " << merged.stats.evictions << " vs " << sum.evictions;
  // Sanity: the partition actually split the load.
  EXPECT_EQ(merged.stats.requests, trace_->requests.size());
}

TEST_F(ShardedFixture, ShardedProposalAggregatesStayCoherent) {
  const ShardedCache sharded{*system_};
  const RunResult merged =
      sharded.run(config_for(PolicyKind::lru, AdmissionMode::proposal, 4));
  EXPECT_EQ(merged.stats.requests, trace_->requests.size());
  EXPECT_EQ(merged.stats.hits + merged.stats.insertions +
                merged.stats.rejected,
            merged.stats.requests);
  EXPECT_GT(merged.trainings, 0);
  EXPECT_FALSE(merged.daily.empty());
  // Criteria are global — identical to the unsharded computation.
  const RunResult reference =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::proposal, 1));
  EXPECT_TRUE(merged.criteria == reference.criteria);
  EXPECT_EQ(merged.cost_v, reference.cost_v);
}

TEST(DegradationCountersMerge, SumsEveryField) {
  // Distinct values per field so a merge that drops or cross-wires any
  // single counter is caught; total() must cover the same set.
  DegradationCounters a;
  a.retrain_failures = 1;
  a.rejected_models = 2;
  a.nonfinite_feature_requests = 3;
  a.predict_failures = 5;
  a.retrain_retries = 7;
  a.retrain_timeouts = 11;
  a.degraded_admits = 13;
  a.shed_requests = 17;
  a.overload_transitions = 19;
  a.ssd_write_retries = 23;
  a.ssd_write_drops = 29;
  DegradationCounters b;
  b.retrain_failures = 100;
  b.rejected_models = 200;
  b.nonfinite_feature_requests = 300;
  b.predict_failures = 500;
  b.retrain_retries = 700;
  b.retrain_timeouts = 1'100;
  b.degraded_admits = 1'300;
  b.shed_requests = 1'700;
  b.overload_transitions = 1'900;
  b.ssd_write_retries = 2'300;
  b.ssd_write_drops = 2'900;

  DegradationCounters merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.retrain_failures, 101u);
  EXPECT_EQ(merged.rejected_models, 202u);
  EXPECT_EQ(merged.nonfinite_feature_requests, 303u);
  EXPECT_EQ(merged.predict_failures, 505u);
  EXPECT_EQ(merged.retrain_retries, 707u);
  EXPECT_EQ(merged.retrain_timeouts, 1'111u);
  EXPECT_EQ(merged.degraded_admits, 1'313u);
  EXPECT_EQ(merged.shed_requests, 1'717u);
  EXPECT_EQ(merged.overload_transitions, 1'919u);
  EXPECT_EQ(merged.ssd_write_retries, 2'323u);
  EXPECT_EQ(merged.ssd_write_drops, 2'929u);
  EXPECT_EQ(merged.total(), a.total() + b.total());
}

#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED

TEST_F(ShardedFixture, DegradationSumEquivalentAcrossShardCountsUnderFaults) {
  // Retrain failures are injected at alternating barriers. The retrain
  // schedule is a global property of the trace, so the merged degradation
  // counters — trainer-side failures plus the per-shard serving counters
  // folded by DegradationCounters::merge — must be bit-identical between
  // shards=1 and shards=4.
  const ShardedCache sharded{*system_};
  const RunConfig config1 =
      config_for(PolicyKind::lru, AdmissionMode::proposal, 1);

  fail::Registry::instance().enable_every_nth("trainer.train.fail", 2);
  const RunResult one = sharded.run(config1);
  // Re-arm to reset the evaluation counter for the second run.
  fail::Registry::instance().enable_every_nth("trainer.train.fail", 2);
  const RunResult four =
      sharded.run(config_for(PolicyKind::lru, AdmissionMode::proposal, 4));
  fail::Registry::instance().disable_all();

  const std::size_t triggers =
      retrain_trigger_indices(*trace_, config1.ota).size();
  ASSERT_GE(triggers, 2u);
  EXPECT_EQ(one.degradation.retrain_failures, triggers / 2);
  EXPECT_GT(one.degradation.total(), 0u);
  EXPECT_TRUE(four.degradation == one.degradation)
      << "retrain_failures " << four.degradation.retrain_failures << " vs "
      << one.degradation.retrain_failures << ", total "
      << four.degradation.total() << " vs " << one.degradation.total();
  // The surviving barriers still published models on both runs.
  EXPECT_EQ(four.trainings, one.trainings);
  EXPECT_GT(one.trainings, 0);
}

#endif  // OTAC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace otac
