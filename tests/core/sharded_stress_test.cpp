// Concurrency stress suite (ctest label: concurrency; run under TSan by
// scripts/check_concurrency.sh). The sharded layer's safety claim is narrow
// and checkable: worker threads share exactly one mutable object — the
// model slot (core/model_slot.h) — plus the mutex-protected failpoint
// registry. These
// tests hammer the three cross-thread interactions the design allows:
//   1. admission on every shard while the model is concurrently swapped,
//   2. checkpoint save/load cycles (with fault injection) while serving
//      threads keep admitting,
//   3. a full sharded replay with a failing trainer (failpoint throws cross
//      the retrain barrier on the coordinator, never a worker).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include "core/checkpoint.h"
#include "core/model_slot.h"
#include "core/serving_core.h"
#include "core/sharded_cache.h"
#include "util/sim_time.h"
#include "ml/compiled_tree.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "trace/next_access.h"
#include "trace/trace_generator.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace otac {
namespace {

class ShardedStressFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 300;
    config.num_photos = 8'000;
    trace_ = new Trace{TraceGenerator{config}.generate()};
    oracle_ = new NextAccessInfo{compute_next_access(*trace_)};
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete trace_;
    oracle_ = nullptr;
    trace_ = nullptr;
  }

  /// A servable 9-feature tree fit on a synthetic (deterministic) dataset;
  /// `flavor` perturbs the labels so successive swaps install trees that
  /// genuinely differ.
  static ml::DecisionTree make_tree(int flavor) {
    ml::Dataset data{FeatureExtractor::feature_names()};
    std::array<float, FeatureExtractor::kFeatureCount> row{};
    for (int i = 0; i < 400; ++i) {
      for (std::size_t f = 0; f < row.size(); ++f) {
        row[f] = static_cast<float>((i * 7 + static_cast<int>(f) * 13) % 97);
      }
      data.add_row(row, (i + flavor) % 3 == 0 ? 1 : 0);
    }
    ml::DecisionTreeConfig config;
    config.max_splits = 8;
    ml::DecisionTree tree{config};
    tree.fit(data);
    return tree;
  }

  static Trace* trace_;
  static NextAccessInfo* oracle_;
};

Trace* ShardedStressFixture::trace_ = nullptr;
NextAccessInfo* ShardedStressFixture::oracle_ = nullptr;

TEST_F(ShardedStressFixture, EightThreadsHammerAdmissionDuringModelSwaps) {
  constexpr std::size_t kWorkers = 8;
  constexpr std::uint64_t kOpsPerWorker = 150'000;  // 1.2M ops total

  ModelSlot model;
  const ml::CompiledTree tree_a = ml::CompiledTree::compile(make_tree(0));
  const ml::CompiledTree tree_b = ml::CompiledTree::compile(make_tree(1));

  std::atomic<bool> serving_done{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread swapper{[&] {
    ml::CompiledTree readback;
    while (!serving_done.load()) {
      model.store((swaps.load() % 2 == 0) ? tree_a : tree_b);
      swaps.fetch_add(1);
      // A periodic read from the swapper side too (checkpointing reads the
      // live model the same way). A decoded snapshot must always equal one
      // of the published trees — a torn read slipping through the seqlock
      // would trip this.
      ASSERT_TRUE(model.load(readback));
      ASSERT_TRUE(readback == tree_a || readback == tree_b);
    }
  }};

  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> admitted{0};
  ThreadPool pool{kWorkers};
  pool.parallel_for(kWorkers, [&](std::size_t shard) {
    // Per-shard private state, exactly like ShardedCache's ShardState.
    ServingConfig serving;
    ServingCore core{trace_->catalog, *oracle_, serving, 512};
    const std::uint64_t total = trace_->requests.size();
    std::uint64_t local_ops = 0;
    std::uint64_t local_admitted = 0;
    std::uint64_t pass = 0;
    ml::CompiledTree snapshot;  // reader-owned storage, reused across loads
    while (local_ops < kOpsPerWorker) {
      for (std::uint64_t i = shard; i < total && local_ops < kOpsPerWorker;
           i += kWorkers) {
        Request request = trace_->requests[i];
        // Keep the stream time-monotonic across replay passes.
        request.time.seconds +=
            static_cast<std::int64_t>(pass) * 10 * kSecondsPerDay;
        const PhotoMeta& photo = trace_->catalog.photo(request.photo);
        // One seqlock load per op — far hotter than production (one load
        // per shard per epoch) precisely to hammer load/store overlap.
        const ml::CompiledTree* tree =
            model.load(snapshot) ? &snapshot : nullptr;
        if (core.admit(tree, i, request, photo)) ++local_admitted;
        core.observe(request, photo);
        ++local_ops;
      }
      ++pass;
    }
    ops.fetch_add(local_ops);
    admitted.fetch_add(local_admitted);
    EXPECT_EQ(core.degradation.predict_failures, 0u);
    EXPECT_EQ(core.degradation.nonfinite_feature_requests, 0u);
  });
  serving_done.store(true);
  swapper.join();

  EXPECT_EQ(ops.load(), kWorkers * kOpsPerWorker);
  EXPECT_GT(swaps.load(), 0u);
  EXPECT_GT(admitted.load(), 0u);
}

#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED

TEST_F(ShardedStressFixture, CheckpointCyclesWithFailpointsDuringServing) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "otac_ckpt_stress").string();
  std::filesystem::remove_all(dir);
  CheckpointManager manager{dir};

  ClassifierSnapshot snapshot;
  snapshot.m = 1000.0;
  snapshot.h = 0.5;
  snapshot.p = 0.2;
  snapshot.model_blob = make_tree(0).serialize();

  std::atomic<bool> serving_done{false};
  std::atomic<std::uint64_t> saves_attempted{0};
  std::atomic<std::uint64_t> saves_failed{0};
  std::thread checkpointer{[&] {
    // Probabilistic fault injection on every crash surface inside
    // save()/load(); the registry is mutex-protected, so scripting it from
    // this thread while workers run is itself part of the TSan exercise.
    for (const std::string& name : CheckpointManager::failpoint_names()) {
      fail::Registry::instance().enable_probability(name, 0.3, 1234);
    }
    while (!serving_done.load()) {
      ++saves_attempted;
      try {
        manager.save(snapshot);
      } catch (const std::exception&) {
        ++saves_failed;  // torn/crashed write; generations stay recoverable
      }
      (void)manager.load();
    }
    fail::Registry::instance().disable_all();
  }};

  ThreadPool pool{4};
  pool.parallel_for(4, [&](std::size_t shard) {
    ServingConfig serving;
    ServingCore core{trace_->catalog, *oracle_, serving, 256};
    const std::uint64_t total = trace_->requests.size();
    for (std::uint64_t i = shard; i < total; i += 4) {
      const Request& request = trace_->requests[i];
      const PhotoMeta& photo = trace_->catalog.photo(request.photo);
      (void)core.admit(static_cast<const ml::CompiledTree*>(nullptr), i,
                       request, photo);
      core.observe(request, photo);
    }
  });
  serving_done.store(true);
  checkpointer.join();

  EXPECT_GT(saves_attempted.load(), 0u);
  // With failpoints off, the store must have survived the abuse.
  fail::Registry::instance().disable_all();
  manager.save(snapshot);
  const CheckpointLoad loaded = manager.load();
  EXPECT_NE(loaded.origin, CheckpointOrigin::none);
  EXPECT_DOUBLE_EQ(loaded.snapshot.m, snapshot.m);
  std::filesystem::remove_all(dir);
}

// Serving threads keep running while the checkpointer injects faults; the
// sharded replay below proves the retrain-barrier failure path is clean
// under TSan too. Both need compiled failpoint sites.
TEST_F(ShardedStressFixture, ShardedReplaySurvivesAlwaysFailingTrainer) {
  IntelligentCache system{*trace_};
  const ShardedCache sharded{system};
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.02);
  config.mode = AdmissionMode::proposal;
  config.shards = 8;
  config.threads = 8;

  fail::Registry::instance().enable("trainer.train.fail");
  RunResult result;
  ASSERT_NO_THROW(result = sharded.run(config));
  fail::Registry::instance().disable_all();

  // Every retrain barrier threw; serving degraded to admit-all and kept
  // going. The failure count must equal the precomputed trigger count.
  const std::size_t expected_triggers =
      retrain_trigger_indices(*trace_, config.ota).size();
  EXPECT_EQ(result.degradation.retrain_failures, expected_triggers);
  EXPECT_EQ(result.trainings, 0);
  EXPECT_EQ(result.stats.requests, trace_->requests.size());
}

#endif  // OTAC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace otac
