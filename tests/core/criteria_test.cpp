#include "core/ota_criteria.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace make_manual_trace(const std::vector<PhotoId>& sequence,
                        std::uint32_t size) {
  Trace trace;
  PhotoId max_id = 0;
  for (const PhotoId id : sequence) max_id = std::max(max_id, id);
  std::vector<PhotoMeta> photos(max_id + 1);
  for (auto& p : photos) p.size_bytes = size;
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Request r;
    r.time = SimTime{static_cast<std::int64_t>(i)};
    r.photo = sequence[i];
    trace.requests.push_back(r);
  }
  return trace;
}

TEST(Criteria, OneTimeFractionByThreshold) {
  // Distances: photo 0 -> 2, photo 1 -> 2, then terminal accesses.
  const Trace trace = make_manual_trace({0, 1, 0, 1}, 100);
  const NextAccessInfo oracle = compute_next_access(trace);
  EXPECT_DOUBLE_EQ(one_time_fraction(oracle, 4, 1.0), 1.0);   // all > 1
  EXPECT_DOUBLE_EQ(one_time_fraction(oracle, 4, 2.0), 0.5);   // dist 2 kept
  EXPECT_DOUBLE_EQ(one_time_fraction(oracle, 4, 100.0), 0.5); // terminals stay
  EXPECT_DOUBLE_EQ(one_time_fraction(oracle, 0, 1.0), 0.0);
}

TEST(Criteria, FormulaMatchesEquation) {
  const Trace trace = make_manual_trace({0, 1, 0, 1}, 100);
  const NextAccessInfo oracle = compute_next_access(trace);
  // One iteration from p=0: M0 = C/(S(1-h)); with C=1000, S=100, h=0.5:
  // M0 = 20 -> p(20) = 0.5 -> final M = 20/(1-0.5) = 40.
  const CriteriaResult r =
      compute_criteria(trace, oracle, 1000, 0.5, /*iterations=*/3);
  EXPECT_DOUBLE_EQ(r.mean_size, 100.0);
  EXPECT_DOUBLE_EQ(r.p, 0.5);
  EXPECT_DOUBLE_EQ(r.m, 40.0);
  EXPECT_DOUBLE_EQ(r.h, 0.5);
}

TEST(Criteria, MGrowsWithCapacity) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  const Trace trace = TraceGenerator{config}.generate();
  const NextAccessInfo oracle = compute_next_access(trace);
  const CriteriaResult small = compute_criteria(trace, oracle, 1'000'000, 0.3);
  const CriteriaResult large = compute_criteria(trace, oracle, 10'000'000, 0.3);
  EXPECT_GT(large.m, small.m);
  EXPECT_LE(large.p, small.p);  // bigger M -> fewer accesses are one-time
}

TEST(Criteria, FixpointConverges) {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  const Trace trace = TraceGenerator{config}.generate();
  const NextAccessInfo oracle = compute_next_access(trace);
  const CriteriaResult three = compute_criteria(trace, oracle, 5'000'000, 0.4, 3);
  const CriteriaResult eight = compute_criteria(trace, oracle, 5'000'000, 0.4, 8);
  EXPECT_NEAR(three.m, eight.m, 0.05 * eight.m);  // paper: 3 rounds suffice
}

TEST(Criteria, RejectsDegenerateInput) {
  const Trace trace = make_manual_trace({0}, 100);
  const NextAccessInfo oracle = compute_next_access(trace);
  EXPECT_THROW((void)compute_criteria(trace, oracle, 0, 0.5),
               std::invalid_argument);
  Trace empty;
  empty.catalog = PhotoCatalog{{}, {}};
  const NextAccessInfo none = compute_next_access(empty);
  EXPECT_THROW((void)compute_criteria(empty, none, 100, 0.5),
               std::invalid_argument);
}

TEST(Criteria, HitRateClamped) {
  const Trace trace = make_manual_trace({0, 1, 0, 1}, 100);
  const NextAccessInfo oracle = compute_next_access(trace);
  const CriteriaResult r = compute_criteria(trace, oracle, 1000, 5.0);
  EXPECT_LE(r.h, 0.999);
  EXPECT_GT(r.m, 0.0);
}

TEST(Criteria, LirsAdjustmentShrinksM) {
  EXPECT_DOUBLE_EQ(lirs_criteria(100.0, 0.9), 90.0);
  EXPECT_DOUBLE_EQ(lirs_criteria(40.0, 0.5), 20.0);
}

}  // namespace
}  // namespace otac
