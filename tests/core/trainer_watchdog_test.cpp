#include "core/trainer_watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "trace/trace_generator.h"
#include "util/failpoint.h"

namespace otac {
namespace {

/// Watchdog tests script trainer failpoints on the process-wide registry;
/// disarm on both sides so nothing leaks between tests.
class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Registry::instance().disable_all(); }
  void TearDown() override { fail::Registry::instance().disable_all(); }

  static bool failpoints_compiled() {
#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED
    return true;
#else
    return false;
#endif
  }
};

struct TrainerHarness {
  Trace trace;
  NextAccessInfo oracle;
  DailyTrainer trainer;

  TrainerHarness()
      : trace([] {
          WorkloadConfig config;
          config.num_owners = 200;
          config.num_photos = 2'000;
          return TraceGenerator{config}.generate();
        }()),
        oracle(compute_next_access(trace)),
        trainer(oracle, OtaConfig{}, /*m=*/2000.0, /*cost_v=*/2.0) {}

  /// Samples from the first half of the trace, enough to fit a tree.
  [[nodiscard]] std::vector<TrainingSample> real_samples() {
    std::vector<TrainingSample> samples;
    FeatureExtractor fx{trace.catalog};
    const std::uint64_t cutoff = trace.requests.size() / 2;
    for (std::uint64_t i = 0; i < cutoff; ++i) {
      const Request& request = trace.requests[i];
      const PhotoMeta& photo = trace.catalog.photo(request.photo);
      TrainingSample sample;
      fx.extract(request, photo, sample.features);
      sample.index = i;
      sample.time = request.time;
      samples.push_back(sample);
      fx.observe(request, photo);
    }
    return samples;
  }

  [[nodiscard]] std::uint64_t cutoff() const {
    return trace.requests.size() / 2;
  }
  [[nodiscard]] SimTime cutoff_time() const {
    return trace.requests[cutoff() - 1].time;
  }
};

TEST_F(WatchdogTest, InlineTrainsFromDrainedSamples) {
  TrainerHarness h;
  TrainerWatchdog watchdog{h.trainer, WatchdogConfig{}};
  EXPECT_FALSE(watchdog.threaded());
  const RetrainOutcome outcome =
      watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
  ASSERT_EQ(outcome.status, RetrainOutcome::Status::trained);
  EXPECT_TRUE(outcome.tree.has_value());
  EXPECT_EQ(outcome.retries, 0);
}

TEST_F(WatchdogTest, InlineSkipsOnTooFewSamples) {
  TrainerHarness h;
  TrainerWatchdog watchdog{h.trainer, WatchdogConfig{}};
  const RetrainOutcome outcome = watchdog.retrain({}, 10, SimTime{1000});
  EXPECT_EQ(outcome.status, RetrainOutcome::Status::skipped);
  EXPECT_FALSE(outcome.tree.has_value());
}

TEST_F(WatchdogTest, InlineZeroRetriesMatchesHistoricalTryCatch) {
  if (!failpoints_compiled()) GTEST_SKIP() << "OTAC_FAILPOINTS=OFF";
  TrainerHarness h;
  TrainerWatchdog watchdog{h.trainer, WatchdogConfig{}};  // max_retries = 0
  fail::Registry::instance().enable("trainer.train.fail");
  const RetrainOutcome outcome =
      watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
  EXPECT_EQ(outcome.status, RetrainOutcome::Status::failed);
  EXPECT_EQ(outcome.retries, 0);
  // Exactly one attempt reached the trainer.
  EXPECT_EQ(fail::Registry::instance().hits("trainer.train.fail"), 1u);
}

TEST_F(WatchdogTest, InlineRetryAbsorbsTransientFailure) {
  if (!failpoints_compiled()) GTEST_SKIP() << "OTAC_FAILPOINTS=OFF";
  TrainerHarness h;
  WatchdogConfig config;
  config.max_retries = 2;
  TrainerWatchdog watchdog{h.trainer, config};
  // Fires on the first evaluation only: the retry lands on a clean trainer
  // (the failpoint throws before any state mutation).
  fail::Registry::instance().enable_once("trainer.train.fail");
  const RetrainOutcome outcome =
      watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
  ASSERT_EQ(outcome.status, RetrainOutcome::Status::trained);
  EXPECT_EQ(outcome.retries, 1);
}

TEST_F(WatchdogTest, InlineTerminalFailureAfterBudget) {
  if (!failpoints_compiled()) GTEST_SKIP() << "OTAC_FAILPOINTS=OFF";
  TrainerHarness h;
  WatchdogConfig config;
  config.max_retries = 2;
  TrainerWatchdog watchdog{h.trainer, config};
  fail::Registry::instance().enable("trainer.train.fail");  // always
  const RetrainOutcome outcome =
      watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
  EXPECT_EQ(outcome.status, RetrainOutcome::Status::failed);
  EXPECT_EQ(outcome.retries, 2);
  EXPECT_EQ(fail::Registry::instance().hits("trainer.train.fail"), 3u);
}

TEST_F(WatchdogTest, ThreadedCompletesWithinTimeout) {
  TrainerHarness h;
  WatchdogConfig config;
  config.timeout_s = 30.0;  // generous: the train itself is fast
  TrainerWatchdog watchdog{h.trainer, config};
  EXPECT_TRUE(watchdog.threaded());
  const RetrainOutcome outcome =
      watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
  ASSERT_EQ(outcome.status, RetrainOutcome::Status::trained);
  EXPECT_TRUE(outcome.tree.has_value());
}

TEST_F(WatchdogTest, ThreadedHangTimesOutBuffersAndRecovers) {
  if (!failpoints_compiled()) GTEST_SKIP() << "OTAC_FAILPOINTS=OFF";
  TrainerHarness h;
  WatchdogConfig config;
  config.timeout_s = 0.02;  // 20 ms vs the 250 ms scripted hang
  TrainerWatchdog watchdog{h.trainer, config};
  fail::Registry::instance().enable_once("trainer.train.hang");

  std::vector<TrainingSample> samples = h.real_samples();
  const std::size_t half = samples.size() / 2;
  std::vector<TrainingSample> first(samples.begin(),
                                    samples.begin() + half);
  std::vector<TrainingSample> second(samples.begin() + half, samples.end());

  // Barrier 1: the hung train exceeds the timeout and is abandoned.
  const RetrainOutcome stalled =
      watchdog.retrain(std::move(first), h.cutoff(), h.cutoff_time());
  EXPECT_EQ(stalled.status, RetrainOutcome::Status::timed_out);
  EXPECT_FALSE(stalled.tree.has_value());

  // Barrier 2, immediately after: the worker is still sleeping — samples
  // are buffered, the barrier returns without blocking.
  const RetrainOutcome busy =
      watchdog.retrain(std::move(second), h.cutoff(), h.cutoff_time());
  EXPECT_EQ(busy.status, RetrainOutcome::Status::busy);
  EXPECT_GT(watchdog.buffered_samples(), 0u);

  // Let the hang drain; its (stale) result must have been discarded, and
  // the next barrier ingests the buffered samples and trains normally.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const RetrainOutcome recovered =
      watchdog.retrain({}, h.cutoff(), h.cutoff_time());
  ASSERT_EQ(recovered.status, RetrainOutcome::Status::trained);
  EXPECT_TRUE(recovered.tree.has_value());
  EXPECT_EQ(watchdog.buffered_samples(), 0u);
}

TEST_F(WatchdogTest, DestructorAbandonsHungJobWithoutDeadlock) {
  if (!failpoints_compiled()) GTEST_SKIP() << "OTAC_FAILPOINTS=OFF";
  TrainerHarness h;
  WatchdogConfig config;
  config.timeout_s = 0.01;
  fail::Registry::instance().enable_once("trainer.train.hang");
  {
    TrainerWatchdog watchdog{h.trainer, config};
    const RetrainOutcome outcome =
        watchdog.retrain(h.real_samples(), h.cutoff(), h.cutoff_time());
    EXPECT_EQ(outcome.status, RetrainOutcome::Status::timed_out);
    // Destructor joins the sleeping worker; must terminate promptly.
  }
  SUCCEED();
}

}  // namespace
}  // namespace otac
