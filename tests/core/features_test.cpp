#include "core/features.h"

#include <gtest/gtest.h>

namespace otac {
namespace {

PhotoCatalog tiny_catalog() {
  std::vector<OwnerMeta> owners(2);
  owners[0].active_friends = 10;
  owners[0].photo_count = 2;
  owners[1].active_friends = 99;
  owners[1].photo_count = 1;

  std::vector<PhotoMeta> photos(3);
  photos[0] = PhotoMeta{0, PhotoType{Resolution::l, PhotoFormat::jpg},
                        64 * 1024, SimTime{0}};
  photos[1] = PhotoMeta{0, PhotoType{Resolution::a, PhotoFormat::png},
                        4 * 1024, SimTime{600}};
  photos[2] = PhotoMeta{1, PhotoType{Resolution::m, PhotoFormat::jpg},
                        32 * 1024, SimTime{-kSecondsPerDay}};
  return PhotoCatalog{std::move(photos), std::move(owners)};
}

Request make_request(PhotoId photo, std::int64_t t,
                     TerminalType terminal = TerminalType::mobile) {
  Request r;
  r.photo = photo;
  r.time = SimTime{t};
  r.terminal = terminal;
  return r;
}

TEST(Features, NamesMatchCount) {
  EXPECT_EQ(FeatureExtractor::feature_names().size(),
            FeatureExtractor::kFeatureCount);
}

TEST(Features, StaticFeatures) {
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  const Request r = make_request(0, 2 * 3600 + 100);  // 02:00ish
  const auto row = fx.extract(r, catalog.photo(0));

  EXPECT_FLOAT_EQ(row[FeatureExtractor::kActiveFriends], 10.0F);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kPhotoType],
                  static_cast<float>(type_code(catalog.photo(0).type)));
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kPhotoSize], 64.0F);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kTerminal], 1.0F);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kAccessHour], 2.0F);
  // Age: 7300 s since upload -> 12 ten-minute buckets.
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kPhotoAge], 12.0F);
}

TEST(Features, RecencyFallsBackToUploadTime) {
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  const Request r = make_request(0, 1200);  // never accessed before
  const auto row = fx.extract(r, catalog.photo(0));
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kRecency], 2.0F);  // 1200s = 2 buckets

  fx.observe(r, catalog.photo(0));
  const Request r2 = make_request(0, 1200 + 3000);
  const auto row2 = fx.extract(r2, catalog.photo(0));
  EXPECT_FLOAT_EQ(row2[FeatureExtractor::kRecency], 5.0F);  // 3000s / 600
}

TEST(Features, AvgOwnerViewsGrowsWithObservations) {
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  const Request r0 = make_request(0, 10);
  EXPECT_FLOAT_EQ(fx.extract(r0, catalog.photo(0))[FeatureExtractor::kAvgOwnerViews],
                  0.0F);
  fx.observe(r0, catalog.photo(0));
  fx.observe(make_request(1, 20), catalog.photo(1));
  fx.observe(make_request(1, 30), catalog.photo(1));
  // Owner 0 has 3 views over 2 photos.
  const auto row = fx.extract(make_request(0, 40), catalog.photo(0));
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kAvgOwnerViews], 1.5F);
  // Owner 1 untouched.
  const auto row2 = fx.extract(make_request(2, 40), catalog.photo(2));
  EXPECT_FLOAT_EQ(row2[FeatureExtractor::kAvgOwnerViews], 0.0F);
}

TEST(Features, RecentRequestsSlidingWindow) {
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  for (int i = 0; i < 5; ++i) {
    fx.observe(make_request(0, 100 + i), catalog.photo(0));
  }
  EXPECT_EQ(fx.recent_request_count(), 5u);
  // 30 s later: all five still inside the 60 s window.
  fx.observe(make_request(0, 134), catalog.photo(0));
  EXPECT_EQ(fx.recent_request_count(), 6u);
  // 70 s after the first burst: burst has expired.
  fx.observe(make_request(0, 175), catalog.photo(0));
  EXPECT_EQ(fx.recent_request_count(), 2u);  // the 134s and 175s ones
  // A very long gap clears everything but the new request.
  fx.observe(make_request(0, 10'000), catalog.photo(0));
  EXPECT_EQ(fx.recent_request_count(), 1u);
}

TEST(Features, ExtractIsCausal) {
  // extract() must not be affected by the request itself.
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  const Request r = make_request(0, 500);
  const auto before = fx.extract(r, catalog.photo(0));
  const auto again = fx.extract(r, catalog.photo(0));
  for (std::size_t f = 0; f < FeatureExtractor::kFeatureCount; ++f) {
    EXPECT_FLOAT_EQ(before[f], again[f]);
  }
  EXPECT_FLOAT_EQ(before[FeatureExtractor::kRecentRequests], 0.0F);
}

TEST(Features, BacklogPhotoHasLargeAge) {
  const PhotoCatalog catalog = tiny_catalog();
  FeatureExtractor fx{catalog};
  const auto row = fx.extract(make_request(2, 0), catalog.photo(2));
  EXPECT_FLOAT_EQ(row[FeatureExtractor::kPhotoAge], 144.0F);  // 1 day
}

}  // namespace
}  // namespace otac
