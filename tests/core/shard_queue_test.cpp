#include "core/shard_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace otac {
namespace {

OverloadConfig tight_config() {
  OverloadConfig config;
  config.enabled = true;
  config.service_rate_per_s = 10.0;  // 10 work units per simulated second
  config.degraded_enter = 4.0;
  config.degraded_exit = 2.0;
  config.shed_enter = 8.0;
  config.shed_exit = 5.0;
  return config;
}

TEST(ShardQueue, StaysNormalWhenArrivalsMatchServiceRate) {
  ShardQueue queue{tight_config()};
  // One request every 0.1 s against a 10/s drain: depth never exceeds 1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.on_request(0.1 * i), OverloadState::normal);
  }
  EXPECT_EQ(queue.transitions(), 0u);
  EXPECT_EQ(queue.shed(), 0u);
}

TEST(ShardQueue, BurstWalksNormalDegradedShedding) {
  ShardQueue queue{tight_config()};
  // All arrivals at the same instant: no drain, depth climbs 1 per call.
  std::vector<OverloadState> states;
  for (int i = 0; i < 10; ++i) states.push_back(queue.on_request(1.0));
  // depth: 1,2,3 normal; 4..7 degraded; 8th crosses shed_enter.
  EXPECT_EQ(states[2], OverloadState::normal);
  EXPECT_EQ(states[3], OverloadState::degraded);
  EXPECT_EQ(states[6], OverloadState::degraded);
  EXPECT_EQ(states[7], OverloadState::shedding);
  EXPECT_EQ(states[9], OverloadState::shedding);
  // Shed requests never occupy the queue: depth froze at the last
  // accepted level (the crossing arrival itself was shed and backed out).
  EXPECT_DOUBLE_EQ(queue.depth(), 7.0);
  EXPECT_EQ(queue.shed(), 3u);
  EXPECT_EQ(queue.transitions(), 2u);  // normal->degraded->shedding
}

TEST(ShardQueue, HysteresisRecoversThroughDegradedToNormal) {
  ShardQueue queue{tight_config()};
  for (int i = 0; i < 8; ++i) (void)queue.on_request(1.0);
  ASSERT_EQ(queue.state(), OverloadState::shedding);  // depth 8

  // 0.25 s later 2.5 units drained: depth ~5.5 > shed_exit -> still shed.
  EXPECT_EQ(queue.on_request(1.25), OverloadState::shedding);
  // 0.2 s more drains to ~3.5 <= shed_exit: back to Degraded, and the
  // request is accepted (depth ~4.5).
  EXPECT_EQ(queue.on_request(1.45), OverloadState::degraded);
  // A long quiet interval drains everything: Normal again.
  EXPECT_EQ(queue.on_request(3.00), OverloadState::normal);
  EXPECT_DOUBLE_EQ(queue.depth(), 1.0);
  // normal->degraded->shedding->degraded->normal
  EXPECT_EQ(queue.transitions(), 4u);
}

TEST(ShardQueue, InjectedBurstCanCrossBothWatermarksAtOnce) {
  ShardQueue queue{tight_config()};
  EXPECT_EQ(queue.on_request(0.0), OverloadState::normal);
  queue.inject(20.0);  // flash crowd: 1 + 20 = 21 >> shed_enter
  EXPECT_EQ(queue.state(), OverloadState::shedding);
  EXPECT_EQ(queue.transitions(), 2u);  // stepped through Degraded
}

TEST(ShardQueue, DeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    ShardQueue queue{tight_config()};
    std::vector<OverloadState> states;
    for (int i = 0; i < 64; ++i) {
      if (i % 7 == 0) queue.inject(3.0);
      states.push_back(queue.on_request(0.05 * i));
    }
    return states;
  };
  EXPECT_EQ(run(), run());
}

TEST(ShardQueue, NonMonotoneTimeNeverGrowsTheQueue) {
  ShardQueue queue{tight_config()};
  (void)queue.on_request(5.0);
  // A time regression must not drain a negative interval (grow depth).
  (void)queue.on_request(1.0);
  EXPECT_DOUBLE_EQ(queue.depth(), 2.0);
}

TEST(ShardQueue, SanitizesInvertedWatermarks) {
  OverloadConfig config;
  config.enabled = true;
  config.service_rate_per_s = -5.0;
  config.degraded_enter = 4.0;
  config.degraded_exit = 9.0;  // above enter: would flap forever
  config.shed_enter = 2.0;     // below degraded_enter
  config.shed_exit = 50.0;
  ShardQueue queue{config};
  // The machine still converges: settle() terminates and states step
  // monotonically through the chain on a pure burst.
  for (int i = 0; i < 32; ++i) (void)queue.on_request(0.0);
  EXPECT_EQ(queue.state(), OverloadState::shedding);
}

TEST(ShardQueue, StateLabelsAreStable) {
  EXPECT_STREQ(to_string(OverloadState::normal), "normal");
  EXPECT_STREQ(to_string(OverloadState::degraded), "degraded");
  EXPECT_STREQ(to_string(OverloadState::shedding), "shedding");
}

}  // namespace
}  // namespace otac
