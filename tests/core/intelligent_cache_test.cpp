#include "core/intelligent_cache.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"
#include "trace/trace_stats.h"

namespace otac {
namespace {

class IntelligentCacheFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_owners = 1'000;
    config.num_photos = 30'000;
    trace_ = new Trace{TraceGenerator{config}.generate()};
    system_ = new IntelligentCache{*trace_};
    // ~1.5% of the dataset, comparable to the paper's small-cache regime.
    capacity_ = static_cast<std::uint64_t>(system_->total_object_bytes() *
                                           0.015);
  }
  static void TearDownTestSuite() {
    delete system_;
    delete trace_;
    system_ = nullptr;
    trace_ = nullptr;
  }

  static RunConfig config_for(PolicyKind kind, AdmissionMode mode) {
    RunConfig config;
    config.policy = kind;
    config.capacity_bytes = capacity_;
    config.mode = mode;
    return config;
  }

  static Trace* trace_;
  static IntelligentCache* system_;
  static std::uint64_t capacity_;
};

Trace* IntelligentCacheFixture::trace_ = nullptr;
IntelligentCache* IntelligentCacheFixture::system_ = nullptr;
std::uint64_t IntelligentCacheFixture::capacity_ = 0;

TEST_F(IntelligentCacheFixture, RejectsZeroCapacity) {
  RunConfig config = config_for(PolicyKind::lru, AdmissionMode::original);
  config.capacity_bytes = 0;
  EXPECT_THROW((void)system_->run(config), std::invalid_argument);
}

TEST_F(IntelligentCacheFixture, HitRateEstimateIsMemoizedAndSane) {
  const double h1 = system_->estimate_hit_rate(capacity_);
  const double h2 = system_->estimate_hit_rate(capacity_);
  EXPECT_DOUBLE_EQ(h1, h2);
  EXPECT_GT(h1, 0.0);
  EXPECT_LT(h1, 1.0);
}

TEST_F(IntelligentCacheFixture, ProposalBeatsOriginalForLru) {
  const RunResult original =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::original));
  const RunResult proposal =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::proposal));

  // The headline claims: hit rate up, SSD writes sharply down.
  EXPECT_GT(proposal.stats.file_hit_rate(), original.stats.file_hit_rate());
  EXPECT_LT(proposal.stats.insertions, original.stats.insertions / 2);
  EXPECT_LT(proposal.mean_latency_us, original.mean_latency_us);
  EXPECT_GE(proposal.trainings, 8);
}

TEST_F(IntelligentCacheFixture, IdealBeatsProposal) {
  const RunResult proposal =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::proposal));
  const RunResult ideal =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::ideal));
  EXPECT_GE(ideal.stats.file_hit_rate(),
            proposal.stats.file_hit_rate() - 0.01);
  EXPECT_LT(ideal.stats.insertions, proposal.stats.insertions);
}

TEST_F(IntelligentCacheFixture, BeladyIsUpperBound) {
  const RunResult belady =
      system_->run(config_for(PolicyKind::belady, AdmissionMode::original));
  for (const PolicyKind kind : {PolicyKind::lru, PolicyKind::fifo,
                                PolicyKind::arc, PolicyKind::lirs}) {
    const RunResult run =
        system_->run(config_for(kind, AdmissionMode::original));
    EXPECT_GE(belady.stats.file_hit_rate() + 1e-9,
              run.stats.file_hit_rate())
        << policy_name(kind);
  }
}

TEST_F(IntelligentCacheFixture, BypassHasNoHits) {
  const RunResult bypass =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::bypass));
  EXPECT_EQ(bypass.stats.hits, 0u);
  EXPECT_EQ(bypass.stats.insertions, 0u);
}

TEST_F(IntelligentCacheFixture, LirsCriteriaIsScaled) {
  RunConfig lru_config = config_for(PolicyKind::lru, AdmissionMode::ideal);
  RunConfig lirs_config = config_for(PolicyKind::lirs, AdmissionMode::ideal);
  const RunResult lru = system_->run(lru_config);
  const RunResult lirs = system_->run(lirs_config);
  EXPECT_NEAR(lirs.criteria.m, lru.criteria.m * lirs_config.lirs_lir_fraction,
              1e-6 * lru.criteria.m);
}

TEST_F(IntelligentCacheFixture, CostScheduleSwitchesWithCapacity) {
  OtaConfig ota;
  const double total = system_->total_object_bytes();
  const auto small = static_cast<std::uint64_t>(
      total * ota.cost_switch_capacity_fraction * 0.5);
  const auto large = static_cast<std::uint64_t>(
      total * ota.cost_switch_capacity_fraction * 2.0);
  EXPECT_DOUBLE_EQ(system_->cost_v_for(small, ota), ota.cost_v_small);
  EXPECT_DOUBLE_EQ(system_->cost_v_for(large, ota), ota.cost_v_large);
}

TEST_F(IntelligentCacheFixture, LatencyFollowsEquationThree) {
  const RunResult original =
      system_->run(config_for(PolicyKind::lru, AdmissionMode::original));
  const LatencyModel model{LatencyConfig{}};
  EXPECT_NEAR(original.mean_latency_us,
              model.mean_access_time_original_us(
                  original.stats.file_hit_rate()),
              1e-9);
}

TEST_F(IntelligentCacheFixture, ProposalWorksForEveryPolicy) {
  for (const PolicyKind kind : {PolicyKind::lru, PolicyKind::fifo,
                                PolicyKind::s3lru, PolicyKind::arc,
                                PolicyKind::lirs}) {
    const RunResult original =
        system_->run(config_for(kind, AdmissionMode::original));
    const RunResult proposal =
        system_->run(config_for(kind, AdmissionMode::proposal));
    // Write reduction is the universal claim (Figs. 8-9).
    EXPECT_LT(proposal.stats.insertions, original.stats.insertions)
        << policy_name(kind);
    // Hit rate must not collapse.
    EXPECT_GT(proposal.stats.file_hit_rate(),
              original.stats.file_hit_rate() - 0.02)
        << policy_name(kind);
  }
}

TEST(AdmissionModeName, AllNamed) {
  EXPECT_EQ(admission_mode_name(AdmissionMode::original), "Original");
  EXPECT_EQ(admission_mode_name(AdmissionMode::proposal), "Proposal");
  EXPECT_EQ(admission_mode_name(AdmissionMode::ideal), "Ideal");
  EXPECT_EQ(admission_mode_name(AdmissionMode::bypass), "Bypass");
}

}  // namespace
}  // namespace otac
