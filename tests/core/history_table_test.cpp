#include "core/history_table.h"

#include <gtest/gtest.h>

#include <limits>

namespace otac {
namespace {

TEST(HistoryTable, RectifiesWithinM) {
  HistoryTable table{10};
  table.record(1, 100);
  EXPECT_TRUE(table.contains(1));
  EXPECT_TRUE(table.rectify(1, 150, /*m=*/100));  // distance 50 < 100
  EXPECT_FALSE(table.contains(1));                // consumed
  EXPECT_EQ(table.rectified_count(), 1u);
}

TEST(HistoryTable, BeyondMIsNotRectified) {
  HistoryTable table{10};
  table.record(1, 100);
  EXPECT_FALSE(table.rectify(1, 300, /*m=*/100));  // distance 200 >= 100
  EXPECT_FALSE(table.contains(1));  // entry still removed (stale verdict)
  EXPECT_EQ(table.rectified_count(), 0u);
}

TEST(HistoryTable, UnknownPhotoMisses) {
  HistoryTable table{10};
  EXPECT_FALSE(table.rectify(42, 10, 100));
}

TEST(HistoryTable, FifoEviction) {
  HistoryTable table{3};
  table.record(1, 10);
  table.record(2, 11);
  table.record(3, 12);
  table.record(4, 13);  // evicts 1 (oldest)
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(2));
  EXPECT_TRUE(table.contains(4));
  EXPECT_EQ(table.size(), 3u);
}

TEST(HistoryTable, RerecordRefreshesPosition) {
  HistoryTable table{2};
  table.record(1, 10);
  table.record(2, 11);
  table.record(1, 12);  // refresh: 1 becomes newest
  table.record(3, 13);  // evicts 2, not 1
  EXPECT_TRUE(table.contains(1));
  EXPECT_FALSE(table.contains(2));
  // The refreshed position is used for the distance check.
  EXPECT_TRUE(table.rectify(1, 13, /*m=*/5));  // 13-12=1 < 5
}

TEST(HistoryTable, ZeroCapacityDisables) {
  HistoryTable table{0};
  table.record(1, 10);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.rectify(1, 11, 100));
}

TEST(HistoryTable, ZeroCapacityRestoreIsInert) {
  HistoryTable table{0};
  table.restore({{1, 10}, {2, 11}}, /*rectified_count=*/4);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.rectified_count(), 4u);  // counter survives, entries don't
  EXPECT_FALSE(table.rectify(1, 12, 100));
}

TEST(HistoryTable, CapacityOneHoldsExactlyNewestEntry) {
  HistoryTable table{1};
  table.record(1, 10);
  table.record(2, 11);  // evicts 1
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(2));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.rectify(2, 12, /*m=*/5));
  EXPECT_EQ(table.size(), 0u);
  // Re-record after consume keeps working at capacity one.
  table.record(3, 13);
  EXPECT_TRUE(table.contains(3));
}

TEST(HistoryTable, EntriesRoundTripThroughRestore) {
  HistoryTable source{3};
  source.record(1, 10);
  source.record(2, 11);
  source.record(3, 12);
  (void)source.rectify(2, 13, /*m=*/100);
  const auto entries = source.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.front().photo, 1u);  // oldest first
  EXPECT_EQ(entries.back().photo, 3u);

  HistoryTable copy{3};
  copy.restore(entries, source.rectified_count());
  EXPECT_EQ(copy.size(), source.size());
  EXPECT_EQ(copy.rectified_count(), 1u);
  EXPECT_TRUE(copy.contains(1));
  EXPECT_TRUE(copy.contains(3));
  // FIFO order preserved: a new record evicts the oldest restored entry.
  copy.record(4, 14);
  copy.record(5, 15);
  EXPECT_FALSE(copy.contains(1));
  EXPECT_TRUE(copy.contains(3));
}

TEST(HistoryTable, RestoreIntoSmallerCapacityKeepsNewest) {
  HistoryTable table{2};
  table.restore({{1, 10}, {2, 11}, {3, 12}}, 0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.contains(1));  // oldest dropped, newest kept
  EXPECT_TRUE(table.contains(2));
  EXPECT_TRUE(table.contains(3));
}

TEST(HistoryTable, CapacityRuleRejectsHostileInputs) {
  // NaN and negative products must size the table to zero (disabled), and
  // absurd magnitudes must clamp instead of overflowing the cast.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(history_table_capacity(nan, 0.5, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10'000, nan, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(-5'000, 0.5, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10'000, 1.5, 0.4, 0.05), 0u);
  const double huge = std::numeric_limits<double>::infinity();
  EXPECT_LE(history_table_capacity(huge, 0.0, 1.0, 1.0),
            static_cast<std::uint64_t>(1e12) + 1);
}

TEST(HistoryTable, CapacityRule) {
  // M(1-h)p * factor (§4.4.2).
  EXPECT_EQ(history_table_capacity(10'000, 0.5, 0.4, 0.05), 100u);
  EXPECT_EQ(history_table_capacity(0.0, 0.5, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10'000, 1.0, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10, 0.5, 0.1, 0.05), 1u);  // floor at 1
}

}  // namespace
}  // namespace otac
