#include "core/history_table.h"

#include <gtest/gtest.h>

namespace otac {
namespace {

TEST(HistoryTable, RectifiesWithinM) {
  HistoryTable table{10};
  table.record(1, 100);
  EXPECT_TRUE(table.contains(1));
  EXPECT_TRUE(table.rectify(1, 150, /*m=*/100));  // distance 50 < 100
  EXPECT_FALSE(table.contains(1));                // consumed
  EXPECT_EQ(table.rectified_count(), 1u);
}

TEST(HistoryTable, BeyondMIsNotRectified) {
  HistoryTable table{10};
  table.record(1, 100);
  EXPECT_FALSE(table.rectify(1, 300, /*m=*/100));  // distance 200 >= 100
  EXPECT_FALSE(table.contains(1));  // entry still removed (stale verdict)
  EXPECT_EQ(table.rectified_count(), 0u);
}

TEST(HistoryTable, UnknownPhotoMisses) {
  HistoryTable table{10};
  EXPECT_FALSE(table.rectify(42, 10, 100));
}

TEST(HistoryTable, FifoEviction) {
  HistoryTable table{3};
  table.record(1, 10);
  table.record(2, 11);
  table.record(3, 12);
  table.record(4, 13);  // evicts 1 (oldest)
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(2));
  EXPECT_TRUE(table.contains(4));
  EXPECT_EQ(table.size(), 3u);
}

TEST(HistoryTable, RerecordRefreshesPosition) {
  HistoryTable table{2};
  table.record(1, 10);
  table.record(2, 11);
  table.record(1, 12);  // refresh: 1 becomes newest
  table.record(3, 13);  // evicts 2, not 1
  EXPECT_TRUE(table.contains(1));
  EXPECT_FALSE(table.contains(2));
  // The refreshed position is used for the distance check.
  EXPECT_TRUE(table.rectify(1, 13, /*m=*/5));  // 13-12=1 < 5
}

TEST(HistoryTable, ZeroCapacityDisables) {
  HistoryTable table{0};
  table.record(1, 10);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.rectify(1, 11, 100));
}

TEST(HistoryTable, CapacityRule) {
  // M(1-h)p * factor (§4.4.2).
  EXPECT_EQ(history_table_capacity(10'000, 0.5, 0.4, 0.05), 100u);
  EXPECT_EQ(history_table_capacity(0.0, 0.5, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10'000, 1.0, 0.4, 0.05), 0u);
  EXPECT_EQ(history_table_capacity(10, 0.5, 0.1, 0.05), 1u);  // floor at 1
}

}  // namespace
}  // namespace otac
