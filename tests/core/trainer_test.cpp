#include "core/trainer.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace small_trace() {
  WorkloadConfig config;
  config.num_owners = 500;
  config.num_photos = 10'000;
  return TraceGenerator{config}.generate();
}

TEST(TrainerLabel, TruncatedLabels) {
  // Sequence 0 1 0: next[0] = 2.
  Trace trace;
  std::vector<PhotoMeta> photos(2);
  for (auto& p : photos) p.size_bytes = 10;
  trace.catalog = PhotoCatalog{std::move(photos), {OwnerMeta{}}};
  for (const PhotoId id : {0u, 1u, 0u}) {
    Request r;
    r.photo = id;
    trace.requests.push_back(r);
  }
  const NextAccessInfo oracle = compute_next_access(trace);
  // Known until 3 (everything): distance 2 <= m=5 -> non-one-time.
  EXPECT_EQ(DailyTrainer::label_of(oracle, 0, 5.0, 3), 0);
  // Known until 2: the reaccess at index 2 hasn't been seen yet.
  EXPECT_EQ(DailyTrainer::label_of(oracle, 0, 5.0, 2), 1);
  // m too small: one-time even with full knowledge.
  EXPECT_EQ(DailyTrainer::label_of(oracle, 0, 1.0, 3), 1);
  // Photo 1 never reaccessed.
  EXPECT_EQ(DailyTrainer::label_of(oracle, 1, 100.0, 3), 1);
}

TEST(Trainer, SamplingHonoursPerMinuteBudget) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  OtaConfig config;
  config.sample_records_per_minute = 2;
  DailyTrainer trainer{oracle, config, 100.0, 2.0};
  // 10 requests within one minute: only 2 kept.
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.time = SimTime{30 + i};
    trainer.offer(static_cast<std::uint64_t>(i), r, row);
  }
  EXPECT_EQ(trainer.sample_count(), 2u);
  // Next minute opens a fresh budget.
  Request r;
  r.time = SimTime{65};
  trainer.offer(10, r, row);
  EXPECT_EQ(trainer.sample_count(), 3u);
}

TEST(Trainer, TrainsUsableModelOnRealTrace) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  OtaConfig config;
  DailyTrainer trainer{oracle, config, /*m=*/2000.0, /*cost_v=*/2.0};

  FeatureExtractor fx{trace.catalog};
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  const std::uint64_t cutoff = trace.requests.size() / 2;
  for (std::uint64_t i = 0; i < cutoff; ++i) {
    const Request& r = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(r.photo);
    fx.extract(r, photo, row);
    trainer.offer(i, r, row);
    fx.observe(r, photo);
  }
  ASSERT_GT(trainer.sample_count(), 500u);
  const auto tree = trainer.train(cutoff, trace.requests[cutoff - 1].time);
  ASSERT_TRUE(tree.has_value());
  EXPECT_LE(tree->split_count(), config.tree_max_splits);
  EXPECT_GE(tree->split_count(), 1u);

  // The model must beat the trivial always-one-time baseline on
  // ground-truth labels of the second half.
  std::uint64_t correct = 0;
  std::uint64_t positive = 0;
  std::uint64_t total = 0;
  FeatureExtractor fx2{trace.catalog};
  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const Request& r = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(r.photo);
    if (i >= cutoff) {
      fx2.extract(r, photo, row);
      const int truth =
          DailyTrainer::label_of(oracle, i, 2000.0, trace.requests.size());
      const int predicted = tree->predict(row);
      correct += (predicted == truth);
      positive += (truth == 1);
      ++total;
    }
    fx2.observe(r, photo);
  }
  const double accuracy = static_cast<double>(correct) / total;
  const double base_rate =
      std::max(static_cast<double>(positive) / total,
               1.0 - static_cast<double>(positive) / total);
  EXPECT_GT(accuracy, base_rate + 0.02);
}

TEST(Trainer, RefusesTinySampleSets) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  DailyTrainer trainer{oracle, OtaConfig{}, 100.0, 2.0};
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.time = SimTime{i * 61};  // one per minute
    trainer.offer(static_cast<std::uint64_t>(i), r, row);
  }
  EXPECT_FALSE(trainer.train(10, SimTime{700}).has_value());
}

TEST(Trainer, WindowDropsOldSamples) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);
  OtaConfig config;
  config.training_window_days = 1.0;
  DailyTrainer trainer{oracle, config, 100.0, 2.0};
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  // 100 samples two days ago, spread one per minute.
  for (int i = 0; i < 100; ++i) {
    Request r;
    r.time = SimTime{i * 61};
    trainer.offer(static_cast<std::uint64_t>(i), r, row);
  }
  EXPECT_EQ(trainer.sample_count(), 100u);
  // Training "now" = 3 days later: all samples fall outside the window.
  EXPECT_FALSE(trainer.train(200, SimTime{3 * kSecondsPerDay}).has_value());
  EXPECT_EQ(trainer.sample_count(), 0u);
}

}  // namespace
}  // namespace otac
