#include <gtest/gtest.h>

#include "cachesim/simulator.h"
#include "core/classifier_system.h"
#include "trace/trace_generator.h"

namespace otac {
namespace {

Trace small_trace() {
  WorkloadConfig config;
  config.num_owners = 800;
  config.num_photos = 20'000;
  return TraceGenerator{config}.generate();
}

TEST(RetrainInterval, IntervalModeTrainsMoreOften) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);

  const auto run_with = [&](double interval_hours) {
    ClassifierSystemConfig cs;
    cs.m = 2'000.0;
    cs.h = 0.4;
    cs.p = 0.5;
    cs.ota.retrain_interval_hours = interval_hours;
    ClassifierSystem system{trace, oracle, cs};
    const auto policy = make_policy(PolicyKind::lru, 30'000'000);
    Simulator sim{trace};
    (void)sim.run(*policy, system);
    return system.trainings();
  };

  const int daily = run_with(0.0);
  const int six_hourly = run_with(6.0);
  EXPECT_GE(daily, 8);              // 9-day trace
  EXPECT_GT(six_hourly, 2 * daily); // ~4x more frequent
}

TEST(RetrainInterval, FrequentRetrainingDoesNotHurtAccuracy) {
  const Trace trace = small_trace();
  const NextAccessInfo oracle = compute_next_access(trace);

  const auto mean_accuracy = [&](double interval_hours) {
    ClassifierSystemConfig cs;
    cs.m = 2'000.0;
    cs.h = 0.4;
    cs.p = 0.5;
    cs.ota.retrain_interval_hours = interval_hours;
    ClassifierSystem system{trace, oracle, cs};
    const auto policy = make_policy(PolicyKind::lru, 30'000'000);
    Simulator sim{trace};
    (void)sim.run(*policy, system);
    double total = 0.0;
    std::size_t days = 0;
    for (const auto& day : system.daily_metrics()) {
      if (day.day == 0) continue;
      total += day.raw.accuracy();
      ++days;
    }
    return days ? total / static_cast<double>(days) : 0.0;
  };

  const double daily = mean_accuracy(0.0);
  const double frequent = mean_accuracy(6.0);
  EXPECT_GT(frequent, daily - 0.05);
}

}  // namespace
}  // namespace otac
