#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace otac {
namespace {

ClassifierSnapshot sample_snapshot() {
  ClassifierSnapshot snap;
  snap.m = 12'345.0;
  snap.h = 0.42;
  snap.p = 0.61;
  snap.cost_v = 2.0;
  snap.model_blob = "otac-dtree 1 1 0 0 2\n-1 0 -1 -1 0.75 0\n0 0 \n";
  snap.history = {{7, 100}, {9, 140}, {2, 190}};
  snap.history_rectified = 5;
  for (int i = 0; i < 4; ++i) {
    TrainingSample sample;
    for (std::size_t f = 0; f < sample.features.size(); ++f) {
      sample.features[f] = static_cast<float>(i * 10 + f);
    }
    sample.index = static_cast<std::uint64_t>(1000 + i);
    sample.time = SimTime{3600 * (i + 1)};
    snap.samples.push_back(sample);
  }
  snap.trainer_minute = 240;
  snap.trainer_minute_count = 17;
  snap.last_trained_day = 3;
  snap.last_trained_time = 3 * 86400 + 5 * 3600;
  snap.trainings = 3;
  return snap;
}

void expect_equal(const ClassifierSnapshot& a, const ClassifierSnapshot& b) {
  EXPECT_DOUBLE_EQ(a.m, b.m);
  EXPECT_DOUBLE_EQ(a.h, b.h);
  EXPECT_DOUBLE_EQ(a.p, b.p);
  EXPECT_DOUBLE_EQ(a.cost_v, b.cost_v);
  EXPECT_EQ(a.model_blob, b.model_blob);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].photo, b.history[i].photo);
    EXPECT_EQ(a.history[i].index, b.history[i].index);
  }
  EXPECT_EQ(a.history_rectified, b.history_rectified);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].features, b.samples[i].features);
    EXPECT_EQ(a.samples[i].index, b.samples[i].index);
    EXPECT_EQ(a.samples[i].time.seconds, b.samples[i].time.seconds);
  }
  EXPECT_EQ(a.trainer_minute, b.trainer_minute);
  EXPECT_EQ(a.trainer_minute_count, b.trainer_minute_count);
  EXPECT_EQ(a.last_trained_day, b.last_trained_day);
  EXPECT_EQ(a.last_trained_time, b.last_trained_time);
  EXPECT_EQ(a.trainings, b.trainings);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/otac_checkpoint_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointTest, EncodeDecodeRoundTrip) {
  const ClassifierSnapshot original = sample_snapshot();
  const std::string bytes = CheckpointManager::encode(original);
  expect_equal(CheckpointManager::decode(bytes), original);
}

TEST_F(CheckpointTest, EmptySnapshotRoundTrips) {
  const ClassifierSnapshot empty;
  const std::string bytes = CheckpointManager::encode(empty);
  const ClassifierSnapshot decoded = CheckpointManager::decode(bytes);
  EXPECT_TRUE(decoded.model_blob.empty());
  EXPECT_TRUE(decoded.history.empty());
  EXPECT_TRUE(decoded.samples.empty());
}

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  CheckpointManager manager{dir_};
  const ClassifierSnapshot original = sample_snapshot();
  manager.save(original);
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::current);
  EXPECT_EQ(loaded.rejected_files, 0);
  expect_equal(loaded.snapshot, original);
}

TEST_F(CheckpointTest, MissingDirectoryColdStarts) {
  const CheckpointManager manager{dir_ + "/never_created"};
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::none);
  EXPECT_EQ(loaded.rejected_files, 0);
}

TEST_F(CheckpointTest, SecondSaveKeepsPreviousGeneration) {
  CheckpointManager manager{dir_};
  ClassifierSnapshot first = sample_snapshot();
  first.trainings = 1;
  manager.save(first);
  ClassifierSnapshot second = sample_snapshot();
  second.trainings = 2;
  manager.save(second);
  EXPECT_TRUE(std::filesystem::exists(manager.previous_path()));
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::current);
  EXPECT_EQ(loaded.snapshot.trainings, 2);
}

TEST_F(CheckpointTest, CorruptCurrentFallsBackToPrevious) {
  CheckpointManager manager{dir_};
  ClassifierSnapshot first = sample_snapshot();
  first.trainings = 1;
  manager.save(first);
  ClassifierSnapshot second = sample_snapshot();
  second.trainings = 2;
  manager.save(second);

  // Flip one payload byte of the current generation: CRC must catch it.
  std::string bytes;
  {
    std::ifstream in(manager.current_path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>{in}, {});
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(manager.current_path(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::previous);
  EXPECT_EQ(loaded.rejected_files, 1);
  EXPECT_EQ(loaded.snapshot.trainings, 1);
}

TEST_F(CheckpointTest, BothGenerationsCorruptColdStarts) {
  CheckpointManager manager{dir_};
  manager.save(sample_snapshot());
  manager.save(sample_snapshot());
  for (const std::string& path :
       {manager.current_path(), manager.previous_path()}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::none);
  EXPECT_EQ(loaded.rejected_files, 2);
}

TEST_F(CheckpointTest, TruncationAtEveryBoundaryRejectsCleanly) {
  const std::string bytes = CheckpointManager::encode(sample_snapshot());
  // Every proper prefix must throw — never crash, never half-load.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    EXPECT_THROW((void)CheckpointManager::decode(bytes.substr(0, cut)),
                 std::runtime_error)
        << "prefix length " << cut;
  }
}

TEST_F(CheckpointTest, EveryByteFlipIsRejected) {
  const std::string bytes = CheckpointManager::encode(sample_snapshot());
  // Headers, lengths, payloads, checksums: any single-bit flip must be
  // rejected (CRC or structural validation), except flips confined to
  // payload bytes whose CRC byte is *also* what we flipped — impossible
  // for single flips, so expect a throw everywhere.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 3) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x10;
    EXPECT_THROW((void)CheckpointManager::decode(corrupt), std::runtime_error)
        << "flipped byte " << pos;
  }
}

TEST_F(CheckpointTest, VersionMismatchRejected) {
  std::string bytes = CheckpointManager::encode(sample_snapshot());
  bytes[4] = 0x7F;  // version field follows the 4-byte magic
  EXPECT_THROW((void)CheckpointManager::decode(bytes), std::runtime_error);
}

TEST_F(CheckpointTest, HugeDeclaredCountsRejectedWithoutAllocation) {
  // A corrupt section length must fail the bounds check, not trigger a
  // multi-gigabyte resize. Build a file with a huge history count but a
  // tiny payload: decode must throw std::runtime_error.
  ClassifierSnapshot snap;
  std::string bytes = CheckpointManager::encode(snap);
  // Locate the history section (id 3) and corrupt its count field while
  // refreshing the CRC so only the bounds check can catch it.
  // Simpler: hand-build a payload with count = 2^60 and a valid CRC.
  std::string payload;
  const std::uint64_t rectified = 0;
  const std::uint64_t huge = 1ULL << 60;
  payload.append(reinterpret_cast<const char*>(&rectified), 8);
  payload.append(reinterpret_cast<const char*>(&huge), 8);
  const std::uint32_t magic = 0x4F54434B;
  const std::uint32_t version = 1;
  const std::uint32_t sections = 4;
  std::string file;
  file.append(reinterpret_cast<const char*>(&magic), 4);
  file.append(reinterpret_cast<const char*>(&version), 4);
  file.append(reinterpret_cast<const char*>(&sections), 4);
  const auto append_section = [&file](std::uint32_t id,
                                      const std::string& body) {
    const std::uint64_t size = body.size();
    const std::uint32_t checksum = crc32(body);
    file.append(reinterpret_cast<const char*>(&id), 4);
    file.append(reinterpret_cast<const char*>(&size), 8);
    file.append(body);
    file.append(reinterpret_cast<const char*>(&checksum), 4);
  };
  // Params section from a valid encode (reuse the real encoder's bytes by
  // decoding offsets is brittle; instead encode an empty snapshot and keep
  // its params/model/trainer sections, swapping in the evil history one).
  // Build params body directly:
  std::string params;
  const double zeros[4] = {0, 0, 0, 0};
  params.append(reinterpret_cast<const char*>(zeros), 32);
  const std::int64_t never = std::numeric_limits<std::int64_t>::min();
  params.append(reinterpret_cast<const char*>(&never), 8);
  params.append(reinterpret_cast<const char*>(&never), 8);
  const std::int32_t zero32 = 0;
  params.append(reinterpret_cast<const char*>(&zero32), 4);
  append_section(1, params);
  append_section(2, "");
  append_section(3, payload);  // huge count, tiny body
  std::string trainer;
  trainer.append(reinterpret_cast<const char*>(&never), 8);
  trainer.append(reinterpret_cast<const char*>(&zero32), 4);
  const std::uint32_t dim = 9;
  trainer.append(reinterpret_cast<const char*>(&dim), 4);
  const std::uint64_t zero64 = 0;
  trainer.append(reinterpret_cast<const char*>(&zero64), 8);
  append_section(4, trainer);
  EXPECT_THROW((void)CheckpointManager::decode(file), std::runtime_error);
  (void)bytes;
}

// --- storage-fault retry path ------------------------------------------

/// Fast backoff so retry tests never sleep noticeably.
CheckpointRetryConfig fast_retry(int max_retries,
                                 bool read_only_on_exhaustion = true) {
  CheckpointRetryConfig config;
  config.max_retries = max_retries;
  config.backoff.base_s = 1e-6;
  config.backoff.cap_s = 1e-5;
  config.read_only_on_exhaustion = read_only_on_exhaustion;
  return config;
}

class CheckpointRetryTest : public CheckpointTest {
 protected:
  void SetUp() override {
#if !defined(OTAC_FAILPOINTS_ENABLED) || !OTAC_FAILPOINTS_ENABLED
    GTEST_SKIP() << "built with OTAC_FAILPOINTS=OFF";
#endif
    CheckpointTest::SetUp();
    fail::Registry::instance().disable_all();
  }
  void TearDown() override {
    fail::Registry::instance().disable_all();
    CheckpointTest::TearDown();
  }
};

TEST_F(CheckpointRetryTest, SaveRetryAbsorbsTransientFault) {
  CheckpointManager manager{dir_};
  manager.configure_retry(fast_retry(2));
  obs::MetricsRegistry registry;
  manager.bind_metrics(registry);
  fail::Registry::instance().enable_once("checkpoint.write.open_fail");

  EXPECT_TRUE(manager.save_with_retry(sample_snapshot()));
  EXPECT_FALSE(manager.read_only());
  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::current);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("checkpoint.save_retries"), 1u);
  EXPECT_EQ(snapshot.counters.at("checkpoint.saves"), 1u);
  EXPECT_EQ(snapshot.counters.at("checkpoint.save_failures"), 1u);
}

TEST_F(CheckpointRetryTest, SaveRetryExhaustionEntersTerminalReadOnly) {
  CheckpointManager manager{dir_};
  manager.configure_retry(fast_retry(1));
  obs::MetricsRegistry registry;
  manager.bind_metrics(registry);
  fail::Registry::instance().enable("checkpoint.write.open_fail");  // always

  EXPECT_FALSE(manager.save_with_retry(sample_snapshot()));
  EXPECT_TRUE(manager.read_only());
  // The fault clearing does NOT resurrect durability: read-only is
  // terminal for the manager's lifetime, and skips are counted.
  fail::Registry::instance().disable_all();
  EXPECT_FALSE(manager.save_with_retry(sample_snapshot()));
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("checkpoint.save_retries"), 1u);
  EXPECT_EQ(snapshot.counters.at("checkpoint.read_only_skips"), 2u);
  // Nothing ever landed on disk.
  EXPECT_EQ(manager.load().origin, CheckpointOrigin::none);
}

TEST_F(CheckpointRetryTest, SaveRetryExhaustionCanPropagateInstead) {
  CheckpointManager manager{dir_};
  manager.configure_retry(fast_retry(1, /*read_only_on_exhaustion=*/false));
  fail::Registry::instance().enable("checkpoint.write.open_fail");
  EXPECT_THROW(manager.save_with_retry(sample_snapshot()),
               std::runtime_error);
  EXPECT_FALSE(manager.read_only());
}

TEST_F(CheckpointRetryTest, UnconfiguredSaveWithRetryKeepsFirstFailureContract) {
  CheckpointManager manager{dir_};  // no configure_retry()
  fail::Registry::instance().enable_once("checkpoint.write.open_fail");
  // Zero retries, errors propagate, no read-only state: exactly save().
  EXPECT_THROW(manager.save_with_retry(sample_snapshot()),
               std::runtime_error);
  EXPECT_FALSE(manager.read_only());
  EXPECT_TRUE(manager.save_with_retry(sample_snapshot()));
}

TEST_F(CheckpointRetryTest, LoadRetryRecoversFromTransientIo) {
  CheckpointManager manager{dir_};
  manager.configure_retry(fast_retry(2));
  obs::MetricsRegistry registry;
  manager.bind_metrics(registry);
  ASSERT_TRUE(manager.save_with_retry(sample_snapshot()));

  // Both generations reject on the first pass (transient I/O), then the
  // fault clears and the re-read restores the current generation.
  fail::Registry::instance().enable_once("checkpoint.load.io");
  const CheckpointLoad loaded = manager.load_with_retry();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::current);
  expect_equal(loaded.snapshot, sample_snapshot());
  EXPECT_EQ(registry.snapshot().counters.at("checkpoint.load_retries"), 1u);
}

TEST_F(CheckpointRetryTest, LoadRetryColdStartIsFinalWithoutFaults) {
  CheckpointManager manager{dir_};
  manager.configure_retry(fast_retry(3));
  obs::MetricsRegistry registry;
  manager.bind_metrics(registry);
  // Nothing on disk and nothing rejected: no retry is attempted.
  const CheckpointLoad loaded = manager.load_with_retry();
  EXPECT_EQ(loaded.origin, CheckpointOrigin::none);
  EXPECT_EQ(registry.snapshot().counters.at("checkpoint.load_retries"), 0u);
}

}  // namespace
}  // namespace otac
