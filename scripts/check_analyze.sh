#!/usr/bin/env bash
# Run the whole-program invariant gate (tools/otac_analyze): module
# layering DAG vs the real include graph, nm-level hot-path symbol gate
# against the audited allowlist (tools/otac_analyze/hotpath_symbols.json),
# and lock discipline against src/core/lock_names.h — self-test first,
# then the real tree, with JSON findings + DOT layering graph emitted
# under <build-dir>/analyze/.
#
# Thin wrapper: the commands live in scripts/ci.sh (the `analyze` job),
# shared byte for byte with .github/workflows/ci.yml.
#
# Usage: scripts/check_analyze.sh [build-dir]   (default: build)
set -euo pipefail

exec "$(dirname "$0")/ci.sh" analyze "${1:-}"
