#!/usr/bin/env bash
# Run the concurrency suite (sharded stress + determinism tests) under
# ThreadSanitizer. The sharded serving layer's whole safety argument is
# "shards share nothing mutable except the atomic model slot" — TSan is the
# instrument that checks the argument, not the code comments.
#
# Usage: scripts/check_concurrency.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target test_concurrency -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure -j"$(nproc)"

echo "concurrency suite clean under TSan"
