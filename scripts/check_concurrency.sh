#!/usr/bin/env bash
# Run the concurrency suite (sharded stress + determinism tests) under
# ThreadSanitizer. The sharded serving layer's whole safety argument is
# "shards share nothing mutable except the atomic model slot" — TSan is the
# instrument that checks the argument, not the code comments.
#
# Thin wrapper: the commands live in scripts/ci.sh (the `concurrency` job),
# shared byte for byte with .github/workflows/ci.yml.
#
# Usage: scripts/check_concurrency.sh [build-dir]   (default: build-tsan)
set -euo pipefail

exec "$(dirname "$0")/ci.sh" concurrency "${1:-}"
