#!/usr/bin/env bash
# Run the three-layer static-analysis gate: otac-lint project invariants
# (tools/otac_lint), the hardened-warning build (OTAC_WERROR=ON over
# -Wshadow -Wconversion -Wdouble-promotion -Wnon-virtual-dtor
# -Wimplicit-fallthrough), and curated clang-tidy (.clang-tidy) on the
# compile database.
#
# Thin wrapper: the commands live in scripts/ci.sh (the `lint` job),
# shared byte for byte with .github/workflows/ci.yml.
#
# Usage: scripts/check_lint.sh [build-dir]   (default: build-lint)
set -euo pipefail

exec "$(dirname "$0")/ci.sh" lint "${1:-}"
