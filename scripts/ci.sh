#!/usr/bin/env bash
# Single entry point for every CI job. GitHub Actions
# (.github/workflows/ci.yml) and local runs execute the same commands, so
# "works in CI" and "works on my machine" cannot drift apart.
#
# Usage: scripts/ci.sh <job> [build-dir]
#
# Jobs:
#   build        configure + build everything + full ctest (the tier-1 gate)
#   robustness   ASan+UBSan over the `robustness` ctest label
#                (failpoints, crash-safe checkpointing, crash recovery)
#   concurrency  TSan over the `concurrency` ctest label
#                (sharded stress + determinism)
#   bench-smoke  reduced-iteration micro-bench pass (OTAC_SCALE, default
#                0.02) that emits and validates the BENCH_*.json reports
#   format       clang-format drift check over the tracked C++ sources
#
# Compiler/launcher selection flows through the standard environment
# variables (CC, CXX, CMAKE_{C,CXX}_COMPILER_LAUNCHER), which is how the
# workflow wires up gcc/clang and ccache without this script knowing.
set -euo pipefail

cd "$(dirname "$0")/.."

JOB="${1:-}"
BUILD_DIR="${2:-}"

case "$JOB" in
  build)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
    ;;

  robustness)
    BUILD_DIR="${BUILD_DIR:-build-asan}"
    cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" --target test_robustness -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" -L robustness --output-on-failure -j"$(nproc)"
    echo "robustness suite clean under ASan+UBSan"
    ;;

  concurrency)
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" --target test_concurrency -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure -j"$(nproc)"
    echo "concurrency suite clean under TSan"
    ;;

  bench-smoke)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j"$(nproc)" \
      --target micro_cache_ops micro_classifier micro_obs_overhead
    mkdir -p "$BUILD_DIR/bench-smoke"
    (
      cd "$BUILD_DIR/bench-smoke"
      export OTAC_SCALE="${OTAC_SCALE:-0.02}"
      ../bench/micro_cache_ops BENCH_cache_ops.json
      ../bench/micro_classifier BENCH_classifier.json
      ../bench/micro_obs_overhead BENCH_obs_overhead.json
      # Malformed report JSON fails the job — the reports are the artifact.
      for report in BENCH_*.json; do
        python3 -m json.tool "$report" > /dev/null
        echo "valid JSON: $report"
      done
    )
    echo "bench smoke passed (OTAC_SCALE=${OTAC_SCALE:-0.02}); reports in $BUILD_DIR/bench-smoke"
    ;;

  format)
    clang-format --version
    git ls-files '*.h' '*.cpp' | xargs clang-format --dry-run --Werror
    echo "formatting clean"
    ;;

  *)
    echo "usage: scripts/ci.sh {build|robustness|concurrency|bench-smoke|format} [build-dir]" >&2
    exit 2
    ;;
esac
