#!/usr/bin/env bash
# Single entry point for every CI job. GitHub Actions
# (.github/workflows/ci.yml) and local runs execute the same commands, so
# "works in CI" and "works on my machine" cannot drift apart.
#
# Usage: scripts/ci.sh <job> [build-dir]
#
# Jobs:
#   build        configure + build everything + full ctest (the tier-1 gate)
#   robustness   ASan+UBSan over the `robustness` ctest label
#                (failpoints, crash-safe checkpointing, crash recovery)
#   concurrency  TSan over the `concurrency` ctest label
#                (sharded stress + determinism)
#   chaos        chaos-schedule gate: the `chaos` ctest label (builtin
#                fault scenarios, tools/chaos) under ASan+UBSan *and*
#                TSan, then the replay report binary emits and validates
#                BENCH_chaos.json (exits nonzero if any scenario fails
#                to complete, recover, or keep shedding bounded)
#   bench-smoke  reduced-iteration micro-bench pass (OTAC_SCALE, default
#                0.02) that emits and validates the BENCH_*.json reports
#   scenarios    scenario-matrix regression gate: micro_scenarios replays
#                every registered scenario (src/scenario) at full scale
#                through Original and Proposal admission, emits
#                BENCH_scenarios.json, and tools/scenario_gate validates
#                every cell against the checked-in tolerance envelopes
#                (hit rate, write count, shed ceiling, p99)
#   daemon       serving-daemon smoke gate: otacd replays the pinned
#                bench workload behind real loopback sockets while
#                otac_loadgen offers the trace open-loop, the resulting
#                BENCH_daemon.json must sit inside
#                tools/daemon_gate/envelopes.json (after the gate's own
#                negative fixtures prove it can fail), and the daemon
#                e2e suite runs under TSan
#   lint         three-layer static-analysis gate: otac-lint invariants,
#                hardened-warning build (OTAC_WERROR=ON), curated
#                clang-tidy over the compile database (mandatory when
#                CI=true, skipped with a notice on tool-less local boxes)
#   analyze      whole-program invariant gate (tools/otac_analyze): the
#                analyzer self-test (violation fixtures must fail with
#                their pinned counts), then the real tree across all
#                three checks — module layering DAG vs the real include
#                graph, hot-path symbol gate over the built objects
#                (nm, audited allowlist), and lock discipline against
#                src/core/lock_names.h. Emits JSON findings + the DOT
#                layering graph as artifacts.
#   format       clang-format drift check over the tracked C++ sources
#
# Compiler/launcher selection flows through the standard environment
# variables (CC, CXX, CMAKE_{C,CXX}_COMPILER_LAUNCHER), which is how the
# workflow wires up gcc/clang and ccache without this script knowing.
set -euo pipefail

cd "$(dirname "$0")/.."

JOB="${1:-}"
BUILD_DIR="${2:-}"

case "$JOB" in
  build)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
    ;;

  robustness)
    BUILD_DIR="${BUILD_DIR:-build-asan}"
    cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" --target test_robustness -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" -L robustness --output-on-failure -j"$(nproc)"
    echo "robustness suite clean under ASan+UBSan"
    ;;

  concurrency)
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" --target test_concurrency test_daemon_e2e \
      -j"$(nproc)"
    ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure -j"$(nproc)"
    echo "concurrency suite clean under TSan"
    ;;

  chaos)
    # Both sanitizers on purpose: ASan+UBSan catches lifetime bugs on the
    # fault paths (abandoned retrains, checkpoint retries), TSan
    # race-checks the watchdog worker and the mid-serve checkpointer
    # thread. The build dirs match the robustness/concurrency jobs so
    # local runs and CI share their caches.
    ASAN_DIR="${BUILD_DIR:-build-asan}"
    TSAN_DIR="${BUILD_DIR:+$BUILD_DIR-tsan}"
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    cmake -B "$ASAN_DIR" -S . -DOTAC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$ASAN_DIR" --target test_chaos micro_chaos_replay -j"$(nproc)"
    ctest --test-dir "$ASAN_DIR" -L chaos --output-on-failure -j"$(nproc)"
    echo "chaos suite clean under ASan+UBSan"
    cmake -B "$TSAN_DIR" -S . -DOTAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$TSAN_DIR" --target test_chaos -j"$(nproc)"
    ctest --test-dir "$TSAN_DIR" -L chaos --output-on-failure -j"$(nproc)"
    echo "chaos suite clean under TSan"
    # The replay report is the artifact: micro_chaos_replay runs every
    # builtin scenario at a reduced trace scale and exits nonzero unless
    # each one completes, recovers, and keeps shedding bounded. Running
    # the ASan binary keeps the gate honest about fault-path lifetimes.
    mkdir -p "$ASAN_DIR/bench-smoke"
    "$ASAN_DIR/bench/micro_chaos_replay" \
      "$ASAN_DIR/bench-smoke/BENCH_chaos.json" "${OTAC_CHAOS_SCALE:-0.05}"
    python3 -m json.tool "$ASAN_DIR/bench-smoke/BENCH_chaos.json" > /dev/null
    echo "chaos gate passed; report in $ASAN_DIR/bench-smoke/BENCH_chaos.json"
    ;;

  bench-smoke)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j"$(nproc)" \
      --target micro_cache_ops micro_classifier micro_obs_overhead \
               micro_sharded_replay micro_chaos_replay micro_scenarios
    mkdir -p "$BUILD_DIR/bench-smoke"
    (
      cd "$BUILD_DIR/bench-smoke"
      export OTAC_SCALE="${OTAC_SCALE:-0.02}"
      ../bench/micro_cache_ops BENCH_cache_ops.json
      ../bench/micro_classifier BENCH_classifier.json
      ../bench/micro_obs_overhead BENCH_obs_overhead.json
      # Sharded replay at a tiny trace scale (argv[2]); the smoke run's job
      # is exercising the batched admission path end-to-end, not timing.
      ../bench/micro_sharded_replay BENCH_sharded_replay.json 0.05
      # Chaos replay report: a behavior gate (completion/recovery/shed
      # rate per fault scenario), self-failing on any scenario miss.
      ../bench/micro_chaos_replay BENCH_chaos.json 0.05
      # Scenario matrix at a smoke scale (envelope checks only engage at
      # scale >= 1.0 — the `scenarios` job owns the tight gate).
      ../bench/micro_scenarios BENCH_scenarios.json 0.2
      # Malformed report JSON fails the job — the reports are the artifact.
      for report in BENCH_*.json; do
        python3 -m json.tool "$report" > /dev/null
        echo "valid JSON: $report"
      done
      # The oversubscription warning must track hardware_concurrency: a
      # cell carries "warning" iff threads > hardware_concurrency.
      python3 - <<'EOF'
import json
with open("BENCH_sharded_replay.json") as f:
    report = json.load(f)
for cell in report["cells"]:
    oversubscribed = cell["threads"] > cell["hardware_concurrency"]
    if oversubscribed != ("warning" in cell):
        raise SystemExit(
            f"warning field inconsistent with oversubscription: {cell}")
print("sharded-replay warning field consistent")
EOF
    )
    # Schema gate: json.tool only proves the reports parse; a bench that
    # silently emitted zero cells (or dropped the keys the perf notes
    # read) must fail the job, not upload an empty artifact.
    python3 tools/bench_gate/check_bench_smoke.py "$BUILD_DIR/bench-smoke"
    echo "bench smoke passed (OTAC_SCALE=${OTAC_SCALE:-0.02}); reports in $BUILD_DIR/bench-smoke"
    ;;

  scenarios)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" --target micro_scenarios -j"$(nproc)"
    mkdir -p "$BUILD_DIR/bench-smoke"
    # Full-scale replay: the envelopes are calibrated at scale 1.0 with
    # the bench's pinned seed, so the run is deterministic and the gate's
    # windows are drift, not noise. micro_scenarios itself exits nonzero
    # if any cell falls outside its registry sanity envelope.
    "$BUILD_DIR/bench/micro_scenarios" \
      "$BUILD_DIR/bench-smoke/BENCH_scenarios.json" \
      "${OTAC_SCENARIO_SCALE:-1.0}"
    python3 -m json.tool "$BUILD_DIR/bench-smoke/BENCH_scenarios.json" \
      > /dev/null
    # The regression gate proper: per-(scenario, mode) windows on hit
    # rate, write count, shed ceiling, and p99. Fails on any cell outside
    # its envelope or any scenario missing from either side.
    python3 tools/scenario_gate/check_scenarios.py \
      "$BUILD_DIR/bench-smoke/BENCH_scenarios.json" \
      tools/scenario_gate/envelopes.json
    echo "scenario gate passed; report in $BUILD_DIR/bench-smoke/BENCH_scenarios.json"
    ;;

  daemon)
    # Loopback smoke of the serving stack: otacd replays the pinned bench
    # workload (seed 42, scale 0.02, overload ladder + threaded watchdog
    # on) behind real sockets while the open-loop load generator offers
    # the first 20k requests at 40k rps; the resulting BENCH_daemon.json
    # (client p50/p99/p999 + the server-side replay summary, eviction
    # hash included) must sit inside tools/daemon_gate/envelopes.json.
    # The gate's own negative fixtures (injected p99 regression,
    # silently-empty report) run first, so a gate that cannot fail
    # cannot pass the job. Finally the daemon e2e suite — real acceptor/
    # reader/worker threads reproducing the in-process replay
    # bit-for-bit — runs under TSan. Build dirs match the bench-smoke
    # and concurrency jobs so local runs and CI share caches.
    BUILD_DIR="${BUILD_DIR:-build}"
    TSAN_DIR="${2:+$2-tsan}"
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" --target otacd otac_loadgen -j"$(nproc)"
    python3 tools/daemon_gate/check_daemon_test.py
    echo "daemon gate self-test passed (regression fixtures fail as required)"
    mkdir -p "$BUILD_DIR/bench-smoke"
    PORT_FILE="$BUILD_DIR/bench-smoke/otacd.port"
    rm -f "$PORT_FILE"
    # --port 0 + --port-file is the bind handshake: the kernel picks a
    # free port, otacd writes it after listen(), the loadgen polls the
    # file. No fixed port, no bind races on shared CI machines.
    "$BUILD_DIR/tools/otacd/otacd" \
      --port 0 --port-file "$PORT_FILE" \
      --seed 42 --scale 0.02 --shards 4 --overload \
      --watchdog-timeout 0.5 &
    OTACD_PID=$!
    trap 'kill "$OTACD_PID" 2>/dev/null || true' EXIT
    "$BUILD_DIR/tools/otac_loadgen/otac_loadgen" \
      --port-file "$PORT_FILE" \
      --seed 42 --scale 0.02 --requests 20000 --offered-rps 40000 \
      --out "$BUILD_DIR/bench-smoke/BENCH_daemon.json"
    # The loadgen's SHUTDOWN handshake stops the daemon; a hang here is
    # a bug the job should time out on, not silently kill away.
    wait "$OTACD_PID"
    trap - EXIT
    python3 -m json.tool "$BUILD_DIR/bench-smoke/BENCH_daemon.json" > /dev/null
    python3 tools/daemon_gate/check_daemon.py \
      "$BUILD_DIR/bench-smoke/BENCH_daemon.json" \
      tools/daemon_gate/envelopes.json
    cmake -B "$TSAN_DIR" -S . -DOTAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$TSAN_DIR" --target test_daemon_e2e -j"$(nproc)"
    ctest --test-dir "$TSAN_DIR" -L concurrency -R DaemonE2e \
      --output-on-failure -j"$(nproc)"
    echo "daemon e2e clean under TSan"
    echo "daemon gate passed; report in $BUILD_DIR/bench-smoke/BENCH_daemon.json"
    ;;

  lint)
    BUILD_DIR="${BUILD_DIR:-build-lint}"
    # Layer 3's prerequisites are checked up front: in CI (CI=true, set by
    # GitHub Actions) a runner image missing clang-tidy must FAIL the job
    # immediately — a silent skip would let the curated .clang-tidy config
    # stop gating merges without anyone noticing. Local gcc-only boxes
    # still get the skip-with-notice path.
    HAVE_TIDY=0
    if command -v clang-tidy >/dev/null 2>&1 && \
       command -v run-clang-tidy >/dev/null 2>&1; then
      HAVE_TIDY=1
    elif [ "${CI:-false}" = "true" ]; then
      echo "lint: CI mode requires clang-tidy + run-clang-tidy (layer 3);" \
           "install clang-tidy and clang-tools on the runner" >&2
      exit 1
    fi
    # The compile database is configured before any lint layer runs, so
    # layer 3 always has compile_commands.json even if an earlier layer's
    # diagnostics need it for reproduction.
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DOTAC_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Layer 1: otac-lint — project determinism/invariant rules
    # (tools/otac_lint; rule table via --list-rules, docs in DESIGN.md §11).
    python3 tools/otac_lint/otac_lint.py
    echo "otac-lint clean"
    # Layer 2: hardened-warning build — OTAC_WERROR=ON promotes the
    # OTAC_HARDENED_WARNINGS set (-Wshadow -Wconversion -Wdouble-promotion
    # -Wnon-virtual-dtor -Wimplicit-fallthrough) to errors across src/,
    # bench/, and examples/.
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    echo "hardened-warning build clean (-Werror)"
    # Layer 3: curated clang-tidy (.clang-tidy) over the compile database,
    # restricted to the product tree.
    if [ "$HAVE_TIDY" = 1 ]; then
      clang-tidy --version
      run-clang-tidy -p "$BUILD_DIR" -quiet "/(src|bench|examples)/"
      echo "clang-tidy clean"
    else
      echo "clang-tidy/run-clang-tidy not found; skipping layer 3" \
           "(mandatory in CI)"
    fi
    echo "lint gate passed"
    ;;

  analyze)
    BUILD_DIR="${BUILD_DIR:-build}"
    # The symbol gate inspects real objects, so build the libraries that
    # own the designated hot-path TUs (core: serving_core, sharded_cache,
    # history_table; ml: compiled_tree; net: daemon, protocol) against
    # the exported compile database.
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" --target otac_core otac_ml otac_net \
      -j"$(nproc)"
    # Self-test first: the violation fixtures (layering back-edge +
    # cycle, leaky hot-path object, lock-held I/O/wait/fit, rank
    # inversion, stale registry entries) must fail with their exact
    # pinned counts — a gate that cannot fail cannot pass the job.
    OTAC_ANALYZE_BUILD_DIR="$BUILD_DIR" \
      python3 tools/otac_analyze/otac_analyze_test.py
    echo "otac-analyze self-test passed (fixtures fail as required)"
    # The real tree: all three checks, artifacts alongside the findings.
    mkdir -p "$BUILD_DIR/analyze"
    python3 tools/otac_analyze/otac_analyze.py \
      --root "$PWD" --build-dir "$BUILD_DIR" \
      --json-out "$BUILD_DIR/analyze/ANALYZE_findings.json" \
      --dot "$BUILD_DIR/analyze/layering.dot"
    python3 -m json.tool "$BUILD_DIR/analyze/ANALYZE_findings.json" \
      > /dev/null
    echo "otac-analyze clean (layering DAG, hot-path symbol gate," \
         "lock discipline); artifacts in $BUILD_DIR/analyze"
    ;;

  format)
    clang-format --version
    git ls-files '*.h' '*.cpp' | xargs clang-format --dry-run --Werror
    echo "formatting clean"
    ;;

  *)
    echo "usage: scripts/ci.sh {build|robustness|concurrency|chaos|bench-smoke|scenarios|daemon|lint|analyze|format} [build-dir]" >&2
    exit 2
    ;;
esac
