#!/usr/bin/env bash
# Run the robustness suite (failpoint registry, crash-safe checkpointing,
# crash-recovery harness) under AddressSanitizer + UndefinedBehaviorSanitizer.
# "Never UB" claims in tests/integration/crash_recovery_test.cpp are only as
# good as the instrumentation they run under — this gate checks them.
#
# Thin wrapper: the commands live in scripts/ci.sh (the `robustness` job),
# shared byte for byte with .github/workflows/ci.yml.
#
# Usage: scripts/check_robustness.sh [build-dir]   (default: build-asan)
set -euo pipefail

exec "$(dirname "$0")/ci.sh" robustness "${1:-}"
