#!/usr/bin/env bash
# Run the robustness suite (failpoint registry, crash-safe checkpointing,
# crash-recovery harness) under AddressSanitizer + UndefinedBehaviorSanitizer.
# "Never UB" claims in tests/integration/crash_recovery_test.cpp are only as
# good as the instrumentation they run under — this script is the gate.
#
# Usage: scripts/check_robustness.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DOTAC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target test_robustness -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L robustness --output-on-failure -j"$(nproc)"

echo "robustness suite clean under ASan+UBSan"
