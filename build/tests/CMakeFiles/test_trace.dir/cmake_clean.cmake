file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/calibration_property_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/calibration_property_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/csv_import_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/csv_import_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/diurnal_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/diurnal_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/next_access_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/next_access_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/popularity_model_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/popularity_model_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/sampler_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/sampler_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/social_model_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/social_model_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_generator_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_generator_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/types_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/types_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
