
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/calibration_property_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/calibration_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/calibration_property_test.cpp.o.d"
  "/root/repo/tests/trace/csv_import_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/csv_import_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/csv_import_test.cpp.o.d"
  "/root/repo/tests/trace/diurnal_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/diurnal_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/diurnal_test.cpp.o.d"
  "/root/repo/tests/trace/next_access_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/next_access_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/next_access_test.cpp.o.d"
  "/root/repo/tests/trace/popularity_model_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/popularity_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/popularity_model_test.cpp.o.d"
  "/root/repo/tests/trace/sampler_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/sampler_test.cpp.o.d"
  "/root/repo/tests/trace/social_model_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/social_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/social_model_test.cpp.o.d"
  "/root/repo/tests/trace/trace_generator_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_generator_test.cpp.o.d"
  "/root/repo/tests/trace/trace_io_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  "/root/repo/tests/trace/trace_stats_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o.d"
  "/root/repo/tests/trace/types_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/types_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
