file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/classifier_system_test.cpp.o"
  "CMakeFiles/test_core.dir/core/classifier_system_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/criteria_test.cpp.o"
  "CMakeFiles/test_core.dir/core/criteria_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/feature_subset_test.cpp.o"
  "CMakeFiles/test_core.dir/core/feature_subset_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/history_table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/history_table_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/intelligent_cache_test.cpp.o"
  "CMakeFiles/test_core.dir/core/intelligent_cache_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/retrain_interval_test.cpp.o"
  "CMakeFiles/test_core.dir/core/retrain_interval_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
