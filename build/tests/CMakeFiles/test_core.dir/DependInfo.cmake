
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/classifier_system_test.cpp" "tests/CMakeFiles/test_core.dir/core/classifier_system_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/classifier_system_test.cpp.o.d"
  "/root/repo/tests/core/criteria_test.cpp" "tests/CMakeFiles/test_core.dir/core/criteria_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/criteria_test.cpp.o.d"
  "/root/repo/tests/core/feature_subset_test.cpp" "tests/CMakeFiles/test_core.dir/core/feature_subset_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/feature_subset_test.cpp.o.d"
  "/root/repo/tests/core/features_test.cpp" "tests/CMakeFiles/test_core.dir/core/features_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/features_test.cpp.o.d"
  "/root/repo/tests/core/history_table_test.cpp" "tests/CMakeFiles/test_core.dir/core/history_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/history_table_test.cpp.o.d"
  "/root/repo/tests/core/intelligent_cache_test.cpp" "tests/CMakeFiles/test_core.dir/core/intelligent_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/intelligent_cache_test.cpp.o.d"
  "/root/repo/tests/core/retrain_interval_test.cpp" "tests/CMakeFiles/test_core.dir/core/retrain_interval_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/retrain_interval_test.cpp.o.d"
  "/root/repo/tests/core/trainer_test.cpp" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/otac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/otac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/otac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
