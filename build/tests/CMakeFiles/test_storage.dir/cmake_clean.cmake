file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/storage_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/storage_test.cpp.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
