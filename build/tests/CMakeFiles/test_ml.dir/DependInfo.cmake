
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/classifier_property_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/classifier_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/classifier_property_test.cpp.o.d"
  "/root/repo/tests/ml/cross_validation_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/ensembles_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/ensembles_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/ensembles_test.cpp.o.d"
  "/root/repo/tests/ml/feature_selection_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/feature_selection_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/feature_selection_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/scaler_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o.d"
  "/root/repo/tests/ml/simple_classifiers_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/simple_classifiers_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/simple_classifiers_test.cpp.o.d"
  "/root/repo/tests/ml/tree_io_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/tree_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/tree_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/otac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
