file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/classifier_property_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/classifier_property_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/ensembles_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/ensembles_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/feature_selection_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/feature_selection_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/simple_classifiers_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/simple_classifiers_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/tree_io_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/tree_io_test.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
