# Empty dependencies file for test_cachesim.
# This may be replaced when dependencies are built.
