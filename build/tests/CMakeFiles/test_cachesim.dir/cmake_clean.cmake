file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim.dir/cachesim/differential_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/differential_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_behavior_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_behavior_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_edge_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_edge_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_property_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/policy_property_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/simulator_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/simulator_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/tiered_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/tiered_test.cpp.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/warmup_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/warmup_test.cpp.o.d"
  "test_cachesim"
  "test_cachesim.pdb"
  "test_cachesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
