
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cachesim/differential_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/differential_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/differential_test.cpp.o.d"
  "/root/repo/tests/cachesim/policy_behavior_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_behavior_test.cpp.o.d"
  "/root/repo/tests/cachesim/policy_edge_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_edge_test.cpp.o.d"
  "/root/repo/tests/cachesim/policy_property_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/policy_property_test.cpp.o.d"
  "/root/repo/tests/cachesim/simulator_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/simulator_test.cpp.o.d"
  "/root/repo/tests/cachesim/tiered_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/tiered_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/tiered_test.cpp.o.d"
  "/root/repo/tests/cachesim/warmup_test.cpp" "tests/CMakeFiles/test_cachesim.dir/cachesim/warmup_test.cpp.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/warmup_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/otac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
