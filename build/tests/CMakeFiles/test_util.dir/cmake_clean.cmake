file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/alias_table_test.cpp.o"
  "CMakeFiles/test_util.dir/util/alias_table_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/env_config_test.cpp.o"
  "CMakeFiles/test_util.dir/util/env_config_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/flags_test.cpp.o"
  "CMakeFiles/test_util.dir/util/flags_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/histogram_test.cpp.o"
  "CMakeFiles/test_util.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/sim_time_test.cpp.o"
  "CMakeFiles/test_util.dir/util/sim_time_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/table_test.cpp.o"
  "CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/zipf_test.cpp.o"
  "CMakeFiles/test_util.dir/util/zipf_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
