file(REMOVE_RECURSE
  "libotac_core.a"
)
