# Empty compiler generated dependencies file for otac_core.
# This may be replaced when dependencies are built.
