file(REMOVE_RECURSE
  "CMakeFiles/otac_core.dir/classifier_system.cpp.o"
  "CMakeFiles/otac_core.dir/classifier_system.cpp.o.d"
  "CMakeFiles/otac_core.dir/features.cpp.o"
  "CMakeFiles/otac_core.dir/features.cpp.o.d"
  "CMakeFiles/otac_core.dir/history_table.cpp.o"
  "CMakeFiles/otac_core.dir/history_table.cpp.o.d"
  "CMakeFiles/otac_core.dir/intelligent_cache.cpp.o"
  "CMakeFiles/otac_core.dir/intelligent_cache.cpp.o.d"
  "CMakeFiles/otac_core.dir/ota_criteria.cpp.o"
  "CMakeFiles/otac_core.dir/ota_criteria.cpp.o.d"
  "CMakeFiles/otac_core.dir/trainer.cpp.o"
  "CMakeFiles/otac_core.dir/trainer.cpp.o.d"
  "libotac_core.a"
  "libotac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
