
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier_system.cpp" "src/core/CMakeFiles/otac_core.dir/classifier_system.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/classifier_system.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/otac_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/features.cpp.o.d"
  "/root/repo/src/core/history_table.cpp" "src/core/CMakeFiles/otac_core.dir/history_table.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/history_table.cpp.o.d"
  "/root/repo/src/core/intelligent_cache.cpp" "src/core/CMakeFiles/otac_core.dir/intelligent_cache.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/intelligent_cache.cpp.o.d"
  "/root/repo/src/core/ota_criteria.cpp" "src/core/CMakeFiles/otac_core.dir/ota_criteria.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/ota_criteria.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/otac_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/otac_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/otac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/otac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
