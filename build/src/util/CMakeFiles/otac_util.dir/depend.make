# Empty dependencies file for otac_util.
# This may be replaced when dependencies are built.
