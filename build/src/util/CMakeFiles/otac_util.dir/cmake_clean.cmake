file(REMOVE_RECURSE
  "CMakeFiles/otac_util.dir/alias_table.cpp.o"
  "CMakeFiles/otac_util.dir/alias_table.cpp.o.d"
  "CMakeFiles/otac_util.dir/env_config.cpp.o"
  "CMakeFiles/otac_util.dir/env_config.cpp.o.d"
  "CMakeFiles/otac_util.dir/flags.cpp.o"
  "CMakeFiles/otac_util.dir/flags.cpp.o.d"
  "CMakeFiles/otac_util.dir/histogram.cpp.o"
  "CMakeFiles/otac_util.dir/histogram.cpp.o.d"
  "CMakeFiles/otac_util.dir/rng.cpp.o"
  "CMakeFiles/otac_util.dir/rng.cpp.o.d"
  "CMakeFiles/otac_util.dir/table.cpp.o"
  "CMakeFiles/otac_util.dir/table.cpp.o.d"
  "CMakeFiles/otac_util.dir/thread_pool.cpp.o"
  "CMakeFiles/otac_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/otac_util.dir/zipf.cpp.o"
  "CMakeFiles/otac_util.dir/zipf.cpp.o.d"
  "libotac_util.a"
  "libotac_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
