file(REMOVE_RECURSE
  "libotac_util.a"
)
