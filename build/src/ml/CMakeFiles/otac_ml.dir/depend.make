# Empty dependencies file for otac_ml.
# This may be replaced when dependencies are built.
