file(REMOVE_RECURSE
  "libotac_ml.a"
)
