file(REMOVE_RECURSE
  "CMakeFiles/otac_ml.dir/adaboost.cpp.o"
  "CMakeFiles/otac_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/otac_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/otac_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/otac_ml.dir/dataset.cpp.o"
  "CMakeFiles/otac_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/otac_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/otac_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/otac_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/otac_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/otac_ml.dir/knn.cpp.o"
  "CMakeFiles/otac_ml.dir/knn.cpp.o.d"
  "CMakeFiles/otac_ml.dir/logistic.cpp.o"
  "CMakeFiles/otac_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/otac_ml.dir/metrics.cpp.o"
  "CMakeFiles/otac_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/otac_ml.dir/mlp.cpp.o"
  "CMakeFiles/otac_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/otac_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/otac_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/otac_ml.dir/random_forest.cpp.o"
  "CMakeFiles/otac_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/otac_ml.dir/scaler.cpp.o"
  "CMakeFiles/otac_ml.dir/scaler.cpp.o.d"
  "libotac_ml.a"
  "libotac_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
