# Empty dependencies file for otac_cachesim.
# This may be replaced when dependencies are built.
