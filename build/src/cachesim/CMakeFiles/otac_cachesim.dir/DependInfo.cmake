
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/arc.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/arc.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/arc.cpp.o.d"
  "/root/repo/src/cachesim/belady.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/belady.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/belady.cpp.o.d"
  "/root/repo/src/cachesim/fifo.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/fifo.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/fifo.cpp.o.d"
  "/root/repo/src/cachesim/lfu.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/lfu.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/lfu.cpp.o.d"
  "/root/repo/src/cachesim/lirs.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/lirs.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/lirs.cpp.o.d"
  "/root/repo/src/cachesim/lru.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/lru.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/lru.cpp.o.d"
  "/root/repo/src/cachesim/policy_factory.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/policy_factory.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/policy_factory.cpp.o.d"
  "/root/repo/src/cachesim/s3lru.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/s3lru.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/s3lru.cpp.o.d"
  "/root/repo/src/cachesim/simulator.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/simulator.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/simulator.cpp.o.d"
  "/root/repo/src/cachesim/tiered.cpp" "src/cachesim/CMakeFiles/otac_cachesim.dir/tiered.cpp.o" "gcc" "src/cachesim/CMakeFiles/otac_cachesim.dir/tiered.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
