file(REMOVE_RECURSE
  "CMakeFiles/otac_cachesim.dir/arc.cpp.o"
  "CMakeFiles/otac_cachesim.dir/arc.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/belady.cpp.o"
  "CMakeFiles/otac_cachesim.dir/belady.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/fifo.cpp.o"
  "CMakeFiles/otac_cachesim.dir/fifo.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/lfu.cpp.o"
  "CMakeFiles/otac_cachesim.dir/lfu.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/lirs.cpp.o"
  "CMakeFiles/otac_cachesim.dir/lirs.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/lru.cpp.o"
  "CMakeFiles/otac_cachesim.dir/lru.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/policy_factory.cpp.o"
  "CMakeFiles/otac_cachesim.dir/policy_factory.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/s3lru.cpp.o"
  "CMakeFiles/otac_cachesim.dir/s3lru.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/simulator.cpp.o"
  "CMakeFiles/otac_cachesim.dir/simulator.cpp.o.d"
  "CMakeFiles/otac_cachesim.dir/tiered.cpp.o"
  "CMakeFiles/otac_cachesim.dir/tiered.cpp.o.d"
  "libotac_cachesim.a"
  "libotac_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
