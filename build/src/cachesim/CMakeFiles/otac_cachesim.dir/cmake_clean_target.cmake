file(REMOVE_RECURSE
  "libotac_cachesim.a"
)
