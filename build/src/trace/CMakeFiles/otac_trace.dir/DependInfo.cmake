
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/diurnal.cpp" "src/trace/CMakeFiles/otac_trace.dir/diurnal.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/diurnal.cpp.o.d"
  "/root/repo/src/trace/next_access.cpp" "src/trace/CMakeFiles/otac_trace.dir/next_access.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/next_access.cpp.o.d"
  "/root/repo/src/trace/photo_catalog.cpp" "src/trace/CMakeFiles/otac_trace.dir/photo_catalog.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/photo_catalog.cpp.o.d"
  "/root/repo/src/trace/popularity_model.cpp" "src/trace/CMakeFiles/otac_trace.dir/popularity_model.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/popularity_model.cpp.o.d"
  "/root/repo/src/trace/sampler.cpp" "src/trace/CMakeFiles/otac_trace.dir/sampler.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/sampler.cpp.o.d"
  "/root/repo/src/trace/social_model.cpp" "src/trace/CMakeFiles/otac_trace.dir/social_model.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/social_model.cpp.o.d"
  "/root/repo/src/trace/trace_generator.cpp" "src/trace/CMakeFiles/otac_trace.dir/trace_generator.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/trace_generator.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/otac_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/otac_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/trace/workload_config.cpp" "src/trace/CMakeFiles/otac_trace.dir/workload_config.cpp.o" "gcc" "src/trace/CMakeFiles/otac_trace.dir/workload_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
