# Empty compiler generated dependencies file for otac_trace.
# This may be replaced when dependencies are built.
