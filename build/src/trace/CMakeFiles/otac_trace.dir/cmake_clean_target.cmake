file(REMOVE_RECURSE
  "libotac_trace.a"
)
