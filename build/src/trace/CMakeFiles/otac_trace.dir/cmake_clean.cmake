file(REMOVE_RECURSE
  "CMakeFiles/otac_trace.dir/diurnal.cpp.o"
  "CMakeFiles/otac_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/otac_trace.dir/next_access.cpp.o"
  "CMakeFiles/otac_trace.dir/next_access.cpp.o.d"
  "CMakeFiles/otac_trace.dir/photo_catalog.cpp.o"
  "CMakeFiles/otac_trace.dir/photo_catalog.cpp.o.d"
  "CMakeFiles/otac_trace.dir/popularity_model.cpp.o"
  "CMakeFiles/otac_trace.dir/popularity_model.cpp.o.d"
  "CMakeFiles/otac_trace.dir/sampler.cpp.o"
  "CMakeFiles/otac_trace.dir/sampler.cpp.o.d"
  "CMakeFiles/otac_trace.dir/social_model.cpp.o"
  "CMakeFiles/otac_trace.dir/social_model.cpp.o.d"
  "CMakeFiles/otac_trace.dir/trace_generator.cpp.o"
  "CMakeFiles/otac_trace.dir/trace_generator.cpp.o.d"
  "CMakeFiles/otac_trace.dir/trace_io.cpp.o"
  "CMakeFiles/otac_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/otac_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/otac_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/otac_trace.dir/workload_config.cpp.o"
  "CMakeFiles/otac_trace.dir/workload_config.cpp.o.d"
  "libotac_trace.a"
  "libotac_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
