# Empty dependencies file for otac_experiments.
# This may be replaced when dependencies are built.
