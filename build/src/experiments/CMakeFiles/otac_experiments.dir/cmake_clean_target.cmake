file(REMOVE_RECURSE
  "libotac_experiments.a"
)
