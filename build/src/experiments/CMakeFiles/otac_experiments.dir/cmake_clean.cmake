file(REMOVE_RECURSE
  "CMakeFiles/otac_experiments.dir/capacity_sweep.cpp.o"
  "CMakeFiles/otac_experiments.dir/capacity_sweep.cpp.o.d"
  "CMakeFiles/otac_experiments.dir/classifier_experiments.cpp.o"
  "CMakeFiles/otac_experiments.dir/classifier_experiments.cpp.o.d"
  "CMakeFiles/otac_experiments.dir/workloads.cpp.o"
  "CMakeFiles/otac_experiments.dir/workloads.cpp.o.d"
  "libotac_experiments.a"
  "libotac_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
