# Empty dependencies file for daily_operations.
# This may be replaced when dependencies are built.
