file(REMOVE_RECURSE
  "CMakeFiles/daily_operations.dir/daily_operations.cpp.o"
  "CMakeFiles/daily_operations.dir/daily_operations.cpp.o.d"
  "daily_operations"
  "daily_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
