# Empty compiler generated dependencies file for tiered_cdn.
# This may be replaced when dependencies are built.
