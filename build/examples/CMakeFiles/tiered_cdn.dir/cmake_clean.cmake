file(REMOVE_RECURSE
  "CMakeFiles/tiered_cdn.dir/tiered_cdn.cpp.o"
  "CMakeFiles/tiered_cdn.dir/tiered_cdn.cpp.o.d"
  "tiered_cdn"
  "tiered_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
