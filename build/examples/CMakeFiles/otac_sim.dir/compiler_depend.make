# Empty compiler generated dependencies file for otac_sim.
# This may be replaced when dependencies are built.
