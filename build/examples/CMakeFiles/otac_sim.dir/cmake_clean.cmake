file(REMOVE_RECURSE
  "CMakeFiles/otac_sim.dir/otac_sim.cpp.o"
  "CMakeFiles/otac_sim.dir/otac_sim.cpp.o.d"
  "otac_sim"
  "otac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
