# Empty compiler generated dependencies file for micro_classifier.
# This may be replaced when dependencies are built.
