file(REMOVE_RECURSE
  "CMakeFiles/micro_classifier.dir/bench/micro_classifier.cpp.o"
  "CMakeFiles/micro_classifier.dir/bench/micro_classifier.cpp.o.d"
  "bench/micro_classifier"
  "bench/micro_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
