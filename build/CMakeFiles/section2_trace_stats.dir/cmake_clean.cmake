file(REMOVE_RECURSE
  "CMakeFiles/section2_trace_stats.dir/bench/section2_trace_stats.cpp.o"
  "CMakeFiles/section2_trace_stats.dir/bench/section2_trace_stats.cpp.o.d"
  "bench/section2_trace_stats"
  "bench/section2_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section2_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
