# Empty dependencies file for section2_trace_stats.
# This may be replaced when dependencies are built.
