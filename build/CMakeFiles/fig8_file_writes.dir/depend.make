# Empty dependencies file for fig8_file_writes.
# This may be replaced when dependencies are built.
