file(REMOVE_RECURSE
  "CMakeFiles/fig8_file_writes.dir/bench/fig8_file_writes.cpp.o"
  "CMakeFiles/fig8_file_writes.dir/bench/fig8_file_writes.cpp.o.d"
  "bench/fig8_file_writes"
  "bench/fig8_file_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_file_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
