file(REMOVE_RECURSE
  "CMakeFiles/ablate_feature_sets.dir/bench/ablate_feature_sets.cpp.o"
  "CMakeFiles/ablate_feature_sets.dir/bench/ablate_feature_sets.cpp.o.d"
  "bench/ablate_feature_sets"
  "bench/ablate_feature_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_feature_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
