# Empty dependencies file for ablate_feature_sets.
# This may be replaced when dependencies are built.
