file(REMOVE_RECURSE
  "CMakeFiles/fig10_response_time.dir/bench/fig10_response_time.cpp.o"
  "CMakeFiles/fig10_response_time.dir/bench/fig10_response_time.cpp.o.d"
  "bench/fig10_response_time"
  "bench/fig10_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
