# Empty compiler generated dependencies file for fig10_response_time.
# This may be replaced when dependencies are built.
