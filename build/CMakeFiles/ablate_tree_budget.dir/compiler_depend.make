# Empty compiler generated dependencies file for ablate_tree_budget.
# This may be replaced when dependencies are built.
