file(REMOVE_RECURSE
  "CMakeFiles/ablate_tree_budget.dir/bench/ablate_tree_budget.cpp.o"
  "CMakeFiles/ablate_tree_budget.dir/bench/ablate_tree_budget.cpp.o.d"
  "bench/ablate_tree_budget"
  "bench/ablate_tree_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tree_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
