# Empty compiler generated dependencies file for table1_classifiers.
# This may be replaced when dependencies are built.
