file(REMOVE_RECURSE
  "CMakeFiles/table1_classifiers.dir/bench/table1_classifiers.cpp.o"
  "CMakeFiles/table1_classifiers.dir/bench/table1_classifiers.cpp.o.d"
  "bench/table1_classifiers"
  "bench/table1_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
