file(REMOVE_RECURSE
  "CMakeFiles/micro_tracegen.dir/bench/micro_tracegen.cpp.o"
  "CMakeFiles/micro_tracegen.dir/bench/micro_tracegen.cpp.o.d"
  "bench/micro_tracegen"
  "bench/micro_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
