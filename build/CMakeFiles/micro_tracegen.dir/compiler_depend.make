# Empty compiler generated dependencies file for micro_tracegen.
# This may be replaced when dependencies are built.
