# Empty dependencies file for fig9_byte_writes.
# This may be replaced when dependencies are built.
