file(REMOVE_RECURSE
  "CMakeFiles/fig9_byte_writes.dir/bench/fig9_byte_writes.cpp.o"
  "CMakeFiles/fig9_byte_writes.dir/bench/fig9_byte_writes.cpp.o.d"
  "bench/fig9_byte_writes"
  "bench/fig9_byte_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_byte_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
