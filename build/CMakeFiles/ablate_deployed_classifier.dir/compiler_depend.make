# Empty compiler generated dependencies file for ablate_deployed_classifier.
# This may be replaced when dependencies are built.
