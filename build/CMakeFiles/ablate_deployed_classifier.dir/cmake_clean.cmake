file(REMOVE_RECURSE
  "CMakeFiles/ablate_deployed_classifier.dir/bench/ablate_deployed_classifier.cpp.o"
  "CMakeFiles/ablate_deployed_classifier.dir/bench/ablate_deployed_classifier.cpp.o.d"
  "bench/ablate_deployed_classifier"
  "bench/ablate_deployed_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_deployed_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
