file(REMOVE_RECURSE
  "CMakeFiles/fig3_photo_types.dir/bench/fig3_photo_types.cpp.o"
  "CMakeFiles/fig3_photo_types.dir/bench/fig3_photo_types.cpp.o.d"
  "bench/fig3_photo_types"
  "bench/fig3_photo_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_photo_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
