# Empty compiler generated dependencies file for fig3_photo_types.
# This may be replaced when dependencies are built.
