# Empty compiler generated dependencies file for fig6_file_hitrate.
# This may be replaced when dependencies are built.
