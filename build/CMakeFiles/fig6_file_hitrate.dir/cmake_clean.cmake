file(REMOVE_RECURSE
  "CMakeFiles/fig6_file_hitrate.dir/bench/fig6_file_hitrate.cpp.o"
  "CMakeFiles/fig6_file_hitrate.dir/bench/fig6_file_hitrate.cpp.o.d"
  "bench/fig6_file_hitrate"
  "bench/fig6_file_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_file_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
