file(REMOVE_RECURSE
  "CMakeFiles/fig7_byte_hitrate.dir/bench/fig7_byte_hitrate.cpp.o"
  "CMakeFiles/fig7_byte_hitrate.dir/bench/fig7_byte_hitrate.cpp.o.d"
  "bench/fig7_byte_hitrate"
  "bench/fig7_byte_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_byte_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
