# Empty compiler generated dependencies file for fig7_byte_hitrate.
# This may be replaced when dependencies are built.
