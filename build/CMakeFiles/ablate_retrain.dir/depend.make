# Empty dependencies file for ablate_retrain.
# This may be replaced when dependencies are built.
