file(REMOVE_RECURSE
  "CMakeFiles/ablate_retrain.dir/bench/ablate_retrain.cpp.o"
  "CMakeFiles/ablate_retrain.dir/bench/ablate_retrain.cpp.o.d"
  "bench/ablate_retrain"
  "bench/ablate_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
