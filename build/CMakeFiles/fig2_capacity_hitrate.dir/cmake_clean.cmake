file(REMOVE_RECURSE
  "CMakeFiles/fig2_capacity_hitrate.dir/bench/fig2_capacity_hitrate.cpp.o"
  "CMakeFiles/fig2_capacity_hitrate.dir/bench/fig2_capacity_hitrate.cpp.o.d"
  "bench/fig2_capacity_hitrate"
  "bench/fig2_capacity_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_capacity_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
