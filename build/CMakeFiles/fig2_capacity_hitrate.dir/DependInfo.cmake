
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_capacity_hitrate.cpp" "CMakeFiles/fig2_capacity_hitrate.dir/bench/fig2_capacity_hitrate.cpp.o" "gcc" "CMakeFiles/fig2_capacity_hitrate.dir/bench/fig2_capacity_hitrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/otac_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/otac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/otac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/otac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
