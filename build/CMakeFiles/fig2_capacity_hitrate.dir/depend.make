# Empty dependencies file for fig2_capacity_hitrate.
# This may be replaced when dependencies are built.
