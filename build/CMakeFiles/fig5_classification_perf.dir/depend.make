# Empty dependencies file for fig5_classification_perf.
# This may be replaced when dependencies are built.
