file(REMOVE_RECURSE
  "CMakeFiles/fig5_classification_perf.dir/bench/fig5_classification_perf.cpp.o"
  "CMakeFiles/fig5_classification_perf.dir/bench/fig5_classification_perf.cpp.o.d"
  "bench/fig5_classification_perf"
  "bench/fig5_classification_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_classification_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
