file(REMOVE_RECURSE
  "CMakeFiles/ablate_criteria.dir/bench/ablate_criteria.cpp.o"
  "CMakeFiles/ablate_criteria.dir/bench/ablate_criteria.cpp.o.d"
  "bench/ablate_criteria"
  "bench/ablate_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
