# Empty compiler generated dependencies file for ablate_criteria.
# This may be replaced when dependencies are built.
