file(REMOVE_RECURSE
  "CMakeFiles/ablate_history_table.dir/bench/ablate_history_table.cpp.o"
  "CMakeFiles/ablate_history_table.dir/bench/ablate_history_table.cpp.o.d"
  "bench/ablate_history_table"
  "bench/ablate_history_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_history_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
