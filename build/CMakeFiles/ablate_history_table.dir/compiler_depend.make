# Empty compiler generated dependencies file for ablate_history_table.
# This may be replaced when dependencies are built.
