file(REMOVE_RECURSE
  "CMakeFiles/micro_cache_ops.dir/bench/micro_cache_ops.cpp.o"
  "CMakeFiles/micro_cache_ops.dir/bench/micro_cache_ops.cpp.o.d"
  "bench/micro_cache_ops"
  "bench/micro_cache_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
