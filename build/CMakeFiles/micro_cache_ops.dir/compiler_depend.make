# Empty compiler generated dependencies file for micro_cache_ops.
# This may be replaced when dependencies are built.
