file(REMOVE_RECURSE
  "CMakeFiles/ablate_cost_matrix.dir/bench/ablate_cost_matrix.cpp.o"
  "CMakeFiles/ablate_cost_matrix.dir/bench/ablate_cost_matrix.cpp.o.d"
  "bench/ablate_cost_matrix"
  "bench/ablate_cost_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cost_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
