# Empty compiler generated dependencies file for ablate_cost_matrix.
# This may be replaced when dependencies are built.
