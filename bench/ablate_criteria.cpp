// Ablation: the one-time-access criteria (§4.3).
//
// The rudimentary criteria ("accessed exactly once in the whole trace")
// misses photos whose reaccess lies beyond their cache life. The paper's
// reaccess-distance criteria M = C/[S(1-h)(1-p)] also excludes those. We
// compare oracle admission under the two criteria (and no admission) at
// several capacities.
#include <iostream>

#include "bench/bench_common.h"
#include "cachesim/simulator.h"
#include "core/intelligent_cache.h"

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.5);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: one-time-access criteria (4.3)", ctx);

  const IntelligentCache system{ctx.trace};

  TablePrinter table{{"capacity(GB)", "criteria", "M", "hit rate",
                      "write rate", "rejected"}};
  for (const double paper_gb : {2.0, 10.0, 20.0}) {
    const std::uint64_t capacity =
        map_paper_gb(paper_gb, system.total_object_bytes());
    const double h = system.estimate_hit_rate(capacity);
    const CriteriaResult criteria =
        compute_criteria(ctx.trace, system.oracle(), capacity, h);

    struct Variant {
      const char* label;
      double threshold;
    };
    // "trace-once" == infinite threshold: only photos never accessed again
    // are excluded (the rudimentary criteria).
    const Variant variants[] = {
        {"none (Original)", -1.0},
        {"trace-once", std::numeric_limits<double>::infinity()},
        {"reaccess distance M", criteria.m},
    };
    for (const Variant& variant : variants) {
      const auto policy = make_policy(PolicyKind::lru, capacity);
      Simulator sim{ctx.trace};
      sim.set_oracle(system.oracle());
      CacheStats stats;
      if (variant.threshold < 0) {
        AlwaysAdmit admission;
        stats = sim.run(*policy, admission);
      } else {
        OracleAdmission admission{system.oracle(), variant.threshold};
        stats = sim.run(*policy, admission);
      }
      table.add_row({TablePrinter::fmt(paper_gb, 0), variant.label,
                     variant.threshold < 0 ? "-"
                     : std::isinf(variant.threshold)
                         ? "inf"
                         : TablePrinter::fmt(variant.threshold, 0),
                     TablePrinter::fmt(stats.file_hit_rate(), 4),
                     TablePrinter::fmt(stats.file_write_rate(), 4),
                     std::to_string(stats.rejected)});
    }
  }
  std::cout << table.to_string()
            << "\nexpected: trace-once already removes many writes; the M "
               "criteria removes beyond-cache-life photos too, cutting "
               "writes further and raising the hit rate, most visibly at "
               "small capacities.\n";
  return 0;
}
