// Figure 2 reproduction: hit rate vs cache capacity for LRU, S3LRU, ARC,
// LIRS and Belady across a wide capacity range. The paper observes (1) an
// inflection point X beyond which Belady flattens, (2) the advanced
// algorithms clustering ~1% above LRU, (3) the Belady gap shrinking from
// ~9% at X to ~4% at 4X.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 2: hit rate vs cache capacity", ctx);

  const SweepConfig config = bench::fig2_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);

  TablePrinter table{
      {"capacity(GB)", "LRU", "S3LRU", "ARC", "LIRS", "Belady", "Belady-LRU"}};
  for (const double gb : config.paper_gb) {
    const auto cell = [&](PolicyKind kind) {
      return sweep.find(kind, AdmissionMode::original, gb);
    };
    const auto lru = cell(PolicyKind::lru);
    const auto belady = cell(PolicyKind::belady);
    const auto fmt = [](const std::optional<SweepCell>& c) {
      return c ? TablePrinter::fmt(c->file_hit_rate, 4) : std::string{"-"};
    };
    std::string gap = "-";
    if (lru && belady) {
      gap = TablePrinter::pct(belady->file_hit_rate - lru->file_hit_rate);
    }
    table.add_row({TablePrinter::fmt(gb, 0), fmt(lru),
                   fmt(cell(PolicyKind::s3lru)), fmt(cell(PolicyKind::arc)),
                   fmt(cell(PolicyKind::lirs)), fmt(belady), gap});
  }
  std::cout << table.to_string()
            << "\npaper shape: advanced algorithms ~= LRU + ~1%; Belady gap "
               "~9% at the inflection point, shrinking with capacity.\n";
  return 0;
}
