// Shared scaffolding for the plain-main micro-benchmarks: steady-clock
// timing, best-of-N rep selection, and a machine-readable JSON report
// ({"bench": ..., "cells": [...]}) written next to the working directory so
// CI and the perf notes in DESIGN.md can diff runs without scraping stdout.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "util/env_config.h"

namespace otac::bench {

/// Default op/row count scaled by OTAC_SCALE (util/env_config.h): the CI
/// bench-smoke job sets OTAC_SCALE=0.02 so every micro-bench finishes in
/// seconds while still exercising the full report path; the floor keeps
/// cells non-degenerate at any scale.
inline std::size_t scaled(std::size_t n) {
  const double s = global_scale();
  const double scaled_n = static_cast<double>(n) * (s > 0.0 ? s : 1.0);
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled_n));
}

/// Seconds taken by one invocation of `body`.
inline double time_once(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best (minimum) wall time over `reps` invocations. Best-of-N is the right
/// statistic on shared machines: interference only ever adds time, so the
/// minimum is the closest observable to the true cost.
inline double best_of(int reps, const std::function<void()>& body) {
  double best = time_once(body);
  for (int r = 1; r < reps; ++r) best = std::min(best, time_once(body));
  return best;
}

/// One JSON object per finished cell, preformatted by the bench.
struct Report {
  std::string bench;
  int reps = 1;
  std::vector<std::string> cells;

  void write(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << bench << "\",\n  \"reps\": " << reps
        << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << "    " << cells[i] << (i + 1 < cells.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << " (" << cells.size() << " cells)\n";
  }
};

}  // namespace otac::bench
