// Supporting micro-benchmark: per-request cost of each replacement policy
// under a Zipf-like photo workload (t_query in the paper's Eq. 4/5 is the
// cache lookup; this shows all policies stay O(1)-ish and far below the
// 3 ms HDD miss penalty).
#include <benchmark/benchmark.h>

#include <vector>

#include "cachesim/cache_policy.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace otac;

struct Op {
  PhotoId key;
  std::uint32_t size;
};

const std::vector<Op>& workload() {
  static const std::vector<Op> ops = [] {
    Rng rng{42};
    const ZipfSampler zipf{100'000, 0.9};
    std::vector<Op> out(1'000'000);
    for (auto& op : out) {
      op.key = static_cast<PhotoId>(zipf.sample(rng));
      op.size = static_cast<std::uint32_t>(rng.uniform_int(4'000, 200'000));
    }
    return out;
  }();
  return ops;
}

void run_policy(benchmark::State& state, PolicyKind kind) {
  const auto& ops = workload();
  const auto policy = make_policy(kind, 512ULL * 1024 * 1024);
  std::size_t i = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const Op& op = ops[i];
    policy->set_next_access_hint(static_cast<std::uint64_t>(i) + op.key);
    if (policy->access(op.key, op.size)) {
      ++hits;
    } else {
      policy->insert(op.key, op.size);
    }
    i = (i + 1) % ops.size();
  }
  state.counters["hit_rate"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
}

void BM_Lru(benchmark::State& s) { run_policy(s, PolicyKind::lru); }
void BM_Fifo(benchmark::State& s) { run_policy(s, PolicyKind::fifo); }
void BM_S3Lru(benchmark::State& s) { run_policy(s, PolicyKind::s3lru); }
void BM_Arc(benchmark::State& s) { run_policy(s, PolicyKind::arc); }
void BM_Lirs(benchmark::State& s) { run_policy(s, PolicyKind::lirs); }
void BM_Lfu(benchmark::State& s) { run_policy(s, PolicyKind::lfu); }
void BM_Belady(benchmark::State& s) { run_policy(s, PolicyKind::belady); }

BENCHMARK(BM_Lru);
BENCHMARK(BM_Fifo);
BENCHMARK(BM_S3Lru);
BENCHMARK(BM_Arc);
BENCHMARK(BM_Lirs);
BENCHMARK(BM_Lfu);
BENCHMARK(BM_Belady);

}  // namespace

BENCHMARK_MAIN();
