// Supporting micro-benchmark: per-request cost of each replacement policy
// (t_query in the paper's Eq. 4/5 is the cache lookup; this shows all
// policies stay O(1)-ish and far below the 3 ms HDD miss penalty).
//
// Runs every policy x workload cell on the shared thread pool and writes a
// machine-readable report to BENCH_cache_ops.json (override with argv[1]).
// Workloads probe the three regimes that matter:
//   mixed          steady-state churn (hits + misses + evictions)
//   hit_heavy      resident working set, almost pure hit path
//   large_universe production-scale resident set (~500k objects), where
//                  pointer-chasing layouts fall off the cache cliff
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "cachesim/cache_policy.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/zipf.h"

namespace {

using namespace otac;

struct Op {
  PhotoId key;
  std::uint32_t size;
};

struct Workload {
  std::string name;
  std::vector<Op> ops;
  std::uint64_t capacity_bytes;
  // Run the ops once untimed before measuring, so the timed passes exercise
  // the steady-state access path instead of cold-cache insert churn.
  bool warm = false;
};

std::vector<Op> make_ops(std::size_t count, std::size_t universe,
                         double theta, std::uint64_t seed) {
  Rng rng{seed};
  const ZipfSampler zipf{universe, theta};
  std::vector<Op> out(count);
  for (auto& op : out) {
    op.key = static_cast<PhotoId>(zipf.sample(rng));
    op.size = static_cast<std::uint32_t>(rng.uniform_int(4'000, 200'000));
  }
  return out;
}

struct CellResult {
  std::string json;
  std::string line;
};

CellResult run_cell(PolicyKind kind, const Workload& workload, int reps) {
  double best = 1e300;
  double hit_rate = 0.0;
  const auto drive = [](CachePolicy& policy, const std::vector<Op>& ops) {
    std::uint64_t hits = 0;
    for (const Op& op : ops) {
      if (policy.access(op.key, op.size)) {
        ++hits;
      } else {
        policy.insert(op.key, op.size);
      }
    }
    return hits;
  };
  for (int rep = 0; rep < reps; ++rep) {
    const auto policy = make_policy(kind, workload.capacity_bytes);
    if (workload.warm) drive(*policy, workload.ops);
    std::uint64_t hits = 0;
    const double seconds =
        bench::time_once([&] { hits = drive(*policy, workload.ops); });
    best = std::min(best, seconds);
    hit_rate = static_cast<double>(hits) /
               static_cast<double>(workload.ops.size());
  }
  const double ops_per_sec = static_cast<double>(workload.ops.size()) / best;
  const double ns_per_op = best * 1e9 / static_cast<double>(workload.ops.size());
  const std::string name = policy_name(kind);

  CellResult result;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"policy\": \"%s\", \"workload\": \"%s\", \"ops\": %zu, "
                "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                "\"hit_rate\": %.4f}",
                name.c_str(), workload.name.c_str(), workload.ops.size(),
                ops_per_sec, ns_per_op, hit_rate);
  result.json = buffer;
  std::snprintf(buffer, sizeof(buffer),
                "%-6s %-14s %8.2f Mops/s %8.1f ns/op  hit=%.3f", name.c_str(),
                workload.name.c_str(), ops_per_sec / 1e6, ns_per_op, hit_rate);
  result.line = buffer;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_cache_ops.json"};
  constexpr int kReps = 3;

  std::vector<Workload> workloads;
  // Steady-state churn: ~650 resident objects, every miss evicts.
  workloads.push_back({"mixed", make_ops(bench::scaled(1'000'000), 100'000,
                                         0.9, 42),
                       512ULL << 20});
  // Hot working set: 20k keys all fit, so after warmup this is the pure
  // hit path (hash probe + splice to front).
  workloads.push_back({"hit_heavy", make_ops(bench::scaled(1'000'000),
                                             20'000, 0.9, 43),
                       1ULL << 50});
  // Production-scale resident set: a warmup pass makes ~470k objects
  // resident, then the timed passes measure the pure access path against
  // state far larger than L2 — where node layout dominates.
  workloads.push_back({"large_universe",
                       make_ops(bench::scaled(2'000'000), 1'000'000, 0.9, 44),
                       1ULL << 50,
                       /*warm=*/true});

  const std::vector<PolicyKind> policies = {
      PolicyKind::lru,  PolicyKind::fifo, PolicyKind::s3lru,
      PolicyKind::arc,  PolicyKind::lirs, PolicyKind::lfu,
  };

  struct Cell {
    PolicyKind kind;
    const Workload* workload;
  };
  std::vector<Cell> cells;
  for (const Workload& workload : workloads) {
    for (const PolicyKind kind : policies) cells.push_back({kind, &workload});
  }

  std::vector<CellResult> results(cells.size());
  ThreadPool pool;
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    results[i] = run_cell(cells[i].kind, *cells[i].workload, kReps);
  });

  bench::Report report;
  report.bench = "cache_ops";
  report.reps = kReps;
  for (const CellResult& result : results) {
    std::puts(result.line.c_str());
    report.cells.push_back(result.json);
  }
  report.write(out_path);
  return 0;
}
