// Ablation: the 30-split budget (§3.1.2).
//
// The paper caps the CART tree at 30 splits (~3x the feature count) to
// avoid over-fitting, observing height ~5. We sweep the budget and report
// held-out accuracy, height, and prediction cost.
#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/classifier_experiments.h"
#include "ml/decision_tree.h"

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.5);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: decision-tree split budget (3.1.2)", ctx);

  const NextAccessInfo oracle = compute_next_access(ctx.trace);
  const IntelligentCache system{ctx.trace};
  const std::uint64_t capacity =
      map_paper_gb(10.0, system.total_object_bytes());
  const CriteriaResult criteria = compute_criteria(
      ctx.trace, oracle, capacity, system.estimate_hit_rate(capacity));
  const ml::Dataset data =
      build_classifier_dataset(ctx.trace, oracle, criteria.m, 100);
  Rng rng{global_seed()};
  const auto split = data.train_test_split(0.3, rng);

  TablePrinter table{{"max splits", "train acc", "test acc", "height",
                      "mean cmps", "predict ns"}};
  for (const std::size_t budget : {1UL, 3UL, 10UL, 30UL, 100UL, 1000UL}) {
    ml::DecisionTreeConfig config;
    config.max_splits = budget;
    config.max_depth = 40;
    ml::DecisionTree tree{config};
    tree.fit(split.train);

    const auto accuracy_on = [&](const ml::Dataset& part) {
      std::size_t correct = 0;
      for (std::size_t i = 0; i < part.num_rows(); ++i) {
        correct += tree.predict(part.row(i)) == part.label(i);
      }
      return static_cast<double>(correct) /
             static_cast<double>(part.num_rows());
    };
    double comparisons = 0.0;
    for (std::size_t i = 0; i < split.test.num_rows(); ++i) {
      comparisons +=
          static_cast<double>(tree.decision_path_length(split.test.row(i)));
    }
    comparisons /= static_cast<double>(split.test.num_rows());

    const auto start = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (std::size_t i = 0; i < split.test.num_rows(); ++i) {
      sink += tree.predict_proba(split.test.row(i));
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(split.test.num_rows());
    (void)sink;

    table.add_row({std::to_string(budget),
                   TablePrinter::fmt(accuracy_on(split.train), 4),
                   TablePrinter::fmt(accuracy_on(split.test), 4),
                   std::to_string(tree.height()),
                   TablePrinter::fmt(comparisons, 2),
                   TablePrinter::fmt(ns, 1)});
  }
  std::cout << table.to_string()
            << "\nexpected: test accuracy saturates near the paper's 30-split "
               "budget while cost keeps growing — the paper's operating "
               "point is on the knee.\n";
  return 0;
}
