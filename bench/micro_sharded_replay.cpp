// Throughput of the sharded serving layer (core/sharded_cache.h): replay a
// multi-million-request trace through 8 shards at 1 worker thread vs 8 and
// report the scaling, for both the Original (admit-all) and Proposal
// (ML admission) modes.
//
// Writes BENCH_sharded_replay.json (override with argv[1]); argv[2] scales
// the trace (default 4.0 ≈ 6M requests — the reference workload produces
// ~1.6M requests per unit scale). Each cell records hardware_concurrency:
// the speedup_vs_1thread column is only meaningful when the machine
// actually has idle cores to hand to the extra workers (on a 1-CPU box the
// 8-thread cell measures scheduling overhead, not scaling).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "core/serving_core.h"
#include "core/sharded_cache.h"
#include "experiments/workloads.h"

namespace {

using namespace otac;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_sharded_replay.json"};
  const double scale = argc > 2 ? std::atof(argv[2]) : 4.0;
  constexpr std::uint64_t kSeed = 42;
  constexpr int kReps = 2;
  constexpr std::size_t kShards = 8;

  const Trace trace = load_bench_trace(scale, kSeed);
  const IntelligentCache system{trace};
  const ShardedCache sharded{system};
  const auto capacity =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.02);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("trace: %zu requests, hardware_concurrency=%u\n",
              trace.requests.size(), hardware);

  // Warm the memoized LRU hit-rate estimate so proposal cells time the
  // replay, not the shared h-estimation run.
  const double hit_rate_estimate = system.estimate_hit_rate(capacity);

  bench::Report report;
  report.bench = "sharded_replay";
  report.reps = kReps;

  for (const AdmissionMode mode :
       {AdmissionMode::original, AdmissionMode::proposal}) {
    double ops_at_1thread = 0.0;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      RunConfig config;
      config.policy = PolicyKind::lru;
      config.capacity_bytes = capacity;
      config.mode = mode;
      config.hit_rate_estimate = hit_rate_estimate;
      config.shards = kShards;
      config.threads = threads;

      RunResult result;
      const double seconds =
          bench::best_of(kReps, [&] { result = sharded.run(config); });
      const double ops_per_sec =
          static_cast<double>(trace.requests.size()) / seconds;
      if (threads == 1) ops_at_1thread = ops_per_sec;
      const double speedup = ops_per_sec / ops_at_1thread;

      // Optional fields: the proposal cells record the admission
      // micro-batch capacity (the batched CompiledTree serving path), and
      // oversubscribed cells carry an explicit warning so downstream
      // tooling never mistakes scheduling overhead for scaling data.
      char extra[160];
      int off = 0;
      extra[0] = '\0';
      if (mode == AdmissionMode::proposal) {
        off += std::snprintf(extra + off, sizeof(extra) - std::size_t(off),
                             ", \"admission_batch_capacity\": %zu",
                             ServingCore::kAdmissionBatchCapacity);
      }
      const bool oversubscribed = threads > hardware;
      if (oversubscribed) {
        off += std::snprintf(extra + off, sizeof(extra) - std::size_t(off),
                             ", \"warning\": \"threads exceed "
                             "hardware_concurrency\"");
      }
      char buffer[640];
      std::snprintf(
          buffer, sizeof(buffer),
          "{\"mode\": \"%s\", \"shards\": %zu, \"threads\": %zu, "
          "\"requests\": %zu, \"seconds\": %.3f, \"ops_per_sec\": %.0f, "
          "\"speedup_vs_1thread\": %.2f, \"hardware_concurrency\": %u, "
          "\"file_hit_rate\": %.4f, \"trainings\": %d%s}",
          admission_mode_name(mode).c_str(), kShards, threads,
          trace.requests.size(), seconds, ops_per_sec, speedup, hardware,
          result.stats.file_hit_rate(), result.trainings, extra);
      report.cells.push_back(buffer);
      std::printf("%-8s threads=%zu %8.2f Mreq/s  speedup=%.2fx  hit=%.3f%s\n",
                  admission_mode_name(mode).c_str(), threads,
                  ops_per_sec / 1e6, speedup, result.stats.file_hit_rate(),
                  oversubscribed ? "  [oversubscribed]" : "");
    }
  }

  report.write(out_path);
  return 0;
}
