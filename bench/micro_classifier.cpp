// Micro-benchmarks backing the §5.3.5 constants: t_classify (decision-tree
// prediction, paper: 0.4 us including the history table) and the daily
// retraining cost (paper: "a few minutes" on 144k rows — the presorted
// splitter makes a single tree a sub-second affair).
//
// Runs each cell on the shared thread pool and writes a machine-readable
// report to BENCH_classifier.json (override with argv[1]). Fit cells use a
// synthetic 8-feature dataset (deterministic seeds) so fit-time numbers are
// comparable across machines and revisions.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "core/history_table.h"
#include "ml/compiled_tree.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace otac;

/// Linearly separable-ish labels with noise: uniform features in [0, 100],
/// alternating-sign weights, so a 30-split tree has real structure to find.
ml::Dataset make_dataset(std::size_t rows, std::size_t features,
                         std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  ml::Dataset data{names};
  Rng rng{seed};
  std::vector<float> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    float score = 0.0F;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = static_cast<float>(rng.uniform_int(0, 1000)) / 10.0F;
      score += row[f] * (f % 2 == 0 ? 1.0F : -0.5F);
    }
    const int label =
        (score + static_cast<float>(rng.uniform_int(0, 40))) > 30.0F ? 1 : 0;
    data.add_row(row, label, 1.0F);
  }
  return data;
}

ml::DecisionTreeConfig tree_config() {
  ml::DecisionTreeConfig config;
  config.max_splits = 30;  // the paper's split budget (§3.1.2)
  return config;
}

struct CellResult {
  std::string json;
  std::string line;
};

CellResult make_result(const std::string& name, std::size_t ops,
                       double seconds, const std::string& extra_json) {
  const double ops_per_sec = static_cast<double>(ops) / seconds;
  const double ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  CellResult result;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cell\": \"%s\", \"ops\": %zu, \"ops_per_sec\": %.0f, "
                "\"ns_per_op\": %.2f%s}",
                name.c_str(), ops, ops_per_sec, ns_per_op, extra_json.c_str());
  result.json = buffer;
  std::snprintf(buffer, sizeof(buffer), "%-18s %12.0f ops/s %10.1f ns/op",
                name.c_str(), ops_per_sec, ns_per_op);
  result.line = buffer;
  return result;
}

/// Fit cell: ops == rows, plus an explicit fit_seconds field.
CellResult run_tree_fit(std::size_t rows, int reps) {
  const ml::Dataset data = make_dataset(rows, 8, 7);
  std::size_t splits = 0;
  const double seconds = bench::best_of(reps, [&] {
    ml::DecisionTree tree{tree_config()};
    tree.fit(data);
    splits = tree.split_count();
  });
  char extra[96];
  std::snprintf(extra, sizeof(extra), ", \"fit_seconds\": %.4f, \"splits\": %zu",
                seconds, splits);
  return make_result("tree_fit_" + std::to_string(rows / 1000) + "k", rows,
                     seconds, extra);
}

/// Predict cell: t_classify core — one tree traversal per row.
CellResult run_tree_predict(int reps) {
  const ml::Dataset data = make_dataset(bench::scaled(140'000), 8, 7);
  ml::DecisionTree tree{tree_config()};
  tree.fit(data);
  const std::size_t kOps = bench::scaled(1'000'000);
  double sink = 0.0;
  const double seconds = bench::best_of(reps, [&] {
    for (std::size_t i = 0; i < kOps; ++i) {
      sink += tree.predict_proba(data.row(i % data.num_rows()));
    }
  });
  char extra[64];
  std::snprintf(extra, sizeof(extra), ", \"sink\": %.0f", sink);
  return make_result("tree_predict", kOps, seconds, extra);
}

/// Compiled-tree scalar cell: the same traversal as tree_predict through
/// the flattened SoA node array — isolates the layout win from batching.
CellResult run_compiled_predict(int reps) {
  const ml::Dataset data = make_dataset(bench::scaled(140'000), 8, 7);
  ml::DecisionTree tree{tree_config()};
  tree.fit(data);
  const ml::CompiledTree compiled = ml::CompiledTree::compile(tree);
  const std::size_t kOps = bench::scaled(1'000'000);
  double sink = 0.0;
  const double seconds = bench::best_of(reps, [&] {
    for (std::size_t i = 0; i < kOps; ++i) {
      sink += compiled.predict_proba(data.row(i % data.num_rows()));
    }
  });
  char extra[64];
  std::snprintf(extra, sizeof(extra), ", \"sink\": %.0f", sink);
  return make_result("compiled_predict", kOps, seconds, extra);
}

/// Batched cell: level-synchronous branch-free walk over `batch` rows per
/// predict_proba_batch call (the serving path's admission micro-batch).
/// Dataset storage is row-major contiguous, so rows pass straight through
/// with stride = num_features().
CellResult run_compiled_batch(std::size_t batch, int reps) {
  const ml::Dataset data = make_dataset(bench::scaled(140'000), 8, 7);
  ml::DecisionTree tree{tree_config()};
  tree.fit(data);
  const ml::CompiledTree compiled = ml::CompiledTree::compile(tree);
  const std::size_t kOps =
      bench::scaled(1'000'000) / batch * batch;  // whole batches only
  const float* rows = data.row(0).data();
  const std::size_t stride = data.num_features();
  const std::size_t usable = data.num_rows() / batch * batch;
  std::vector<float> out(batch, 0.0F);
  double sink = 0.0;
  const double seconds = bench::best_of(reps, [&] {
    for (std::size_t i = 0; i < kOps; i += batch) {
      compiled.predict_proba_batch(rows + (i % usable) * stride, batch,
                                   stride, out.data());
      sink += static_cast<double>(out[0]);
    }
  });
  char extra[64];
  std::snprintf(extra, sizeof(extra), ", \"batch\": %zu, \"sink\": %.0f",
                batch, sink);
  return make_result("compiled_batch" + std::to_string(batch), kOps, seconds,
                     extra);
}

/// History-table cell: the rectify-or-record step of every classification.
CellResult run_history_table(int reps) {
  const std::size_t kOps = bench::scaled(1'000'000);
  std::size_t rectified = 0;
  const double seconds = bench::best_of(reps, [&] {
    HistoryTable table{4096};
    rectified = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
      const auto photo = static_cast<PhotoId>(i % 8192);
      if (table.rectify(photo, i, 1000.0)) {
        ++rectified;
      } else {
        table.record(photo, i);
      }
    }
  });
  char extra[64];
  std::snprintf(extra, sizeof(extra), ", \"rectified\": %zu", rectified);
  return make_result("history_table", kOps, seconds, extra);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_classifier.json"};
  constexpr int kReps = 3;

  const std::vector<std::function<CellResult()>> cells = {
      [] { return run_tree_fit(bench::scaled(35'000), kReps); },
      [] { return run_tree_fit(bench::scaled(140'000), kReps); },
      [] { return run_tree_predict(kReps); },
      [] { return run_compiled_predict(kReps); },
      [] { return run_compiled_batch(8, kReps); },
      [] { return run_compiled_batch(64, kReps); },
      [] { return run_history_table(kReps); },
  };

  std::vector<CellResult> results(cells.size());
  ThreadPool pool;
  pool.parallel_for(cells.size(),
                    [&](std::size_t i) { results[i] = cells[i](); });

  bench::Report report;
  report.bench = "classifier";
  report.reps = kReps;
  for (const CellResult& result : results) {
    std::puts(result.line.c_str());
    report.cells.push_back(result.json);
  }
  report.write(out_path);
  return 0;
}
