// Micro-benchmarks backing the §5.3.5 constants: t_classify (decision-tree
// prediction + history-table consultation) and the cost of online feature
// extraction. The paper measures t_classify = 0.4 us; a 30-split tree of
// height ~5 should land in that ballpark on modern hardware.
#include <benchmark/benchmark.h>

#include "core/classifier_system.h"
#include "core/features.h"
#include "core/history_table.h"
#include "experiments/classifier_experiments.h"
#include "experiments/workloads.h"
#include "ml/decision_tree.h"
#include "util/env_config.h"

namespace {

using namespace otac;

struct MicroContext {
  Trace trace;
  NextAccessInfo oracle;
  ml::Dataset dataset{FeatureExtractor::feature_names()};
  ml::DecisionTree tree;

  MicroContext() {
    trace = load_bench_trace(std::min(global_scale(), 0.25), global_seed());
    oracle = compute_next_access(trace);
    dataset = build_classifier_dataset(trace, oracle, 20'000.0, 100);
    ml::DecisionTreeConfig config;
    config.max_splits = 30;
    tree = ml::DecisionTree{config};
    tree.fit(dataset);
  }
};

MicroContext& context() {
  static MicroContext ctx;
  return ctx;
}

void BM_TreePredict(benchmark::State& state) {
  MicroContext& ctx = context();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.tree.predict_proba(ctx.dataset.row(i)));
    i = (i + 1) % ctx.dataset.num_rows();
  }
  state.SetLabel("t_classify core; paper: 0.4us incl. history table");
}
BENCHMARK(BM_TreePredict);

void BM_FeatureExtraction(benchmark::State& state) {
  MicroContext& ctx = context();
  FeatureExtractor fx{ctx.trace.catalog};
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  std::size_t i = 0;
  for (auto _ : state) {
    const Request& request = ctx.trace.requests[i];
    const PhotoMeta& photo = ctx.trace.catalog.photo(request.photo);
    fx.extract(request, photo, row);
    benchmark::DoNotOptimize(row);
    fx.observe(request, photo);
    i = (i + 1) % ctx.trace.requests.size();
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_HistoryTableRecordRectify(benchmark::State& state) {
  HistoryTable table{4096};
  std::uint64_t index = 0;
  for (auto _ : state) {
    const auto photo = static_cast<PhotoId>(index % 8192);
    if (!table.rectify(photo, index, 1000.0)) {
      table.record(photo, index);
    }
    ++index;
  }
}
BENCHMARK(BM_HistoryTableRecordRectify);

void BM_TreeTrainDailySample(benchmark::State& state) {
  MicroContext& ctx = context();
  ml::DecisionTreeConfig config;
  config.max_splits = 30;
  for (auto _ : state) {
    ml::DecisionTree tree{config};
    tree.fit(ctx.dataset);
    benchmark::DoNotOptimize(tree.split_count());
  }
  state.SetLabel("daily retraining cost; paper: 'a few minutes' on 144k rows");
}
BENCHMARK(BM_TreeTrainDailySample);

}  // namespace

BENCHMARK_MAIN();
