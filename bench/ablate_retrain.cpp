// Ablation: why retrain daily? (§4.4.3)
//
// The paper observes that "classifying performance drops down significantly
// over time" with a static model. A stationary workload hides this (a day-0
// model stays valid), so this ablation runs on a *drifting* variant of the
// workload — the type->popularity mapping rotates every 2 days, the way
// content fashions shift in a real social network — and compares three
// schedules on identical evaluation sets (every request, ground-truth
// labels): frozen day-0 model, the paper's daily 05:00 retrain, and 6-hour
// incremental refits.
#include <iostream>
#include <optional>

#include "bench/bench_common.h"
#include "core/features.h"
#include "core/ota_criteria.h"
#include "core/trainer.h"
#include "core/intelligent_cache.h"

namespace {

using namespace otac;

struct Schedule {
  const char* label;
  double interval_hours;  // <0: never retrain after day 0; 0: daily @05:00
};

std::vector<double> per_day_accuracy(const Trace& trace,
                                     const NextAccessInfo& oracle, double m,
                                     const Schedule& schedule,
                                     std::int64_t max_day) {
  OtaConfig config;
  DailyTrainer trainer{oracle, config, m, 2.0};
  FeatureExtractor fx{trace.catalog};
  std::array<float, FeatureExtractor::kFeatureCount> row{};
  std::optional<ml::DecisionTree> model;

  std::vector<std::uint64_t> correct(static_cast<std::size_t>(max_day) + 1, 0);
  std::vector<std::uint64_t> total(static_cast<std::size_t>(max_day) + 1, 0);

  std::int64_t last_trained_day = std::numeric_limits<std::int64_t>::min();
  std::int64_t last_trained_time = std::numeric_limits<std::int64_t>::min();
  bool frozen = false;

  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const Request& request = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(request.photo);
    fx.extract(request, photo, row);

    if (model) {
      const int predicted = model->predict(row);
      const int actual =
          DailyTrainer::label_of(oracle, i, m, trace.requests.size());
      const auto day = static_cast<std::size_t>(day_index(request.time));
      correct[day] += (predicted == actual);
      total[day] += 1;
    }

    trainer.offer(i, request, row);
    fx.observe(request, photo);

    bool due = false;
    if (schedule.interval_hours > 0.0) {
      const auto interval = static_cast<std::int64_t>(
          schedule.interval_hours * kSecondsPerHour);
      due = last_trained_time == std::numeric_limits<std::int64_t>::min() ||
            request.time.seconds - last_trained_time >= interval;
    } else {
      const std::int64_t day = day_index(request.time);
      due = !frozen && hour_of_day(request.time) >= 5 &&
            day > last_trained_day;
      if (due) last_trained_day = day;
    }
    if (due) {
      if (auto tree = trainer.train(i, request.time)) model = std::move(tree);
      last_trained_time = request.time.seconds;
      if (schedule.interval_hours < 0.0) frozen = true;  // train once only
    }
  }

  std::vector<double> accuracy(total.size(), 0.0);
  for (std::size_t d = 0; d < total.size(); ++d) {
    accuracy[d] = total[d] ? static_cast<double>(correct[d]) /
                                 static_cast<double>(total[d])
                           : 0.0;
  }
  return accuracy;
}

}  // namespace

int main() {
  using namespace otac;
  // Drifting variant of the bench workload (not the shared cached trace).
  WorkloadConfig workload =
      bench_workload_config(std::min(global_scale(), 0.5), global_seed());
  workload.type_popularity_rotation_days = 2;
  workload.weight_type = 1.4;  // make the drifting signal load-bearing
  const Trace trace = TraceGenerator{workload}.generate();
  bench::BenchContext ctx;
  ctx.info = describe(trace, std::min(global_scale(), 0.5), global_seed());
  std::cout << "=== Ablation: retraining schedule (4.4.3) ===\n"
            << "drifting workload: type->popularity rotates every "
            << workload.type_popularity_rotation_days << " days; "
            << ctx.info.requests << " requests\n\n";

  const NextAccessInfo oracle = compute_next_access(trace);
  const IntelligentCache system{trace};
  const std::uint64_t capacity =
      map_paper_gb(10.0, system.total_object_bytes());
  const CriteriaResult criteria = compute_criteria(
      trace, oracle, capacity, system.estimate_hit_rate(capacity));

  const std::int64_t max_day = day_index(SimTime{trace.horizon.seconds - 1});
  std::vector<std::string> headers{"schedule"};
  for (std::int64_t d = 0; d <= max_day; ++d) {
    headers.push_back("d" + std::to_string(d));
  }
  TablePrinter table{std::move(headers)};

  const Schedule schedules[] = {
      {"frozen day-0 model", -1.0},
      {"daily @ 05:00 (paper)", 0.0},
      {"every 6h (incremental)", 6.0},
  };
  for (const Schedule& schedule : schedules) {
    const auto accuracy =
        per_day_accuracy(trace, oracle, criteria.m, schedule, max_day);
    std::vector<std::string> cells{schedule.label};
    for (std::int64_t d = 0; d <= max_day; ++d) {
      const double a = accuracy[static_cast<std::size_t>(d)];
      cells.push_back(a > 0.0 ? TablePrinter::fmt(a, 3) : std::string{"-"});
    }
    table.add_row(std::move(cells));
  }
  std::cout << table.to_string()
            << "\npaper claim (4.4.3): a static model decays as the workload "
               "drifts; daily retraining tracks it, frequent refits track "
               "it slightly faster.\n";
  return 0;
}
