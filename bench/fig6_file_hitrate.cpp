// Figure 6 reproduction: file hit rate of LRU/FIFO/S3LRU/ARC/LIRS at
// 2-20 GB (paper axis) under Original / Proposal / Ideal / Belady.
// Paper shape: FIFO +5-20%, LRU +3-17%, S3LRU only +0.7-4%; gains shrink
// as capacity grows.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 6: file hit rate", ctx);

  const SweepConfig config = bench::default_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);
  bench::print_figure(sweep, config, &SweepCell::file_hit_rate);
  bench::print_improvement_summary(sweep, config, &SweepCell::file_hit_rate,
                                   /*lower_is_better=*/false);
  std::cout << "paper shape: FIFO/LRU gain most (5-20% / 3-17% relative), "
               "advanced algorithms least; gains shrink with capacity.\n";
  return 0;
}
