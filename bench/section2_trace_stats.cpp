// §2.2 reproduction: the trace-characterization numbers motivating the
// paper — 61.5% of objects accessed exactly once, contributing 25.5% of
// accesses, capping the achievable hit rate at 74.5%.
#include <iostream>

#include "bench/bench_common.h"
#include "trace/trace_stats.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Section 2.2: trace characterization", ctx);

  const TraceStats stats = compute_trace_stats(ctx.trace);
  TablePrinter table{{"quantity", "paper", "measured"}};
  table.add_row({"total accesses", "5,856,501,598 (full) / ~58M (1:100)",
                 std::to_string(stats.total_requests)});
  table.add_row({"distinct objects", "1,481,617,402 (full) / ~14M (1:100)",
                 std::to_string(stats.distinct_objects)});
  table.add_row({"one-time-access objects", "61.5%",
                 TablePrinter::pct(stats.one_time_object_fraction())});
  table.add_row({"one-time share of accesses",
                 "25.5% stated / 15.5% implied by totals",
                 TablePrinter::pct(stats.one_time_access_share())});
  table.add_row({"hit-rate cap (infinite cache)", "74.5%",
                 TablePrinter::pct(stats.hit_rate_cap())});
  table.add_row({"mean accesses per object", "-",
                 TablePrinter::fmt(stats.mean_accesses_per_object, 2)});
  table.add_row({"mean request size", "~32 KB photos",
                 TablePrinter::fmt(stats.mean_request_size_bytes / 1024.0, 1) +
                     " KB"});
  std::cout << table.to_string();
  return 0;
}
