// Figure 3 reproduction: number of requests per photo type. The paper's
// shape: l5 dominates (~45% of requests), followed by the other jpg
// resolutions; png variants trail.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/bench_common.h"
#include "trace/trace_stats.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 3: requests per photo type", ctx);

  const TraceStats stats = compute_trace_stats(ctx.trace);
  std::vector<int> order(kPhotoTypeCount);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return stats.requests_by_type[static_cast<std::size_t>(a)] >
           stats.requests_by_type[static_cast<std::size_t>(b)];
  });

  TablePrinter table{{"type", "requests", "share", "objects", "bar"}};
  const double total = static_cast<double>(stats.total_requests);
  const double peak = static_cast<double>(
      stats.requests_by_type[static_cast<std::size_t>(order.front())]);
  for (const int idx : order) {
    const auto i = static_cast<std::size_t>(idx);
    const double share =
        total > 0 ? static_cast<double>(stats.requests_by_type[i]) / total : 0;
    const auto bar_len = static_cast<std::size_t>(
        peak > 0 ? 40.0 * static_cast<double>(stats.requests_by_type[i]) / peak
                 : 0);
    table.add_row({std::string{type_name(type_from_index(idx))},
                   std::to_string(stats.requests_by_type[i]),
                   TablePrinter::pct(share),
                   std::to_string(stats.objects_by_type[i]),
                   std::string(bar_len, '#')});
  }
  std::cout << table.to_string()
            << "\npaper shape: l5 ~45% of requests, jpg types dominate png "
               "counterparts.\n";
  return 0;
}
