// Figure 9 reproduction: byte write rate ((bytes written to SSD) / (bytes
// accessed)). Paper shape: 60-80% reduction for LIRS, similar large cuts
// elsewhere — the SSD-lifetime headline of the paper.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 9: byte write rate", ctx);

  const SweepConfig config = bench::default_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);
  bench::print_figure(sweep, config, &SweepCell::byte_write_rate);
  bench::print_improvement_summary(sweep, config, &SweepCell::byte_write_rate,
                                   /*lower_is_better=*/true);
  std::cout << "paper shape: byte writes drop 60-80%; directly extends SSD "
               "lifetime (see examples/lifetime_study).\n";
  return 0;
}
