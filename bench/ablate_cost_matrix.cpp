// Ablation: the cost matrix v (§4.4.1).
//
// v is the penalty for misclassifying a reused photo as one-time (a false
// positive => future misses). Higher v makes the classifier conservative:
// precision rises, fewer photos are excluded, write savings shrink. The
// paper picks v=2 for small caches and v=3 for large ones.
#include <iostream>

#include "bench/bench_common.h"
#include "core/intelligent_cache.h"

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.5);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: cost-sensitive learning (4.4.1)", ctx);

  const IntelligentCache system{ctx.trace};

  for (const double paper_gb : {4.0, 16.0}) {
    const std::uint64_t capacity =
        map_paper_gb(paper_gb, system.total_object_bytes());
    RunConfig config;
    config.policy = PolicyKind::lru;
    config.capacity_bytes = capacity;

    config.mode = AdmissionMode::original;
    const RunResult original = system.run(config);

    TablePrinter table{{"v", "precision", "recall", "hit rate", "write cut",
                        "rejected"}};
    for (const double v : {1.0, 2.0, 3.0, 5.0}) {
      config.mode = AdmissionMode::proposal;
      config.ota.cost_v_small = v;
      config.ota.cost_v_large = v;
      const RunResult run = system.run(config);
      ml::ConfusionMatrix pooled;
      for (const auto& day : run.daily) {
        pooled.tp += day.raw.tp;
        pooled.fp += day.raw.fp;
        pooled.tn += day.raw.tn;
        pooled.fn += day.raw.fn;
      }
      const double write_cut =
          original.stats.insertions > 0
              ? 1.0 - static_cast<double>(run.stats.insertions) /
                          static_cast<double>(original.stats.insertions)
              : 0.0;
      table.add_row({TablePrinter::fmt(v, 0),
                     TablePrinter::fmt(pooled.precision(), 4),
                     TablePrinter::fmt(pooled.recall(), 4),
                     TablePrinter::fmt(run.stats.file_hit_rate(), 4),
                     TablePrinter::pct(write_cut),
                     std::to_string(run.stats.rejected)});
    }
    std::cout << "-- capacity " << paper_gb << " GB (paper axis); Original "
              << "hit rate "
              << TablePrinter::fmt(original.stats.file_hit_rate(), 4)
              << " --\n"
              << table.to_string() << "\n";
  }
  std::cout << "expected: precision rises with v while recall and the write "
               "cut fall — v trades SSD endurance against miss cost.\n";
  return 0;
}
