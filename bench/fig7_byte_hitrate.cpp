// Figure 7 reproduction: byte hit rate (throughput view of Fig. 6).
// Paper shape: mirrors file hit rate — FIFO +6-20%, LRU +4-16%,
// S3LRU +0.9-4% — because QQ photos are roughly uniform in size and the
// classifier is size-insensitive.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 7: byte hit rate", ctx);

  const SweepConfig config = bench::default_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);
  bench::print_figure(sweep, config, &SweepCell::byte_hit_rate);
  bench::print_improvement_summary(sweep, config, &SweepCell::byte_hit_rate,
                                   /*lower_is_better=*/false);
  std::cout << "paper shape: tracks file hit rate closely (photo sizes are "
               "homogeneous within types).\n";
  return 0;
}
