// Scenario-matrix report: replay every registered scenario
// (src/scenario/registry.h — adapters + adversarial stress shapes)
// through the sharded cache in Original and Proposal admission modes and
// record per-cell hit rate, SSD writes, degradation counters, and p99
// latency — the CI artifact behind `scripts/ci.sh scenarios`.
//
// Writes BENCH_scenarios.json (override with argv[1]); argv[2] scales the
// workloads (default 1.0 — the size tools/scenario_gate/envelopes.json is
// calibrated against). Like micro_chaos_replay this is a behavior report,
// not a timing contest: each cell must complete the whole trace, and at
// scale >= 1.0 must land inside its spec's broad sanity envelope; the
// tight regression windows are enforced afterwards by
// tools/scenario_gate/check_scenarios.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_json.h"
#include "scenario/registry.h"

int main(int argc, char** argv) {
  using namespace otac;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_scenarios.json"};
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  constexpr std::uint64_t kSeed = 42;
  const bool check_envelopes = scale >= 1.0;

  if (!scenario::failpoints_compiled()) {
    std::printf(
        "note: failpoint sites compiled out (OTAC_FAILPOINTS=OFF) — "
        "fault-driven scenarios run fault-free\n");
  }

  bench::Report report;
  report.bench = "scenarios";
  report.reps = 1;

  bool all_ok = true;
  for (const scenario::ScenarioSpec& spec : scenario::all()) {
    const scenario::ScenarioRunner runner{spec, kSeed, scale};
    std::printf("%-20s %zu requests, %zu objects\n", spec.name.c_str(),
                runner.trace().requests.size(),
                runner.trace().catalog.photo_count());
    for (const AdmissionMode mode :
         {AdmissionMode::original, AdmissionMode::proposal}) {
      const auto start = std::chrono::steady_clock::now();
      const RunResult result = runner.run(mode);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const scenario::ScenarioMetrics m = scenario::summarize(result);
      const bool completed = m.requests == runner.trace().requests.size();
      const bool ok =
          completed && (!check_envelopes || m.within(spec.envelope));
      all_ok = all_ok && ok;

      char buffer[512];
      std::snprintf(
          buffer, sizeof(buffer),
          "{\"scenario\": \"%s\", \"mode\": \"%s\", \"requests\": %llu, "
          "\"file_hit_rate\": %.6f, \"byte_write_rate\": %.6f, "
          "\"insertions\": %llu, \"shed_requests\": %llu, "
          "\"degraded_admits\": %llu, \"p99_latency_us\": %.3f, "
          "\"trainings\": %d, \"seconds\": %.3f, \"ok\": %s}",
          spec.name.c_str(), admission_mode_name(mode).c_str(),
          static_cast<unsigned long long>(m.requests), m.file_hit_rate,
          m.byte_write_rate, static_cast<unsigned long long>(m.insertions),
          static_cast<unsigned long long>(m.shed_requests),
          static_cast<unsigned long long>(m.degraded_admits),
          m.p99_latency_us, m.trainings, seconds, ok ? "true" : "false");
      report.cells.push_back(buffer);
      std::printf(
          "  %-9s hit=%.4f bwr=%.4f writes=%-8llu shed=%-6llu %5.2fs%s\n",
          admission_mode_name(mode).c_str(), m.file_hit_rate,
          m.byte_write_rate, static_cast<unsigned long long>(m.insertions),
          static_cast<unsigned long long>(m.shed_requests), seconds,
          ok ? "" : "  [FAILED]");
    }
  }

  report.write(out_path);
  // An incomplete replay or an out-of-envelope cell fails the job — the
  // report is a gate, not just an artifact.
  return all_ok ? 0 : 1;
}
