// Ablation: deployed feature subsets (§3.2.2).
//
// The paper forward-selects five of the nine candidate features for the
// deployed model {avg owner views, recency, age, access hour, type}. This
// ablation deploys different subsets in the live admission loop and
// measures end-to-end cache outcomes — showing how much signal each slice
// of the feature space actually buys.
#include <iostream>

#include "bench/bench_common.h"
#include "core/features.h"
#include "core/intelligent_cache.h"

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.5);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: deployed feature subsets (3.2.2)", ctx);

  const IntelligentCache system{ctx.trace};
  const std::uint64_t capacity =
      map_paper_gb(10.0, system.total_object_bytes());

  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes = capacity;
  config.mode = AdmissionMode::original;
  const RunResult original = system.run(config);

  using FX = FeatureExtractor;
  struct Subset {
    const char* label;
    std::vector<std::size_t> features;
  };
  const Subset subsets[] = {
      {"all nine", {}},
      {"paper's five (views,recency,age,hour,type)",
       {FX::kAvgOwnerViews, FX::kRecency, FX::kPhotoAge, FX::kAccessHour,
        FX::kPhotoType}},
      {"top-2 by info gain (recency,views)",
       {FX::kRecency, FX::kAvgOwnerViews}},
      {"recency only", {FX::kRecency}},
      {"social only (friends,views)",
       {FX::kActiveFriends, FX::kAvgOwnerViews}},
      {"context only (terminal,load,hour)",
       {FX::kTerminal, FX::kRecentRequests, FX::kAccessHour}},
  };

  TablePrinter table{
      {"deployed features", "hit rate", "write cut", "mean accuracy"}};
  table.add_row({"(none / Original)",
                 TablePrinter::fmt(original.stats.file_hit_rate(), 4), "-",
                 "-"});
  for (const Subset& subset : subsets) {
    config.mode = AdmissionMode::proposal;
    config.ota.feature_subset = subset.features;
    const RunResult run = system.run(config);
    double accuracy = 0.0;
    std::size_t days = 0;
    for (const auto& day : run.daily) {
      if (day.day == 0) continue;
      accuracy += day.raw.accuracy();
      ++days;
    }
    table.add_row(
        {subset.label, TablePrinter::fmt(run.stats.file_hit_rate(), 4),
         TablePrinter::pct(
             1.0 - static_cast<double>(run.stats.insertions) /
                       static_cast<double>(original.stats.insertions)),
         days ? TablePrinter::fmt(accuracy / static_cast<double>(days), 4)
              : std::string{"-"}});
  }
  std::cout << table.to_string()
            << "\nexpected: recency + owner views carry most of the signal; "
               "the paper's five and all nine are equivalent end-to-end; "
               "social/context-only slices filter much less accurately.\n";
  return 0;
}
