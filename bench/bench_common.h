// Shared plumbing for the figure/table harnesses: workload loading, the
// common sweep configuration (Figs. 6-10 share one simulation matrix and
// its disk cache), and banner printing.
#pragma once

#include <iostream>

#include "experiments/capacity_sweep.h"
#include "experiments/workloads.h"
#include "util/env_config.h"
#include "util/table.h"

namespace otac::bench {

struct BenchContext {
  Trace trace;
  BenchWorkloadInfo info;
};

inline BenchContext load_context() {
  const double scale = global_scale();
  const std::uint64_t seed = global_seed();
  BenchContext ctx;
  ctx.trace = load_bench_trace(scale, seed);
  ctx.info = describe(ctx.trace, scale, seed);
  return ctx;
}

inline void print_banner(const char* title, const BenchContext& ctx) {
  std::cout << "=== " << title << " ===\n"
            << "workload: seed=" << ctx.info.seed << " scale=" << ctx.info.scale
            << " requests=" << ctx.info.requests
            << " objects=" << ctx.info.photos << " dataset="
            << TablePrinter::fmt(ctx.info.total_object_bytes / 1e9, 2)
            << " GB (paper axis maps 2-20 GB of its ~450 GB dataset to the "
               "same fraction of ours)\n\n";
}

/// The sweep shared by Figs. 6, 7, 8, 9 and 10.
inline SweepConfig default_sweep_config() {
  return SweepConfig{};
}

/// Wider, Original-only sweep for Fig. 2 (shows the Belady plateau).
inline SweepConfig fig2_sweep_config() {
  SweepConfig config;
  config.paper_gb = {2, 5, 10, 20, 40, 80, 160};
  config.policies = {PolicyKind::lru, PolicyKind::s3lru, PolicyKind::arc,
                     PolicyKind::lirs};
  config.modes = {AdmissionMode::original};
  config.include_belady = true;
  return config;
}

inline const char* metric_name(double SweepCell::* metric) {
  if (metric == &SweepCell::file_hit_rate) return "file hit rate";
  if (metric == &SweepCell::byte_hit_rate) return "byte hit rate";
  if (metric == &SweepCell::file_write_rate) return "file write rate";
  if (metric == &SweepCell::byte_write_rate) return "byte write rate";
  if (metric == &SweepCell::latency_us) return "mean latency (us)";
  return "metric";
}

/// Print one paper figure: per policy, a capacity-indexed table of the
/// metric for Original / Proposal / Ideal / Belady.
inline void print_figure(const SweepResult& sweep, const SweepConfig& config,
                         double SweepCell::* metric, int precision = 4) {
  for (const PolicyKind policy : config.policies) {
    TablePrinter table{{"capacity(GB)", "Belady", "Ideal", "Proposal",
                        "Original"}};
    for (const double gb : config.paper_gb) {
      const auto belady =
          sweep.find(PolicyKind::belady, AdmissionMode::original, gb);
      const auto ideal = sweep.find(policy, AdmissionMode::ideal, gb);
      const auto proposal = sweep.find(policy, AdmissionMode::proposal, gb);
      const auto original = sweep.find(policy, AdmissionMode::original, gb);
      const auto fmt = [&](const std::optional<SweepCell>& cell) {
        return cell ? TablePrinter::fmt((*cell).*metric, precision)
                    : std::string{"-"};
      };
      table.add_row({TablePrinter::fmt(gb, 0), fmt(belady), fmt(ideal),
                     fmt(proposal), fmt(original)});
    }
    std::cout << "-- " << policy_name(policy) << " : " << metric_name(metric)
              << " --\n"
              << table.to_string() << "\n";
  }
}

/// Relative change Proposal vs Original per policy, min..max over capacities.
inline void print_improvement_summary(const SweepResult& sweep,
                                      const SweepConfig& config,
                                      double SweepCell::* metric,
                                      bool lower_is_better) {
  TablePrinter table{{"policy", "min change", "max change"}};
  for (const PolicyKind policy : config.policies) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double gb : config.paper_gb) {
      const auto proposal = sweep.find(policy, AdmissionMode::proposal, gb);
      const auto original = sweep.find(policy, AdmissionMode::original, gb);
      if (!proposal || !original) continue;
      const double base = (*original).*metric;
      if (base == 0.0) continue;
      double change = ((*proposal).*metric - base) / base;
      if (lower_is_better) change = -change;  // report as "reduction"
      lo = std::min(lo, change);
      hi = std::max(hi, change);
    }
    table.add_row({policy_name(policy), TablePrinter::pct(lo),
                   TablePrinter::pct(hi)});
  }
  std::cout << (lower_is_better ? "Reduction (Proposal vs Original):\n"
                                : "Improvement (Proposal vs Original):\n")
            << table.to_string() << "\n";
}

}  // namespace otac::bench
