// Ablation: the history table (§4.4.2).
//
// The table rectifies photos wrongly rejected as one-time. We sweep its
// sizing factor from 0 (off) past the paper's 0.05 to oversized, measuring
// rectifications and cache outcomes.
#include <iostream>

#include "bench/bench_common.h"
#include "core/classifier_system.h"
#include "cachesim/simulator.h"

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.5);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: history table sizing (4.4.2)", ctx);

  const IntelligentCache system{ctx.trace};
  const std::uint64_t capacity =
      map_paper_gb(6.0, system.total_object_bytes());
  const CriteriaResult criteria = compute_criteria(
      ctx.trace, system.oracle(), capacity,
      system.estimate_hit_rate(capacity));

  TablePrinter table{{"factor", "entries", "rectified", "hit rate",
                      "SSD writes", "rejected"}};
  for (const double factor : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    ClassifierSystemConfig cs;
    cs.ota.history_table_factor = factor;
    cs.m = criteria.m;
    cs.h = criteria.h;
    cs.p = criteria.p;
    cs.cost_v = system.cost_v_for(capacity, cs.ota);
    ClassifierSystem admission{ctx.trace, system.oracle(), cs};
    const auto policy = make_policy(PolicyKind::lru, capacity);
    Simulator sim{ctx.trace};
    const CacheStats stats = sim.run(*policy, admission);
    table.add_row({TablePrinter::fmt(factor, 2),
                   std::to_string(admission.history().capacity()),
                   std::to_string(admission.history().rectified_count()),
                   TablePrinter::fmt(stats.file_hit_rate(), 4),
                   std::to_string(stats.insertions),
                   std::to_string(stats.rejected)});
  }
  std::cout << table.to_string()
            << "\nexpected: rectifications recover hit rate lost to false "
               "one-time verdicts at a small write cost; beyond the paper's "
               "0.05 sizing the returns flatten.\n";
  return 0;
}
