// Figure 8 reproduction: file write rate (files written to SSD per access).
// Paper shape: writes collapse for every policy once one-time photos are
// excluded; LIRS sees the largest cut (65-81%), LRU ~79% at the headline.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 8: file write rate", ctx);

  const SweepConfig config = bench::default_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);
  bench::print_figure(sweep, config, &SweepCell::file_write_rate);
  bench::print_improvement_summary(sweep, config, &SweepCell::file_write_rate,
                                   /*lower_is_better=*/true);
  std::cout << "paper shape: 60-81% fewer SSD file writes across all "
               "policies under Proposal.\n";
  return 0;
}
