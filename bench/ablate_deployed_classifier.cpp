// Ablation: which classifier should be deployed? (§3.1.1, end to end)
//
// Table 1 ranks classifiers offline; this ablation closes the loop by
// deploying several of them inside the full admission loop (daily
// retraining included) and measuring actual cache outcomes *and* the
// classification cost per miss — the tradeoff that made the paper pick a
// single CART tree over the marginally-more-accurate ensembles.
//
// PluggableAdmission below is also a worked example of composing the
// public building blocks (FeatureExtractor, DailyTrainer::label_of, the
// AdmissionPolicy interface) into a custom admission system.
#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "cachesim/simulator.h"
#include "core/features.h"
#include "core/ota_criteria.h"
#include "core/trainer.h"
#include "ml/adaboost.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace {

using namespace otac;

class PluggableAdmission final : public AdmissionPolicy {
 public:
  PluggableAdmission(const Trace& trace, const NextAccessInfo& oracle,
                     double m, double cost_v, ml::ClassifierFactory factory)
      : oracle_(&oracle),
        m_(m),
        cost_v_(cost_v),
        factory_(std::move(factory)),
        extractor_(trace.catalog) {}

  bool admit(std::uint64_t /*index*/, const Request& request,
             const PhotoMeta& photo) override {
    if (!model_) return true;
    extractor_.extract(request, photo, scratch_);
    const auto start = std::chrono::steady_clock::now();
    const bool one_time = model_->predict(scratch_) == 1;
    classify_ns_ += std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    classifications_ += 1;
    return !one_time;
  }

  void observe(std::uint64_t index, const Request& request,
               const PhotoMeta& photo, bool /*hit*/) override {
    // Sample at the paper's 100 records/minute.
    const std::int64_t minute = request.time.seconds / kSecondsPerMinute;
    if (minute != current_minute_) {
      current_minute_ = minute;
      minute_count_ = 0;
    }
    if (minute_count_ < 100) {
      ++minute_count_;
      Sample sample;
      extractor_.extract(request, photo, sample.features);
      sample.index = index;
      window_.push_back(sample);
    }
    extractor_.observe(request, photo);

    const std::int64_t day = day_index(request.time);
    if (hour_of_day(request.time) >= 5 && day > last_trained_day_) {
      last_trained_day_ = day;
      retrain(index);
    }
  }

  [[nodiscard]] std::string name() const override { return "pluggable"; }
  [[nodiscard]] double mean_classify_ns() const {
    return classifications_
               ? classify_ns_ / static_cast<double>(classifications_)
               : 0.0;
  }
  [[nodiscard]] double total_fit_seconds() const { return fit_seconds_; }

 private:
  struct Sample {
    std::array<float, FeatureExtractor::kFeatureCount> features{};
    std::uint64_t index = 0;
  };

  void retrain(std::uint64_t now_index) {
    ml::Dataset data{FeatureExtractor::feature_names()};
    std::size_t positives = 0;
    for (const Sample& sample : window_) {
      const int label =
          DailyTrainer::label_of(*oracle_, sample.index, m_, now_index);
      positives += static_cast<std::size_t>(label);
      data.add_row(sample.features, label);
    }
    window_.clear();  // next training uses the next day's window
    if (data.num_rows() < 50 || positives == 0 ||
        positives == data.num_rows()) {
      return;
    }
    data.apply_cost_matrix(cost_v_);
    auto model = factory_();
    const auto start = std::chrono::steady_clock::now();
    model->fit(data);
    fit_seconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    model_ = std::move(model);
  }

  const NextAccessInfo* oracle_;
  double m_;
  double cost_v_;
  ml::ClassifierFactory factory_;
  FeatureExtractor extractor_;
  std::unique_ptr<ml::Classifier> model_;
  std::vector<Sample> window_;
  std::array<float, FeatureExtractor::kFeatureCount> scratch_{};
  std::int64_t current_minute_ = std::numeric_limits<std::int64_t>::min();
  int minute_count_ = 0;
  std::int64_t last_trained_day_ = std::numeric_limits<std::int64_t>::min();
  double classify_ns_ = 0.0;
  std::uint64_t classifications_ = 0;
  double fit_seconds_ = 0.0;
};

}  // namespace

int main() {
  using namespace otac;
  const double scale = std::min(global_scale(), 0.35);
  bench::BenchContext ctx;
  ctx.trace = load_bench_trace(scale, global_seed());
  ctx.info = describe(ctx.trace, scale, global_seed());
  bench::print_banner("Ablation: deployed classifier choice (3.1.1)", ctx);

  const IntelligentCache system{ctx.trace};
  const std::uint64_t capacity =
      map_paper_gb(10.0, system.total_object_bytes());
  const CriteriaResult criteria = compute_criteria(
      ctx.trace, system.oracle(), capacity,
      system.estimate_hit_rate(capacity));

  RunConfig base;
  base.policy = PolicyKind::lru;
  base.capacity_bytes = capacity;
  base.mode = AdmissionMode::original;
  const RunResult original = system.run(base);

  TablePrinter table{
      {"deployed model", "hit rate", "write cut", "classify ns", "fit s"}};
  const auto write_cut = [&](std::uint64_t insertions) {
    return TablePrinter::pct(
        1.0 - static_cast<double>(insertions) /
                  static_cast<double>(original.stats.insertions));
  };
  table.add_row({"(none / Original)",
                 TablePrinter::fmt(original.stats.file_hit_rate(), 4), "-",
                 "-", "-"});

  const std::vector<std::pair<std::string, ml::ClassifierFactory>> learners = {
      {"CART tree (paper)",
       [] { return std::make_unique<ml::DecisionTree>(); }},
      {"Naive Bayes",
       [] { return std::make_unique<ml::GaussianNaiveBayes>(); }},
      {"Logistic Regression",
       [] { return std::make_unique<ml::LogisticRegression>(); }},
      {"AdaBoost(30)", [] { return std::make_unique<ml::AdaBoost>(); }},
      {"RandomForest(30)",
       [] { return std::make_unique<ml::RandomForest>(); }},
  };

  for (const auto& [label, factory] : learners) {
    PluggableAdmission admission{ctx.trace, system.oracle(), criteria.m, 2.0,
                                 factory};
    const auto policy = make_policy(PolicyKind::lru, capacity);
    Simulator sim{ctx.trace};
    const CacheStats stats = sim.run(*policy, admission);
    table.add_row({label, TablePrinter::fmt(stats.file_hit_rate(), 4),
                   write_cut(stats.insertions),
                   TablePrinter::fmt(admission.mean_classify_ns(), 0),
                   TablePrinter::fmt(admission.total_fit_seconds(), 2)});
  }
  std::cout << table.to_string()
            << "\nexpected: ensembles buy little over the single tree while "
               "classifying 10-100x slower per miss; NB/LR filter less "
               "accurately (paper picked the tree for exactly this knee).\n";
  return 0;
}
