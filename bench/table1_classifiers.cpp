// Table 1 reproduction: precision / recall / accuracy / AUC of the seven
// candidate classifiers under cross-validation on the sampled, labeled
// dataset (§3.1.1), plus the §3.1.2 tree-configuration facts and the
// §3.2.2 information-gain feature-selection study.
//
// Paper shape: decision tree ~= AdaBoost ~= random forest (ensembles buy
// ~1% accuracy for ~30x prediction cost); Naive Bayes recalls everything
// with poor precision; logistic regression has high precision but
// negligible recall; BP NN and kNN sit in between.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/classifier_experiments.h"
#include "ml/decision_tree.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Table 1: classifier comparison", ctx);

  const NextAccessInfo oracle = compute_next_access(ctx.trace);
  const IntelligentCache system{ctx.trace};
  const std::uint64_t reference_capacity =
      map_paper_gb(10.0, system.total_object_bytes());
  const CriteriaResult criteria =
      compute_criteria(ctx.trace, oracle, reference_capacity,
                       system.estimate_hit_rate(reference_capacity));
  std::cout << "labeling criteria: M = " << TablePrinter::fmt(criteria.m, 0)
            << " requests (10 GB paper-equivalent capacity), p = "
            << TablePrinter::pct(criteria.p) << "\n\n";

  const ml::Dataset data =
      build_classifier_dataset(ctx.trace, oracle, criteria.m, 100);
  std::cout << "dataset: " << data.num_rows() << " sampled records, "
            << TablePrinter::pct(data.positive_weight() / data.total_weight())
            << " one-time\n\n";

  const auto rows = run_table1(data, Table1Config{});
  TablePrinter table{{"Algorithm", "Precision", "Recall", "Accuracy", "AUC",
                      "fit(s)", "predict(s)"}};
  for (const auto& row : rows) {
    table.add_row({row.algorithm, TablePrinter::fmt(row.metrics.precision, 4),
                   TablePrinter::fmt(row.metrics.recall, 4),
                   TablePrinter::fmt(row.metrics.accuracy, 4),
                   TablePrinter::fmt(row.metrics.auc, 4),
                   TablePrinter::fmt(row.metrics.fit_seconds, 2),
                   TablePrinter::fmt(row.metrics.predict_seconds, 2)});
  }
  std::cout << table.to_string() << "\n";

  const TreeConfigFacts facts = tree_config_facts(data, 30);
  std::cout << "tree configuration (3.1.2): splits=" << facts.splits
            << " (cap 30), height=" << facts.height
            << " (paper ~5), mean comparisons/prediction="
            << TablePrinter::fmt(facts.mean_comparisons, 2) << "\n\n";

  const ml::ForwardSelectionResult selection = ml::forward_select(
      data, [] { return std::make_unique<ml::DecisionTree>(); });
  TablePrinter gains{{"feature", "information gain", "selected"}};
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const bool selected =
        std::find(selection.selected.begin(), selection.selected.end(), f) !=
        selection.selected.end();
    gains.add_row({data.feature_names()[f],
                   TablePrinter::fmt(selection.gains[f], 4),
                   selected ? "yes" : "no"});
  }
  std::cout << "feature selection (3.2.2) — paper keeps {avg views, recency, "
               "age, access hour, type}:\n"
            << gains.to_string();
  return 0;
}
