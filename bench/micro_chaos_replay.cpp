// Chaos-schedule replay report: run every builtin chaos scenario
// (tools/chaos) through a sharded replay and record completion, recovery,
// shed rate, and wall time per scenario — the CI artifact proving the
// overload-resilience layer holds its invariants on a real trace.
//
// Writes BENCH_chaos.json (override with argv[1]); argv[2] scales the
// synthetic workload (default 0.1). Unlike the perf micro-benches this is
// a behavior report, not a timing contest: each scenario runs once and
// the interesting columns are booleans and counters.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_json.h"
#include "tools/chaos/chaos.h"
#include "trace/trace_generator.h"

int main(int argc, char** argv) {
  using namespace otac;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_chaos.json"};
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  constexpr std::uint64_t kSeed = 42;

  if (!chaos::failpoints_compiled()) {
    std::printf(
        "failpoint sites compiled out (OTAC_FAILPOINTS=OFF): chaos "
        "scenarios would run fault-free; refusing to emit a vacuous "
        "report\n");
    return 1;
  }

  chaos::Harness harness{generate_default_trace(scale, kSeed)};
  std::printf("trace: %zu requests, %zu scenarios\n",
              harness.trace().requests.size(),
              chaos::builtin_scenarios().size());

  bench::Report report;
  report.bench = "chaos_replay";
  report.reps = 1;

  bool all_ok = true;
  for (const chaos::Scenario& scenario : chaos::builtin_scenarios()) {
    const chaos::ScenarioReport result = harness.run(scenario);
    const bool ok = result.completed && result.shed_rate_bounded &&
                    result.checkpoint_recovered &&
                    (!result.golden_run || result.stats_identical);
    all_ok = all_ok && ok;

    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"scenario\": \"%s\", \"requests\": %llu, \"seconds\": %.3f, "
        "\"completed\": %s, \"failpoint_fires\": %llu, "
        "\"shed_rate\": %.6f, \"shed_rate_bounded\": %s, "
        "\"shed_requests\": %llu, \"retrain_retries\": %llu, "
        "\"retrain_timeouts\": %llu, \"checkpoint_recovered\": %s, "
        "\"golden_identical\": %s, \"ok\": %s}",
        scenario.name.c_str(),
        static_cast<unsigned long long>(result.faulty.stats.requests),
        result.faulty_seconds, result.completed ? "true" : "false",
        static_cast<unsigned long long>(result.failpoint_fires),
        result.shed_rate, result.shed_rate_bounded ? "true" : "false",
        static_cast<unsigned long long>(
            result.faulty.degradation.shed_requests),
        static_cast<unsigned long long>(
            result.faulty.degradation.retrain_retries),
        static_cast<unsigned long long>(
            result.faulty.degradation.retrain_timeouts),
        result.checkpoint_recovered ? "true" : "false",
        result.golden_run ? (result.stats_identical ? "true" : "false")
                          : "null",
        ok ? "true" : "false");
    report.cells.push_back(buffer);
    std::printf("%-32s %6.2fs  fires=%-5llu shed=%.4f%s%s\n",
                scenario.name.c_str(), result.faulty_seconds,
                static_cast<unsigned long long>(result.failpoint_fires),
                result.shed_rate, result.golden_run ? "  [golden-compared]" : "",
                ok ? "" : "  [FAILED]");
  }

  report.write(out_path);
  // A scenario breaking its invariants fails the job — the report is a
  // gate, not just an artifact.
  return all_ok ? 0 : 1;
}
