// Figure 10 reproduction: mean response time via Eqs. 3-6 with the paper's
// constants (t_query=1us, t_classify=0.4us, t_hddr=3ms; t_ssdr=100us for
// 32 KB — see DESIGN.md). Paper shape: FIFO improves most (8-11%), ARC
// least (1.5-2.5%).
#include <iostream>

#include "bench/bench_common.h"
#include "storage/latency_model.h"

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 10: response time (Eq. 3-6)", ctx);

  const LatencyModel latency{};
  std::cout << "constants: hit cost = "
            << TablePrinter::fmt(latency.hit_cost_us(), 1)
            << " us, miss penalty = "
            << TablePrinter::fmt(latency.miss_penalty_original_us(), 1)
            << " us (+" << latency.config().t_classify_us
            << " us classify on the proposal path)\n\n";

  const SweepConfig config = bench::default_sweep_config();
  const SweepResult sweep = load_or_run_sweep(ctx.trace, config, ctx.info);
  bench::print_figure(sweep, config, &SweepCell::latency_us, 1);
  bench::print_improvement_summary(sweep, config, &SweepCell::latency_us,
                                   /*lower_is_better=*/true);
  std::cout << "paper shape: FIFO -8..-11%, LRU ~-7.5% headline, ARC "
               "-1.5..-2.5%.\n";
  return 0;
}
