// Figure 5 reproduction: per-day precision / recall / accuracy of the
// deployed classification system (daily retraining at 05:00) under the LRU
// criteria and the LIRS criteria (M_LIRS = M * R_s). Paper shape: LIRS
// prediction accuracy slightly above LRU because its smaller M asks for a
// shorter-horizon prediction.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/classifier_experiments.h"

namespace {

void print_daily(const char* title,
                 const std::vector<otac::DayClassifierMetrics>& days) {
  using otac::TablePrinter;
  TablePrinter table{{"day", "precision", "recall", "accuracy", "decisions"}};
  for (const auto& day : days) {
    table.add_row({std::to_string(day.day),
                   TablePrinter::fmt(day.raw.precision(), 4),
                   TablePrinter::fmt(day.raw.recall(), 4),
                   TablePrinter::fmt(day.raw.accuracy(), 4),
                   std::to_string(day.raw.total())});
  }
  std::cout << "-- " << title << " --\n" << table.to_string() << "\n";
}

}  // namespace

int main() {
  using namespace otac;
  const auto ctx = bench::load_context();
  bench::print_banner("Figure 5: classification system performance", ctx);

  const IntelligentCache system{ctx.trace};
  const std::uint64_t capacity =
      map_paper_gb(10.0, system.total_object_bytes());

  print_daily("LRU criteria",
              run_daily_classification(ctx.trace, PolicyKind::lru, capacity));
  print_daily("LIRS criteria",
              run_daily_classification(ctx.trace, PolicyKind::lirs, capacity));
  std::cout << "paper shape: accuracy stays ~0.8+ across days with daily "
               "retraining; LIRS criteria slightly easier than LRU.\n";
  return 0;
}
