// Supporting micro-benchmark: synthetic-trace generation and next-access
// oracle throughput (the preprocessing every experiment pays once).
#include <benchmark/benchmark.h>

#include "trace/next_access.h"
#include "trace/trace_generator.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace otac;

void BM_TraceGenerate(benchmark::State& state) {
  WorkloadConfig config;
  config.num_owners = 2'000;
  config.num_photos = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const Trace trace = TraceGenerator{config}.generate();
    requests = trace.requests.size();
    benchmark::DoNotOptimize(trace.requests.data());
  }
  state.counters["requests"] = static_cast<double>(requests);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_TraceGenerate)->Arg(10'000)->Arg(40'000)->Arg(160'000);

void BM_NextAccessOracle(benchmark::State& state) {
  WorkloadConfig config;
  config.num_owners = 2'000;
  config.num_photos = 100'000;
  const Trace trace = TraceGenerator{config}.generate();
  for (auto _ : state) {
    const NextAccessInfo info = compute_next_access(trace);
    benchmark::DoNotOptimize(info.next.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_NextAccessOracle);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf{1'000'000, 0.9};
  Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
