// Observability-overhead micro-benchmark: replays the same trace through
// the Simulator with metrics unbound (the default for library users) and
// with the full per-request instrumentation active (latency recorder with
// its precomputed bucket indices — the only per-request work obs adds to
// the replay loop), and reports the ratio.
//
// Acceptance bound for the obs layer: instrumented / bare <= 1.03 on a
// quiet machine. Writes BENCH_obs_overhead.json (override with argv[1]);
// OTAC_SCALE shrinks the trace for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "cachesim/simulator.h"
#include "obs/metrics.h"
#include "storage/latency_model.h"
#include "trace/trace_generator.h"

namespace {

using namespace otac;

struct CellResult {
  std::string json;
  std::string line;
};

CellResult make_result(const std::string& name, std::size_t ops,
                       double seconds) {
  const double ops_per_sec = static_cast<double>(ops) / seconds;
  const double ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  CellResult result;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cell\": \"%s\", \"ops\": %zu, \"ops_per_sec\": %.0f, "
                "\"ns_per_op\": %.2f}",
                name.c_str(), ops, ops_per_sec, ns_per_op);
  result.json = buffer;
  std::snprintf(buffer, sizeof(buffer), "%-18s %12.0f ops/s %10.1f ns/op",
                name.c_str(), ops_per_sec, ns_per_op);
  result.line = buffer;
  return result;
}

double replay_once(const Trace& trace, std::uint64_t capacity,
                   obs::LatencyRecorder* recorder) {
  return bench::best_of(1, [&] {
    const auto policy = make_policy(PolicyKind::lru, capacity);
    AlwaysAdmit admission;
    Simulator sim{trace};
    if (recorder != nullptr) sim.set_latency_recorder(recorder);
    sim.run(*policy, admission);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string{"BENCH_obs_overhead.json"};
  constexpr int kReps = 5;

  WorkloadConfig workload;
  workload.seed = global_seed();
  workload.num_photos =
      static_cast<std::uint32_t>(bench::scaled(100'000));
  workload.num_owners = workload.num_photos / 20 + 1;
  workload.horizon_days = 3.0;
  const Trace trace = TraceGenerator{workload}.generate();
  const std::size_t ops = trace.requests.size();

  double dataset_bytes = 0.0;
  for (const auto& photo : trace.catalog.photos()) {
    dataset_bytes += photo.size_bytes;
  }
  const auto capacity = static_cast<std::uint64_t>(dataset_bytes * 0.015);

  const LatencyModel latency{LatencyConfig{}};
  obs::MetricsRegistry registry;
  obs::LatencyRecorder recorder{
      registry.histogram("latency.request_us",
                         LatencyModel::histogram_bounds_us()),
      latency.request_latency_us(true, /*proposed=*/false),
      latency.request_latency_us(false, /*proposed=*/false)};

  // Interleave the A/B reps (bare, instrumented, bare, ...) so slow drift
  // on a shared machine hits both sides equally instead of biasing the
  // ratio; best-of per side as usual.
  double bare = replay_once(trace, capacity, nullptr);
  double instrumented = replay_once(trace, capacity, &recorder);
  for (int rep = 1; rep < kReps; ++rep) {
    bare = std::min(bare, replay_once(trace, capacity, nullptr));
    instrumented =
        std::min(instrumented, replay_once(trace, capacity, &recorder));
  }

  const double ratio = instrumented / bare;

  bench::Report report;
  report.bench = "obs_overhead";
  report.reps = kReps;
  const CellResult bare_cell = make_result("replay_bare", ops, bare);
  const CellResult inst_cell =
      make_result("replay_instrumented", ops, instrumented);
  std::puts(bare_cell.line.c_str());
  std::puts(inst_cell.line.c_str());
  std::printf("overhead ratio: %.4f (bound: 1.03)\n", ratio);
  report.cells.push_back(bare_cell.json);
  report.cells.push_back(inst_cell.json);
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cell\": \"overhead\", \"ratio\": %.4f, \"bound\": 1.03}",
                ratio);
  report.cells.push_back(buffer);
  report.write(out_path);
  return 0;
}
