# Bench targets are defined from the top-level CMakeLists via include() so
# that ${CMAKE_BINARY_DIR}/bench contains *only* the benchmark executables —
# `for b in build/bench/*; do $b; done` then runs the whole harness cleanly.

function(otac_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_compile_options(${name} PRIVATE ${OTAC_HARDENED_WARNINGS})
  target_link_libraries(${name} PRIVATE otac_experiments)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# One binary per paper table/figure.
otac_add_bench(section2_trace_stats)
otac_add_bench(fig2_capacity_hitrate)
otac_add_bench(fig3_photo_types)
otac_add_bench(fig5_classification_perf)
otac_add_bench(fig6_file_hitrate)
otac_add_bench(fig7_byte_hitrate)
otac_add_bench(fig8_file_writes)
otac_add_bench(fig9_byte_writes)
otac_add_bench(fig10_response_time)
otac_add_bench(table1_classifiers)

# Ablations of the paper's design choices.
otac_add_bench(ablate_retrain)
otac_add_bench(ablate_cost_matrix)
otac_add_bench(ablate_history_table)
otac_add_bench(ablate_tree_budget)
otac_add_bench(ablate_criteria)
otac_add_bench(ablate_deployed_classifier)
otac_add_bench(ablate_feature_sets)

# Plain-main micro-benchmarks: run policy x workload cells on the thread
# pool and emit BENCH_<name>.json reports (see bench/bench_json.h).
otac_add_bench(micro_classifier)
otac_add_bench(micro_cache_ops)
otac_add_bench(micro_sharded_replay)
otac_add_bench(micro_obs_overhead)

# Chaos-schedule replay report (tools/chaos): a behavior gate, not a
# timing contest — BENCH_chaos.json records completion/recovery/shed-rate
# per builtin fault scenario.
otac_add_bench(micro_chaos_replay)
target_link_libraries(micro_chaos_replay PRIVATE otac_chaos)

# Scenario-matrix report (src/scenario): every registered adapter +
# adversarial scenario across Original/Proposal — BENCH_scenarios.json is
# the artifact `scripts/ci.sh scenarios` gates against checked-in
# envelopes (tools/scenario_gate).
otac_add_bench(micro_scenarios)
target_link_libraries(micro_scenarios PRIVATE otac_scenario)

# google-benchmark micro-benchmarks.
function(otac_add_micro name)
  otac_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

otac_add_micro(micro_tracegen)
