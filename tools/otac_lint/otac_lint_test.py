#!/usr/bin/env python3
"""Tests for otac-lint: each fixture must report exactly the expected rule
hits, suppressions must silence, and the rule table must stay complete.

Run directly (`python3 tools/otac_lint/otac_lint_test.py`) or via ctest
(label `lint`).
"""

import contextlib
import io
import subprocess
import sys
import tempfile
import unittest
from collections import Counter
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOL_DIR.parents[1]
LINTER = TOOL_DIR / "otac_lint.py"
FIXTURES = TOOL_DIR / "fixtures"

# fixture file -> exact multiset of expected rule hits
EXPECTED = {
    "wall_clock_violation.cpp": {"wall-clock": 3},
    "ambient_random_violation.cpp": {"ambient-random": 4},
    "unordered_serialization_violation.cpp": {"unordered-serialization": 2},
    "failpoint_registry_violation.cpp": {"failpoint-registry": 1},
    "metric_registry_violation.cpp": {"metric-registry": 2},
    "scenario_registry_violation.cpp": {"scenario-registry": 2},
    "golden_hash_violation.cpp": {"golden-hash": 3},
    "hotpath_alloc_violation.cpp": {"hotpath-alloc": 6},
    "unbounded_retry_violation.cpp": {"bounded-retry": 3},
    "daemon_net_violation.cpp": {"bounded-retry": 2, "hotpath-alloc": 3},
    "header_hygiene_violation.h": {"header-hygiene": 2},
    "unknown_suppression_violation.cpp": {"unknown-suppression": 3},
    "allow_pragma_clean.cpp": {},
}

ALL_RULES = {
    "wall-clock",
    "ambient-random",
    "unordered-serialization",
    "failpoint-registry",
    "metric-registry",
    "scenario-registry",
    "golden-hash",
    "hotpath-alloc",
    "bounded-retry",
    "header-hygiene",
    "unknown-suppression",
}


def run_linter(*args: str) -> subprocess.CompletedProcess:
    return run_linter_at(REPO_ROOT, *args)


def run_linter_at(root: Path, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), *args],
        capture_output=True, text=True, check=False)


def rule_hits(stdout: str) -> Counter:
    """Parse `path:line: [rule] message` lines into a rule multiset."""
    hits: Counter = Counter()
    for line in stdout.splitlines():
        if "] " in line and ": [" in line:
            rule = line.split(": [", 1)[1].split("]", 1)[0]
            hits[rule] += 1
    return hits


class FixtureTest(unittest.TestCase):
    def test_every_rule_has_a_violation_fixture(self):
        covered = set()
        for expected in EXPECTED.values():
            covered.update(expected)
        self.assertEqual(covered, ALL_RULES,
                         "each rule needs a fixture exercising it")

    def test_fixtures_report_exactly_the_expected_hits(self):
        for name, expected in EXPECTED.items():
            with self.subTest(fixture=name):
                result = run_linter(str(FIXTURES / name))
                self.assertEqual(rule_hits(result.stdout), Counter(expected),
                                 f"unexpected report for {name}:\n"
                                 f"{result.stdout}")
                self.assertEqual(result.returncode, 1 if expected else 0)

    def test_no_stale_fixture_expectations(self):
        on_disk = {p.name for p in FIXTURES.iterdir()
                   if p.suffix in {".h", ".cpp"}}
        self.assertEqual(on_disk, set(EXPECTED),
                         "fixtures/ and EXPECTED out of sync")

    def test_list_rules_names_every_rule(self):
        result = run_linter("--list-rules")
        self.assertEqual(result.returncode, 0)
        listed = {line.split(":", 1)[0]
                  for line in result.stdout.splitlines() if ":" in line}
        self.assertEqual(listed, ALL_RULES)

    def test_violation_lines_point_at_marked_hits(self):
        # Fixture authors mark hits with `// hit` comments; the linter must
        # agree on the line numbers (pragma scanning uses raw lines, so the
        # marks themselves never suppress anything).
        fixture = FIXTURES / "ambient_random_violation.cpp"
        marked = {i for i, text in
                  enumerate(fixture.read_text().splitlines(), start=1)
                  if "// hit" in text}
        result = run_linter(str(fixture))
        reported = {int(line.split(":")[1])
                    for line in result.stdout.splitlines()
                    if line.startswith("tools/")}
        self.assertEqual(reported, marked)

    def test_clean_tree(self):
        # The invariant the CI gate relies on: src/, bench/, examples/ are
        # lint-clean at head, and so are tools/ and tests/ under the
        # determinism subset.
        result = run_linter()
        self.assertEqual(result.returncode, 0,
                         f"tree not lint-clean:\n{result.stdout}")


class PragmaEdgeCaseTest(unittest.TestCase):
    """Suppression-pragma scope semantics, pinned line by line: a pragma
    covers exactly its own line and the one directly below — stacking
    chains through adjacent pragma lines, a blank line breaks the chain,
    and a trailing pragma at end-of-file must not crash the scanner."""

    def _lint_snippet(self, text: str) -> Counter:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snippet.cpp"
            path.write_text(text)
            result = run_linter_at(Path(tmp), "snippet.cpp")
            return rule_hits(result.stdout)

    def test_stacked_allow_lines_chain_to_the_statement(self):
        hits = self._lint_snippet(
            "// otac-lint: allow(wall-clock)\n"
            "// otac-lint: allow(wall-clock)\n"
            "long stacked = time(0);\n")
        self.assertEqual(dict(hits), {})

    def test_pragma_reaches_only_one_line_down(self):
        hits = self._lint_snippet(
            "// otac-lint: allow(wall-clock)\n"
            "int pad = 0;\n"
            "long beyond = time(0);\n")
        self.assertEqual(dict(hits), {"wall-clock": 1})

    def test_blank_line_breaks_the_suppression(self):
        hits = self._lint_snippet(
            "// otac-lint: allow(wall-clock)\n"
            "\n"
            "long after_blank = time(0);\n")
        self.assertEqual(dict(hits), {"wall-clock": 1})

    def test_multiple_rules_in_one_pragma(self):
        hits = self._lint_snippet(
            "// otac-lint: allow(wall-clock, ambient-random)\n"
            "long both = time(0) + rand();\n")
        self.assertEqual(dict(hits), {})

    def test_pragma_on_last_line_without_trailing_newline(self):
        hits = self._lint_snippet(
            "long last = time(0);  // otac-lint: allow(wall-clock)")
        self.assertEqual(dict(hits), {})

    def test_dangling_pragma_at_eof_suppresses_nothing_and_no_crash(self):
        hits = self._lint_snippet(
            "long hit = time(0);\n"
            "// otac-lint: allow(wall-clock)")
        self.assertEqual(dict(hits), {"wall-clock": 1})


class AuxTreeTest(unittest.TestCase):
    """Default runs sweep tools/ and tests/ with the determinism rules
    (wall-clock, ambient-random, unknown-suppression) only; fixture
    directories are exempt, and the audited wall-clock allowlist
    (AUX_WALLCLOCK_ALLOWLIST) exempts named files."""

    def _make_tree(self, root: Path) -> None:
        (root / "src").mkdir()
        (root / "tools" / "gate").mkdir(parents=True)
        (root / "tests").mkdir()
        (root / "tools" / "gate" / "g.cpp").write_text(
            "int g() { return rand(); }\n")
        (root / "tests" / "t.cpp").write_text(
            "auto t = std::chrono::system_clock::now();\n")
        # A registry-family violation: out of scope for the aux sweep
        # (the full rule set stays src/bench/examples-only by default).
        (root / "tests" / "m.cpp").write_text(
            'void f(Metrics& m) { m.counter("not.registered"); }\n')
        # Violation fixtures under tools/ are skipped wholesale.
        (root / "tools" / "gate" / "fixtures").mkdir()
        (root / "tools" / "gate" / "fixtures" / "bad.cpp").write_text(
            "int b() { return rand(); }\n")

    def test_aux_dirs_scanned_with_determinism_rules_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            self._make_tree(root)
            result = run_linter_at(root)
            self.assertEqual(result.returncode, 1)
            self.assertEqual(dict(rule_hits(result.stdout)),
                             {"ambient-random": 1, "wall-clock": 1})

    def test_aux_wallclock_allowlist_exempts_audited_files(self):
        sys.path.insert(0, str(TOOL_DIR))
        try:
            import otac_lint
        finally:
            sys.path.pop(0)
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            self._make_tree(root)
            saved = otac_lint.AUX_WALLCLOCK_ALLOWLIST
            otac_lint.AUX_WALLCLOCK_ALLOWLIST = {"tests/t.cpp"}
            try:
                stdout = io.StringIO()
                with contextlib.redirect_stdout(stdout), \
                        contextlib.redirect_stderr(io.StringIO()):
                    code = otac_lint.main(["--root", str(root)])
            finally:
                otac_lint.AUX_WALLCLOCK_ALLOWLIST = saved
            self.assertEqual(code, 1)
            self.assertEqual(dict(rule_hits(stdout.getvalue())),
                             {"ambient-random": 1})

    def test_unknown_suppression_applies_in_aux_tree(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            (root / "tools").mkdir()
            (root / "tools" / "g.cpp").write_text(
                "// otac-lint: allow(wall-clok)\n"
                "int g() { return 0; }\n")
            result = run_linter_at(root)
            self.assertEqual(dict(rule_hits(result.stdout)),
                             {"unknown-suppression": 1})


if __name__ == "__main__":
    unittest.main()
