#!/usr/bin/env python3
"""Tests for otac-lint: each fixture must report exactly the expected rule
hits, suppressions must silence, and the rule table must stay complete.

Run directly (`python3 tools/otac_lint/otac_lint_test.py`) or via ctest
(label `lint`).
"""

import subprocess
import sys
import unittest
from collections import Counter
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOL_DIR.parents[1]
LINTER = TOOL_DIR / "otac_lint.py"
FIXTURES = TOOL_DIR / "fixtures"

# fixture file -> exact multiset of expected rule hits
EXPECTED = {
    "wall_clock_violation.cpp": {"wall-clock": 3},
    "ambient_random_violation.cpp": {"ambient-random": 4},
    "unordered_serialization_violation.cpp": {"unordered-serialization": 2},
    "failpoint_registry_violation.cpp": {"failpoint-registry": 1},
    "metric_registry_violation.cpp": {"metric-registry": 2},
    "scenario_registry_violation.cpp": {"scenario-registry": 2},
    "golden_hash_violation.cpp": {"golden-hash": 3},
    "hotpath_alloc_violation.cpp": {"hotpath-alloc": 6},
    "unbounded_retry_violation.cpp": {"bounded-retry": 3},
    "daemon_net_violation.cpp": {"bounded-retry": 2, "hotpath-alloc": 3},
    "header_hygiene_violation.h": {"header-hygiene": 2},
    "allow_pragma_clean.cpp": {},
}

ALL_RULES = {
    "wall-clock",
    "ambient-random",
    "unordered-serialization",
    "failpoint-registry",
    "metric-registry",
    "scenario-registry",
    "golden-hash",
    "hotpath-alloc",
    "bounded-retry",
    "header-hygiene",
}


def run_linter(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(REPO_ROOT), *args],
        capture_output=True, text=True, check=False)


def rule_hits(stdout: str) -> Counter:
    """Parse `path:line: [rule] message` lines into a rule multiset."""
    hits: Counter = Counter()
    for line in stdout.splitlines():
        if "] " in line and ": [" in line:
            rule = line.split(": [", 1)[1].split("]", 1)[0]
            hits[rule] += 1
    return hits


class FixtureTest(unittest.TestCase):
    def test_every_rule_has_a_violation_fixture(self):
        covered = set()
        for expected in EXPECTED.values():
            covered.update(expected)
        self.assertEqual(covered, ALL_RULES,
                         "each rule needs a fixture exercising it")

    def test_fixtures_report_exactly_the_expected_hits(self):
        for name, expected in EXPECTED.items():
            with self.subTest(fixture=name):
                result = run_linter(str(FIXTURES / name))
                self.assertEqual(rule_hits(result.stdout), Counter(expected),
                                 f"unexpected report for {name}:\n"
                                 f"{result.stdout}")
                self.assertEqual(result.returncode, 1 if expected else 0)

    def test_no_stale_fixture_expectations(self):
        on_disk = {p.name for p in FIXTURES.iterdir()
                   if p.suffix in {".h", ".cpp"}}
        self.assertEqual(on_disk, set(EXPECTED),
                         "fixtures/ and EXPECTED out of sync")

    def test_list_rules_names_every_rule(self):
        result = run_linter("--list-rules")
        self.assertEqual(result.returncode, 0)
        listed = {line.split(":", 1)[0]
                  for line in result.stdout.splitlines() if ":" in line}
        self.assertEqual(listed, ALL_RULES)

    def test_violation_lines_point_at_marked_hits(self):
        # Fixture authors mark hits with `// hit` comments; the linter must
        # agree on the line numbers (pragma scanning uses raw lines, so the
        # marks themselves never suppress anything).
        fixture = FIXTURES / "ambient_random_violation.cpp"
        marked = {i for i, text in
                  enumerate(fixture.read_text().splitlines(), start=1)
                  if "// hit" in text}
        result = run_linter(str(fixture))
        reported = {int(line.split(":")[1])
                    for line in result.stdout.splitlines()
                    if line.startswith("tools/")}
        self.assertEqual(reported, marked)

    def test_clean_tree(self):
        # The invariant the CI gate relies on: src/, bench/, examples/ are
        # lint-clean at head.
        result = run_linter()
        self.assertEqual(result.returncode, 0,
                         f"tree not lint-clean:\n{result.stdout}")


if __name__ == "__main__":
    unittest.main()
