// Fixture: failpoint site using a name missing from the central registry.
// Expected hits: failpoint-registry x1.
#include "util/failpoint.h"

namespace otac_fixture {

void risky_write() {
  OTAC_FAILPOINT_THROW("fixture.not.in.registry");  // hit 1
  // A registered name and the reserved test. prefix both pass.
  OTAC_FAILPOINT_THROW("checkpoint.write.crash");
  OTAC_FAILPOINT_THROW("test.synthetic");
}

}  // namespace otac_fixture
