// Fixture: the daemon-worker-shaped violations the net coverage of
// hotpath-alloc and bounded-retry exists to catch — an accept/read loop
// with no shutdown predicate, and per-request heap traffic inside the
// gather/serve loop. Opted into both file sets via pragma, the same way
// src/net/daemon.cpp is listed in HOTPATH_FILES and RETRY_PATH_FILES.
// Expected hits: bounded-retry x2, hotpath-alloc x3.
// otac-lint: retry-path
// otac-lint: hotpath-file

#include <cstdint>
#include <memory>
#include <vector>

namespace otac_fixture {

struct Frame {
  std::uint64_t sequence = 0;
};

int accept_connection(int listen_fd);
bool read_frame(int fd, Frame* frame);
void serve(const Frame& frame);

// An acceptor that can never be asked to stop: a persistent fault (or a
// plain shutdown request) leaves this thread spinning forever.
void acceptor_loop(int listen_fd) {
  while (true) {  // hit 1: bounded-retry
    const int fd = accept_connection(listen_fd);
    if (fd < 0) continue;
  }
}

// Same defect in the per-connection reader: the loop condition must be
// the stop flag / EOF, not an unconditional spin.
void reader_loop(int fd) {
  for (;;) {  // hit 2: bounded-retry
    Frame frame;
    if (!read_frame(fd, &frame)) break;
    serve(frame);
  }
}

// The worker gather loop runs once per served request: a fresh batch
// buffer or a growing reply vector here is a per-request allocation the
// daemon's zero-allocation contract forbids (pre-size at construction).
void worker_loop(int fd, bool* stop) {
  std::vector<Frame> replies;
  while (!*stop) {
    auto batch = std::make_unique<Frame[]>(64);  // hit 3: hotpath-alloc
    if (!read_frame(fd, batch.get())) return;
    replies.push_back(batch[0]);  // hit 4: hotpath-alloc
    replies.resize(0);            // hit 5: hotpath-alloc
  }
}

// Cold sites (construction, teardown) suppress with an allow() pragma
// stating why, exactly as src/net/daemon.cpp does.
std::unique_ptr<Frame> make_scratch() {
  // otac-lint: allow(hotpath-alloc) one-time construction, not per-request
  return std::make_unique<Frame>();
}

}  // namespace otac_fixture
