// Fixture: every unconditional-loop spelling the bounded-retry rule
// bans, in a file opted into the retry-path set via pragma.
// Expected hits: bounded-retry x3.
// otac-lint: retry-path

namespace otac_fixture {

bool try_save();

void save_forever() {
  while (true) {  // hit 1
    if (try_save()) return;
  }
}

void save_forever_c_style() {
  while (1) {  // hit 2
    if (try_save()) return;
  }
}

void save_forever_for() {
  for (;;) {  // hit 3
    if (try_save()) return;
  }
}

// A progress-bounded loop suppresses with a pragma stating why.
int seqlock_read(const volatile int* seq) {
  // Bounded by publisher progress, not an attempt budget.
  // otac-lint: allow(bounded-retry)
  for (;;) {
    const int s = *seq;
    if ((s & 1) == 0) return s;
  }
}

// Bounded loops must not trip the pattern: the condition carries the
// attempt budget, and `while (!done)` is a termination flag, not an
// unconditional spin.
bool save_with_budget(int max_retries) {
  bool done = false;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (try_save()) return true;
  }
  while (!done) {
    done = try_save();
  }
  return done;
}

}  // namespace otac_fixture
