// Fixture: unordered-container iteration in a serialization boundary.
// otac-lint: serialization-boundary
// Expected hits: unordered-serialization x2.
#include <cstdint>
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace otac_fixture {

struct Report {
  std::unordered_map<std::string, std::uint64_t> counters_;
  std::unordered_set<std::string> names_;

  void serialize() const {
    for (const auto& [name, value] : counters_) {  // hit 1
      std::cout << name << value;
    }
    for (auto it = names_.begin(); it != names_.end(); ++it) {  // hit 2
      std::cout << *it;
    }
  }

  // Lookup (find/contains against end()) is fine — order never escapes.
  bool has(const std::string& name) const {
    return counters_.find(name) != counters_.end();
  }
};

}  // namespace otac_fixture
