// Fixture: every banned ambient-time source the wall-clock rule knows.
// Expected hits: wall-clock x3.
#include <chrono>
#include <ctime>

namespace otac_fixture {

long ambient_now() {
  const auto tp = std::chrono::system_clock::now();  // hit 1
  std::time_t stamp = time(nullptr);                 // hit 2
  struct tm* parts = localtime(&stamp);              // hit 3
  (void)tp;
  (void)parts;
  return stamp;
}

// Monotonic timing is allowed (feeds only *_seconds histograms).
long monotonic_ok() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace otac_fixture
