// Fixture: every allocation/indirection pattern the hotpath-alloc rule
// bans, in a file opted into the hot-path set via pragma.
// Expected hits: hotpath-alloc x6.
// otac-lint: hotpath-file
#include <functional>
#include <memory>
#include <vector>

namespace otac_fixture {

struct Request {
  int id = 0;
};

int serve(std::vector<int>& queue, int value) {
  auto* leaked = new Request{value};                  // hit 1
  auto owned = std::make_unique<Request>(value);      // hit 2
  auto shared = std::make_shared<Request>(value);     // hit 3
  std::function<int(int)> callback = [](int v) {      // hit 4
    return v + 1;
  };
  queue.push_back(value);                             // hit 5
  queue.resize(queue.size() * 2);                     // hit 6
  delete leaked;
  return callback(owned->id + shared->id);
}

// A cold site suppresses with a pragma stating why.
void setup(std::vector<int>& queue, int capacity) {
  // Cold: one-time construction, before the replay loop.
  // otac-lint: allow(hotpath-alloc)
  queue.reserve(static_cast<unsigned long>(capacity));
}

// `renew`/`news_feed` must not trip the word-boundary `new` pattern, and
// "new" inside a string is blanked before matching.
int renew(int news_feed) {
  const char* banner = "allocate new entries here";
  return news_feed + static_cast<int>(sizeof(banner));
}

}  // namespace otac_fixture
