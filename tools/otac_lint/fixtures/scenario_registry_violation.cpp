// Fixture for the scenario-registry rule: scenario::find() must only be
// handed names registered in src/scenario/scenario_names.h. Misspelled or
// unregistered names throw at runtime and silently drop the scenario from
// any matrix that catches the exception.

void lookup_scenarios() {
  (void)otac::scenario::find("flash_crowd");  // registered: clean
  (void)otac::scenario::find("flash_mob");    // hit
  (void)otac::scenario::find("scan_floood");  // hit
  // otac-lint: allow(scenario-registry) — demonstrating suppression
  (void)otac::scenario::find("prototype_scenario_not_yet_registered");
}
