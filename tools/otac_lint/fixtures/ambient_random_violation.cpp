// Fixture: ambient randomness outside util/rng.*.
// Expected hits: ambient-random x4.
#include <cstdlib>
#include <random>

namespace otac_fixture {

int ambient_draw() {
  std::random_device device;                          // hit 1
  std::mt19937_64 engine(device());                   // hit 2
  std::uniform_int_distribution<int> dist(0, 9);      // hit 3
  return dist(engine) + rand();                       // hit 4
}

}  // namespace otac_fixture
