// Fixture: header with no #pragma once and a namespace injection.
// Expected hits: header-hygiene x2 (missing pragma, using namespace).
#include <string>

using namespace std;  // hit

namespace otac_fixture {

inline string fixture_name() { return "header_hygiene"; }

}  // namespace otac_fixture
