// Fixture: suppression pragmas naming rules that do not exist. Each one
// silently suppresses nothing, so the linter must reject the pragma
// itself rather than let the typo mask a future violation.

// otac-lint: allow-file(wall-clok)

namespace fixture {

// otac-lint: allow(hotpath-aloc)
inline int misspelled_single() { return 1; }

// A pragma mixing one real rule with one typo: only the typo is flagged.
// otac-lint: allow(wall-clock, ambient-randomness)
inline int misspelled_among_valid() { return 2; }

}  // namespace fixture
