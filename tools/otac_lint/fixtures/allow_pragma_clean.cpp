// Fixture: every violation here carries an allow pragma — the linter must
// report nothing. Expected hits: none.
#include <chrono>
#include <cstdlib>

namespace otac_fixture {

long suppressed_wall_clock() {
  // Same-line suppression.
  return std::chrono::system_clock::now()  // otac-lint: allow(wall-clock)
      .time_since_epoch()
      .count();
}

int suppressed_random() {
  // Line-above suppression.
  // otac-lint: allow(ambient-random)
  return rand();
}

}  // namespace otac_fixture
