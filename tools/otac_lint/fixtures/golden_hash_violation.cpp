// Fixture: non-FNV hashes where golden sequences are built.
// Expected hits: golden-hash x3 (the crc32 include itself counts — the
// dependency is the violation, not just the call).
#include <cstdint>
#include <functional>
#include <string>

#include "util/crc32.h"  // hit 1

namespace otac_fixture {

std::uint64_t sequence_digest(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);  // hit 2
  return h ^ otac::crc32(key);                          // hit 3
}

}  // namespace otac_fixture
