// Fixture: metric literal missing from the central registry.
// Expected hits: metric-registry x2.
#include "obs/metrics.h"

namespace otac_fixture {

void bind_metrics(otac::obs::MetricsRegistry& registry) {
  auto* typo = registry.counter("cache.hit");            // hit 1 (not cache.hits)
  registry.set_gauge("cache.unreviewed_bytes", 1.0);     // hit 2
  auto* fine = registry.counter("cache.hits");           // registered
  (void)typo;
  (void)fine;
}

}  // namespace otac_fixture
