#!/usr/bin/env python3
"""otac-lint: project-invariant linter for the otacache tree.

The reproduction's headline claims (byte-identical golden evictions,
shards=1 bit-identity, seed-deterministic RunResults) rest on invariants
no compiler checks: no ambient time or randomness on the replay path, no
iteration over unordered containers feeding serialized output, failpoint
and metric names drawn from single central registries, one hash function
for golden sequences, and basic header hygiene. This tool makes those
invariants machine-enforced.

Usage:
    otac_lint.py [--root DIR] [--list-rules] [paths...]

With no paths, lints src/, bench/, and examples/ under --root (default:
the repository root containing this tool) with every rule, plus tools/
and tests/ with the determinism rules (wall-clock, ambient-random,
unknown-suppression) — gate tooling and tests must obey the same
no-ambient-time/no-ambient-randomness contract as the product tree, with
audited exceptions listed in AUX_WALLCLOCK_ALLOWLIST. Violation-fixture
directories (any path component named `fixtures`) are skipped in the
aux tree. Paths may be files or directories; explicitly named paths get
every rule. Exit status: 0 clean, 1 violations found, 2 usage error.

Suppression pragmas (all rules are suppressible; a suppression should say
why in a neighbouring comment):

    // otac-lint: allow(<rule>[, <rule>...])       same line or line above
    // otac-lint: allow-file(<rule>[, <rule>...])  whole file
    // otac-lint: serialization-boundary           mark file for the
                                                   unordered-serialization
                                                   rule (in addition to the
                                                   built-in boundary list)
    // otac-lint: hotpath-file                     mark file for the
                                                   hotpath-alloc rule (in
                                                   addition to the built-in
                                                   hot-path list)
    // otac-lint: retry-path                       mark file for the
                                                   bounded-retry rule (in
                                                   addition to the built-in
                                                   retry-path list)

Adding a rule: subclass Rule, implement check(), append an instance to
RULES, add a fixture in tools/otac_lint/fixtures/ plus an expectation in
otac_lint_test.py, and document it in DESIGN.md §11.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".cpp"}
DEFAULT_SCAN_DIRS = ("src", "bench", "examples")

# The aux tree: gate tooling and tests. Scanned by default with the
# determinism subset below — a load generator that timestamps requests
# from the wall clock or a test that seeds from std::random_device
# breaks reproducibility exactly like product code would.
AUX_SCAN_DIRS = ("tools", "tests")
AUX_RULES = ("wall-clock", "ambient-random", "unknown-suppression")

# Audited aux-tree wall-clock exceptions: rel paths here may reference
# ambient time (e.g. a future loadgen feature stamping report metadata
# with a capture date). Every entry must say why in a comment. Currently
# empty on purpose: the loadgen and daemon tooling measure with
# std::chrono::steady_clock, which the wall-clock rule already permits.
AUX_WALLCLOCK_ALLOWLIST: set[str] = set()

FAILPOINT_REGISTRY = "src/util/failpoint_names.h"
METRIC_REGISTRY = "src/obs/metric_names.h"
SCENARIO_REGISTRY = "src/scenario/scenario_names.h"

# Files whose output is serialized, hashed, or golden-pinned: checkpoint
# bytes, run reports, bench JSON, trace files, eviction-sequence hashes.
# Iteration order inside these files is contractual. Files can also opt in
# with the serialization-boundary pragma.
SERIALIZATION_BOUNDARY_FILES = {
    "bench/bench_json.h",
    "src/cachesim/cache_stats.h",
    "src/core/checkpoint.cpp",
    "src/core/run_metrics.cpp",
    "src/obs/metrics.cpp",
    "src/obs/report.cpp",
    "src/trace/trace_io.cpp",
}

# Translation units containing the per-request replay loops: every request
# of a 25M-op replay crosses these, so a stray allocation or type-erased
# call is a systematic throughput regression, not noise. Cold sites inside
# them (setup, retrain barriers, report assembly) carry allow() pragmas.
HOTPATH_FILES = {
    "src/core/serving_core.cpp",
    "src/core/sharded_cache.cpp",
    "src/ml/compiled_tree.cpp",
    "src/net/daemon.cpp",
    "src/net/protocol.cpp",
}

# Files on the serving / checkpoint retry paths (DESIGN.md §13): every
# retry loop here must be bounded by an attempt budget (util/backoff.h),
# because an unbounded `while (true) retry();` turns a persistent fault
# into a hang that the watchdog and chaos suite exist to prevent. Files
# can also opt in with the retry-path pragma.
RETRY_PATH_FILES = {
    "src/core/checkpoint.cpp",
    "src/core/model_slot.h",
    "src/core/shard_queue.cpp",
    "src/core/sharded_cache.cpp",
    "src/core/trainer_watchdog.cpp",
    "src/net/daemon.cpp",
    "src/net/loadgen.cpp",
    "src/net/protocol.cpp",
    "src/net/socket.cpp",
    "src/util/backoff.h",
}

ALLOW_RE = re.compile(r"otac-lint:\s*allow\(([a-z0-9\-,\s]+)\)")
ALLOW_FILE_RE = re.compile(r"otac-lint:\s*allow-file\(([a-z0-9\-,\s]+)\)")
BOUNDARY_PRAGMA_RE = re.compile(r"otac-lint:\s*serialization-boundary")
HOTPATH_PRAGMA_RE = re.compile(r"otac-lint:\s*hotpath-file")
RETRY_PRAGMA_RE = re.compile(r"otac-lint:\s*retry-path")


def strip_comments(text: str) -> str:
    """Replace comment bodies with spaces (string literals are preserved,
    newlines kept so offsets map back to line numbers)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c)
        else:  # char
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """One scanned file: raw text for pragmas, comment-stripped text for
    rule matching, and the suppression state."""

    def __init__(self, root: Path, path: Path):
        self.abs_path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.raw_text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw_text.splitlines()
        self.code_text = strip_comments(self.raw_text)
        self.code_lines = self.code_text.splitlines()
        # Like code_text but with string-literal *contents* blanked too —
        # for rules that match identifiers, so "response time (ms)" in a
        # banner string cannot trip the wall-clock pattern. Rules that
        # check registered names keep using code_text.
        self.ident_text = re.sub(r'"(?:[^"\\\n]|\\.)*"',
                                 lambda m: '"' + " " * (len(m.group(0)) - 2)
                                 + '"',
                                 self.code_text)
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}
        self.boundary_pragma = False
        self.hotpath_pragma = False
        self.retry_pragma = False
        for lineno, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_FILE_RE.search(line)
            if m:
                self.file_allows.update(_split_rules(m.group(1)))
            m = ALLOW_RE.search(line)
            if m:
                rules = _split_rules(m.group(1))
                # A pragma suppresses its own line and the line below, so
                # it can sit above the flagged statement.
                self.line_allows.setdefault(lineno, set()).update(rules)
                self.line_allows.setdefault(lineno + 1, set()).update(rules)
            if BOUNDARY_PRAGMA_RE.search(line):
                self.boundary_pragma = True
            if HOTPATH_PRAGMA_RE.search(line):
                self.hotpath_pragma = True
            if RETRY_PRAGMA_RE.search(line):
                self.retry_pragma = True

    def allowed(self, rule: str, lineno: int) -> bool:
        if rule in self.file_allows:
            return True
        return rule in self.line_allows.get(lineno, set())

    def line_of_offset(self, offset: int) -> int:
        return self.code_text.count("\n", 0, offset) + 1

    def is_header(self) -> bool:
        return self.abs_path.suffix == ".h"

    def is_serialization_boundary(self) -> bool:
        return (self.rel_path in SERIALIZATION_BOUNDARY_FILES
                or self.boundary_pragma)

    def is_hotpath_file(self) -> bool:
        return self.rel_path in HOTPATH_FILES or self.hotpath_pragma

    def is_retry_path_file(self) -> bool:
        return self.rel_path in RETRY_PATH_FILES or self.retry_pragma


def _split_rules(spec: str) -> set[str]:
    return {r.strip() for r in spec.split(",") if r.strip()}


class Rule:
    name = ""
    summary = ""

    def check(self, ctx: FileContext) -> list[Violation]:
        raise NotImplementedError

    def _hit(self, ctx: FileContext, lineno: int, message: str) -> Violation:
        return Violation(ctx.rel_path, lineno, self.name, message)


class WallClockRule(Rule):
    """Replay output must be a pure function of (trace, config, seed);
    ambient time sources break that. Monotonic steady_clock is allowed —
    it only feeds the *_seconds wall-clock histograms, which reports and
    RunResult identity explicitly exclude (core/run_metrics.h)."""

    name = "wall-clock"
    summary = ("no std::chrono::system_clock / time() / clock() / "
               "localtime() / gmtime(); sim time and steady_clock only")

    PATTERNS = [
        (re.compile(r"std::chrono::system_clock"),
         "std::chrono::system_clock"),
        (re.compile(r"(?<![A-Za-z0-9_])(?:std::|::)?"
                    r"(time|clock|localtime|gmtime|ctime|strftime)\s*\("),
         None),
    ]

    def check(self, ctx: FileContext) -> list[Violation]:
        out = []
        for pattern, label in self.PATTERNS:
            for m in pattern.finditer(ctx.ident_text):
                lineno = ctx.line_of_offset(m.start())
                if ctx.allowed(self.name, lineno):
                    continue
                what = label or f"{m.group(1)}()"
                out.append(self._hit(
                    ctx, lineno,
                    f"ambient wall-clock source {what}; replay paths use "
                    f"simulated time (util/sim_time.h), timing metrics use "
                    f"std::chrono::steady_clock"))
        return out


class AmbientRandomRule(Rule):
    """All randomness flows from util/rng.h (SplitMix64, explicit seeds).
    std::random_device & friends reseed from the environment and vary
    across libstdc++ versions — both break seed-determinism."""

    name = "ambient-random"
    summary = ("no rand()/srand()/std::random_device/std::mt19937/<random> "
               "engines or distributions outside util/rng.*")

    EXEMPT_FILES = {"src/util/rng.h", "src/util/rng.cpp"}
    PATTERN = re.compile(
        r"(?<![A-Za-z0-9_])(?:std::)?"
        r"(rand\s*\(|srand\s*\(|random_device|mt19937(?:_64)?|"
        r"minstd_rand0?|default_random_engine|knuth_b|ranlux\w+|"
        r"\w+_distribution\s*<)")

    def check(self, ctx: FileContext) -> list[Violation]:
        if ctx.rel_path in self.EXEMPT_FILES:
            return []
        out = []
        for m in self.PATTERN.finditer(ctx.ident_text):
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                f"ambient randomness '{m.group(1).strip()}'; use the seeded "
                f"Rng in util/rng.h so replays stay deterministic"))
        return out


class UnorderedSerializationRule(Rule):
    """In files that feed serialization or golden hashes, iterating a
    std::unordered_{map,set} makes output depend on hash-table layout
    (libstdc++ version, insertion history). Sort keys at the boundary or
    use the deterministic open-addressing tables in util/open_hash.h."""

    name = "unordered-serialization"
    summary = ("no range-for / begin() iteration over std::unordered_map/"
               "set in serialization-boundary files; sort first or use "
               "util/open_hash.h")

    DECL_RE = re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
        r"[^;{}()]*?>\s+(\w+)\s*[;{=]")

    def check(self, ctx: FileContext) -> list[Violation]:
        if not ctx.is_serialization_boundary():
            return []
        names = set(self.DECL_RE.findall(ctx.ident_text))
        if not names:
            return []
        out = []
        alt = "|".join(re.escape(n) for n in sorted(names))
        usage = re.compile(
            r"(?:for\s*\([^;)]*:\s*(?:this->)?(" + alt + r")\b)"
            r"|(?:\b(" + alt + r")\s*\.\s*c?begin\s*\()")
        for m in usage.finditer(ctx.ident_text):
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            name = m.group(1) or m.group(2)
            out.append(self._hit(
                ctx, lineno,
                f"iteration over unordered container '{name}' in a "
                f"serialization-boundary file; iteration order is not "
                f"deterministic — sort keys first or use util/open_hash.h"))
        return out


class FailpointRegistryRule(Rule):
    """Failpoint names live in src/util/failpoint_names.h; a site using an
    unlisted name would register fine and silently never be scriptable by
    name from the central table."""

    name = "failpoint-registry"
    summary = ("every OTAC_FAILPOINT_ACTIVE/THROW string literal must "
               "appear in util/failpoint_names.h")

    # The macro definitions themselves take an unquoted parameter.
    EXEMPT_FILES = {"src/util/failpoint.h"}
    SITE_RE = re.compile(
        r'OTAC_FAILPOINT_(?:ACTIVE|THROW)\s*\(\s*"([^"]+)"')

    def __init__(self, known_names: set[str], test_prefix: str = "test."):
        self.known_names = known_names
        self.test_prefix = test_prefix

    def check(self, ctx: FileContext) -> list[Violation]:
        if ctx.rel_path in self.EXEMPT_FILES:
            return []
        out = []
        for m in self.SITE_RE.finditer(ctx.code_text):
            name = m.group(1)
            if name in self.known_names or name.startswith(self.test_prefix):
                continue
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                f'failpoint "{name}" is not listed in '
                f"{FAILPOINT_REGISTRY}; add it to the central registry"))
        return out


class MetricRegistryRule(Rule):
    """Metric names live in src/obs/metric_names.h; unlisted names drift
    into reports and dashboards unreviewed."""

    name = "metric-registry"
    summary = ("every literal metric name bound via counter()/gauge()/"
               "histogram()/set()/set_gauge() must appear in "
               "obs/metric_names.h")

    SITE_RE = re.compile(
        r'(?:\.|->)\s*(?:counter|gauge|histogram|set|set_gauge)\s*'
        r'\(\s*"([^"]+)"')

    def __init__(self, known_names: set[str]):
        self.known_names = known_names

    def check(self, ctx: FileContext) -> list[Violation]:
        out = []
        for m in self.SITE_RE.finditer(ctx.code_text):
            name = m.group(1)
            if name in self.known_names:
                continue
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                f'metric "{name}" is not listed in {METRIC_REGISTRY}; '
                f"add it to the central registry"))
        return out


class ScenarioRegistryRule(Rule):
    """Scenario names live in src/scenario/scenario_names.h; a
    scenario::find("...") call naming anything else only fails at runtime
    (std::invalid_argument), and a misspelled name in a bench or example
    silently drops that scenario from its matrix. Catch it at lint time."""

    name = "scenario-registry"
    summary = ('every scenario::find("...") string literal must appear in '
               "scenario/scenario_names.h")

    SITE_RE = re.compile(r'scenario\s*::\s*find\s*\(\s*"([^"]+)"')

    def __init__(self, known_names: set[str]):
        self.known_names = known_names

    def check(self, ctx: FileContext) -> list[Violation]:
        out = []
        for m in self.SITE_RE.finditer(ctx.code_text):
            name = m.group(1)
            if name in self.known_names:
                continue
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                f'scenario "{name}" is not listed in {SCENARIO_REGISTRY}; '
                f"register it (name, spec, and gate envelopes) before "
                f"referencing it"))
        return out


class GoldenHashRule(Rule):
    """util/fnv.h is the one hash for golden sequences: std::hash is
    implementation-defined (goldens would differ across standard
    libraries), and crc32 is reserved for checkpoint integrity."""

    name = "golden-hash"
    summary = ("util/fnv.h is the only hash for golden sequences: no "
               "std::hash, crc32 only in util/crc32.*, core/checkpoint.*, "
               "and net/protocol.cpp")

    CRC_EXEMPT = {
        "src/util/crc32.h",
        "src/util/crc32.cpp",
        "src/core/checkpoint.h",
        "src/core/checkpoint.cpp",
        "src/net/protocol.cpp",
    }
    STD_HASH_RE = re.compile(r"\bstd\s*::\s*hash\s*<")
    CRC_RE = re.compile(r'(?<![A-Za-z0-9_])crc32\s*\(|"util/crc32\.h"')

    def check(self, ctx: FileContext) -> list[Violation]:
        out = []
        for m in self.STD_HASH_RE.finditer(ctx.ident_text):
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                "std::hash is implementation-defined; golden/behavior-"
                "identity hashes must use util/fnv.h"))
        if ctx.rel_path not in self.CRC_EXEMPT:
            for m in self.CRC_RE.finditer(ctx.code_text):
                lineno = ctx.line_of_offset(m.start())
                if ctx.allowed(self.name, lineno):
                    continue
                out.append(self._hit(
                    ctx, lineno,
                    "crc32 is reserved for checkpoint integrity "
                    "(core/checkpoint.*); golden sequences use util/fnv.h"))
        return out


class HotpathAllocRule(Rule):
    """The admission path's zero-allocation contract (DESIGN.md §12): the
    per-request replay loops pre-size every buffer at construction, so any
    heap traffic that appears later is a regression the throughput benches
    will pay for on every one of ~25M requests. Cold sites inside hot-path
    translation units (setup, retrain barriers, report assembly) suppress
    with an allow() pragma stating why they are cold."""

    name = "hotpath-alloc"
    summary = ("no new/make_unique/make_shared, std::function, or "
               "vector-growth calls (push_back/emplace_back/resize/reserve) "
               "in hot-path files; cold sites carry allow() pragmas")

    PATTERNS = [
        (re.compile(r"(?<![A-Za-z0-9_])new(?![A-Za-z0-9_])"),
         "operator new"),
        (re.compile(r"\bstd\s*::\s*(make_unique|make_shared)\s*[<(]"),
         "heap allocation"),
        (re.compile(r"\bstd\s*::\s*function\s*<"),
         "type-erased std::function (allocates and indirects)"),
        (re.compile(r"(?:\.|->)\s*"
                    r"(push_back|emplace_back|resize|reserve)\s*\("),
         "container growth"),
    ]

    def check(self, ctx: FileContext) -> list[Violation]:
        if not ctx.is_hotpath_file():
            return []
        out = []
        for pattern, label in self.PATTERNS:
            for m in pattern.finditer(ctx.ident_text):
                lineno = ctx.line_of_offset(m.start())
                if ctx.allowed(self.name, lineno):
                    continue
                what = (m.group(1) if pattern.groups else m.group(0)).strip()
                out.append(self._hit(
                    ctx, lineno,
                    f"{label} '{what}' in a hot-path file; the admission "
                    f"path is zero-allocation — pre-size at construction, "
                    f"or mark a cold site with an allow() pragma"))
        return out


class BoundedRetryRule(Rule):
    """Retry loops on the serving and checkpoint paths must be bounded by
    an attempt budget (util/backoff.h): an unbounded `while (true)
    retry();` turns a persistent fault into a hang, which is exactly the
    failure mode the watchdog and chaos suite (DESIGN.md §13) guard
    against. Loops that are unbounded by design — the seqlock reader in
    core/model_slot.h, whose retry is bounded by publisher progress, not
    an attempt count — suppress with an allow() pragma stating why."""

    name = "bounded-retry"
    summary = ("no unconditional loops (while(true)/while(1)/for(;;)) in "
               "retry-path files; bound retries with an attempt budget "
               "(util/backoff.h)")

    PATTERN = re.compile(
        r"\bwhile\s*\(\s*(?:true|1)\s*\)|\bfor\s*\(\s*;\s*;\s*\)")

    def check(self, ctx: FileContext) -> list[Violation]:
        if not ctx.is_retry_path_file():
            return []
        out = []
        for m in self.PATTERN.finditer(ctx.ident_text):
            lineno = ctx.line_of_offset(m.start())
            if ctx.allowed(self.name, lineno):
                continue
            out.append(self._hit(
                ctx, lineno,
                f"unconditional loop '{m.group(0).strip()}' in a retry-path "
                f"file; retries must be bounded by an attempt budget "
                f"(util/backoff.h), or mark a progress-bounded loop with an "
                f"allow() pragma"))
        return out


class HeaderHygieneRule(Rule):
    """Headers carry #pragma once and never inject namespaces into every
    includer."""

    name = "header-hygiene"
    summary = "headers must use #pragma once and must not 'using namespace'"

    USING_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

    def check(self, ctx: FileContext) -> list[Violation]:
        if not ctx.is_header():
            return []
        out = []
        if "#pragma once" not in ctx.code_text:
            if not ctx.allowed(self.name, 1):
                out.append(self._hit(ctx, 1, "header missing #pragma once"))
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if self.USING_RE.match(line) and not ctx.allowed(self.name,
                                                             lineno):
                out.append(self._hit(
                    ctx, lineno,
                    "'using namespace' in a header leaks into every "
                    "includer; qualify names instead"))
        return out


class UnknownSuppressionRule(Rule):
    """A typo'd rule name inside allow()/allow-file() suppresses nothing —
    and looks exactly like it does, so the masking is invisible in review.
    Reject any pragma naming a rule that does not exist."""

    name = "unknown-suppression"
    summary = ("allow()/allow-file() pragmas may only name rules that "
               "exist (--list-rules); a typo'd suppression masks itself")

    def __init__(self, known_rules: set[str]):
        self.known_rules = known_rules

    def check(self, ctx: FileContext) -> list[Violation]:
        out = []
        for lineno, line in enumerate(ctx.raw_lines, start=1):
            for regex, kind in ((ALLOW_FILE_RE, "allow-file"),
                                (ALLOW_RE, "allow")):
                m = regex.search(line)
                if not m:
                    continue
                for rule_name in sorted(_split_rules(m.group(1))):
                    if rule_name in self.known_rules:
                        continue
                    if ctx.allowed(self.name, lineno):
                        continue
                    out.append(self._hit(
                        ctx, lineno,
                        f"{kind}() pragma names unknown rule "
                        f"'{rule_name}', so it suppresses nothing; "
                        f"see --list-rules for the rule table"))
        return out


def parse_registry_names(root: Path, rel_path: str) -> set[str]:
    """All quoted names inside the registry header's initializer lists
    (comments stripped, so prose examples don't register names)."""
    path = root / rel_path
    if not path.is_file():
        return set()
    code = strip_comments(path.read_text(encoding="utf-8", errors="replace"))
    return set(re.findall(r'"([^"]+)"', code))


def build_rules(root: Path) -> list[Rule]:
    rules: list[Rule] = [
        WallClockRule(),
        AmbientRandomRule(),
        UnorderedSerializationRule(),
        FailpointRegistryRule(parse_registry_names(root, FAILPOINT_REGISTRY)),
        MetricRegistryRule(parse_registry_names(root, METRIC_REGISTRY)),
        ScenarioRegistryRule(parse_registry_names(root, SCENARIO_REGISTRY)),
        GoldenHashRule(),
        HotpathAllocRule(),
        BoundedRetryRule(),
        HeaderHygieneRule(),
    ]
    known = {rule.name for rule in rules} | {UnknownSuppressionRule.name}
    rules.append(UnknownSuppressionRule(known))
    return rules


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    if not paths:
        paths = [d for d in DEFAULT_SCAN_DIRS if (root / d).is_dir()]
    files: list[Path] = []
    for p in paths:
        path = (root / p) if not Path(p).is_absolute() else Path(p)
        if path.is_dir():
            files.extend(f for f in sorted(path.rglob("*"))
                         if f.suffix in CXX_SUFFIXES and f.is_file())
        elif path.is_file():
            files.append(path)
        else:
            print(f"otac-lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def collect_aux_files(root: Path) -> list[Path]:
    """tools/ and tests/ sources, minus violation-fixture directories
    (their whole point is to trip rules)."""
    files: list[Path] = []
    for d in AUX_SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for f in sorted(base.rglob("*")):
            if f.suffix not in CXX_SUFFIXES or not f.is_file():
                continue
            if "fixtures" in f.relative_to(root).parts:
                continue
            files.append(f)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="otac-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: this tool's repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src bench "
                             "examples)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    rules = build_rules(root)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.summary}")
        return 0

    violations: list[Violation] = []
    for path in collect_files(root, args.paths):
        ctx = FileContext(root, path)
        for rule in rules:
            violations.extend(rule.check(ctx))

    # Default runs also sweep the aux tree (tools/, tests/) with the
    # determinism subset; explicitly named paths already got every rule.
    if not args.paths:
        for path in collect_aux_files(root):
            ctx = FileContext(root, path)
            for rule in rules:
                if rule.name not in AUX_RULES:
                    continue
                if (rule.name == "wall-clock"
                        and ctx.rel_path in AUX_WALLCLOCK_ALLOWLIST):
                    continue
                violations.extend(rule.check(ctx))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for violation in violations:
        print(violation)
    if violations:
        print(f"otac-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
