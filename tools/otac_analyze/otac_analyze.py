#!/usr/bin/env python3
"""otac-analyze: whole-program invariant analyzer for the otacache tree.

otac-lint (tools/otac_lint) enforces per-line invariants; this tool
enforces the invariants that only exist *between* files — the ones a
regex over one translation unit cannot see:

  layering   The module dependency DAG. Each src/ module declares the
             modules it may include (ALLOWED_DEPS below); the real
             include graph is extracted from the tree and every edge is
             checked. Back-edges (util including core) and cycles are
             findings, as are quoted includes that resolve to nothing.
             The observed graph is emitted as a DOT artifact (--dot).

  symbols    The hot-path symbol gate. For the designated hot-path
             translation units (HOTPATH_TUS), the *built object files*
             are inspected with nm: every undefined symbol is checked
             against the banned families (operator new, __cxa_throw,
             wall clocks, libc randomness). A reference outside the
             audited allowlist (hotpath_symbols.json) is a finding —
             this closes the gap where line-level lint misses an
             allocation or clock reached through a callee in the same
             TU. Stale allowlist entries are findings too: the audit
             may not rot.

  locks      The lock-discipline pass. Every mutex in src/ must be
             registered in src/core/lock_names.h with a class (hot,
             queue, barrier, io_writer) and a lock-order rank; guard
             scopes on registered mutexes are scanned token-by-token
             for the blocking operations the class forbids (file and
             socket I/O, condition waits/sleeps, trainer fits), with
             unlock()/lock() windows honored, and nested guard
             acquisitions must follow ascending rank.

Usage:
    otac_analyze.py [--root DIR] [--build-dir DIR] [--checks a,b]
                    [--format text|json] [--json-out PATH] [--dot PATH]

Exit status: 0 clean, 1 findings, 2 usage/configuration error (missing
compile database, nm not found, malformed registry or allowlist).

Suppression (say why in a neighbouring comment):
    // otac-analyze: allow(<kind>[, <kind>...])   same line or line above

Finding kinds: layer-dep, layer-cycle, include-unresolved, symbol-banned,
symbol-allowlist, symbol-missing, lock-io, lock-wait, lock-trainer,
lock-order, lock-registry, lock-guard.
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".cpp"}

# ---------------------------------------------------------------------------
# Layering: the declared module DAG.
#
# Real architecture (PR 1-10): util and storage are leaves; obs/ml/trace
# sit on util; cachesim composes policies with trace+storage+obs; core
# (the serving layer) sits on everything below it, including cachesim;
# net/scenario/experiments drive core; bench/examples/tools/tests consume
# anything. Note cachesim is *below* core — ISSUE 10's shorthand put it
# beside net/scenario, but IntelligentCache and ShardedCache replay
# through cachesim policies, so the real (and declared) edge is core ->
# cachesim.
# ---------------------------------------------------------------------------

SRC_MODULES = ("util", "storage", "obs", "ml", "trace", "cachesim", "core",
               "net", "scenario", "experiments")

_SRC_ALL = set(SRC_MODULES)

ALLOWED_DEPS: dict[str, set[str]] = {
    "util": set(),
    "storage": set(),
    "obs": {"util"},
    "ml": {"util"},
    "trace": {"util"},
    "cachesim": {"util", "storage", "obs", "trace"},
    "core": {"util", "storage", "obs", "ml", "trace", "cachesim"},
    "net": {"util", "storage", "obs", "ml", "trace", "cachesim", "core"},
    "scenario": {"util", "storage", "obs", "ml", "trace", "cachesim", "core"},
    "experiments": {"util", "storage", "obs", "ml", "trace", "cachesim",
                    "core"},
    "bench": set(_SRC_ALL),
    "examples": set(_SRC_ALL),
    "tools": set(_SRC_ALL),
    "tests": set(_SRC_ALL),
}

# The consumer tier: leaf harness directories (executables and gate
# tooling) that sit above every src/ module. They may include each other
# freely (bench reuses tools/chaos, otac_loadgen reuses bench/bench_json)
# — they are peers on one rank, not layers — so consumer<->consumer edges
# are exempt from both the DAG check and cycle detection. src/ modules
# remain strictly ordered.
CONSUMER_MODULES = {"bench", "examples", "tools", "tests"}


def edge_allowed(a: str, b: str) -> bool:
    if a in CONSUMER_MODULES and b in CONSUMER_MODULES:
        return True
    return b in ALLOWED_DEPS.get(a, set())

SCAN_DIRS = ("src", "bench", "examples", "tools", "tests")

# ---------------------------------------------------------------------------
# Symbols: designated hot-path TUs and banned symbol families.
# ---------------------------------------------------------------------------

HOTPATH_TUS = (
    "src/core/serving_core.cpp",
    "src/core/sharded_cache.cpp",
    "src/core/history_table.cpp",
    "src/ml/compiled_tree.cpp",
    "src/net/daemon.cpp",
    "src/net/protocol.cpp",
)

ALLOWLIST_FILE = "tools/otac_analyze/hotpath_symbols.json"

SYMBOL_FAMILIES: dict[str, re.Pattern] = {
    # Itanium-mangled operator new/new[] (with and without align_val_t /
    # nothrow) plus the raw libc allocators.
    "operator-new": re.compile(
        r"^_Znw[jm]"
        r"|^_Zna[jm]"
        r"|^(?:malloc|calloc|realloc|aligned_alloc|posix_memalign)$"),
    "throw": re.compile(
        r"^__cxa_(?:throw|allocate_exception|rethrow)$"),
    "wall-clock": re.compile(
        r"^(?:clock_gettime|gettimeofday|time|clock|localtime(?:_r)?|"
        r"gmtime(?:_r)?|ftime)$"),
    "random": re.compile(
        r"^(?:rand|srand|random|srandom|rand_r|[dlm]rand48|arc4random\w*)$"),
}

# ---------------------------------------------------------------------------
# Locks: registry location, guard patterns, and the blocking-operation
# token sets each lock class forbids.
# ---------------------------------------------------------------------------

LOCK_REGISTRY = "src/core/lock_names.h"

LOCK_ENTRY_RE = re.compile(
    r'\{\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,'
    r"\s*LockClass\s*::\s*(\w+)\s*,\s*(\d+)\s*\}")

MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?std\s*::\s*(?:shared_)?mutex\s+(\w+)\s*;")

GUARD_RE = re.compile(
    r"\b(?:const\s+)?std\s*::\s*"
    r"(lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^;{}>]*>)?\s+(\w+)\s*\(([^;{}]*)\)\s*;")

LOCK_TAGS = {"defer_lock", "try_to_lock", "adopt_lock"}

IO_PATTERNS = [
    re.compile(r"\b(?:send_all|recv_exact|tcp_listen|tcp_connect)\s*\("),
    re.compile(r"::\s*(?:send|recv|sendto|recvfrom|read|write|accept|"
               r"connect|poll|select|epoll_wait|fsync|open|openat)\s*\("),
    re.compile(r"\b(?:fopen|fread|fwrite|fflush|fclose|fprintf|fscanf|"
               r"fgets|fputs)\s*\("),
    re.compile(r"\bstd\s*::\s*[oi]?fstream\b"),
]

WAIT_PATTERNS = [
    re.compile(r"\.\s*wait(?:_for|_until)?\s*\("),
    re.compile(r"\bsleep_(?:for|until)\s*\("),
]

TRAINER_PATTERNS = [
    re.compile(r"(?:\.|->)\s*(?:train|retrain|fit)\s*\("),
]

# class -> categories banned while held
LOCK_CLASS_BANS = {
    "hot": ("lock-io", "lock-wait", "lock-trainer"),
    "queue": ("lock-io", "lock-trainer"),
    "barrier": ("lock-io",),
    "io_writer": ("lock-wait", "lock-trainer"),
}

CATEGORY_PATTERNS = {
    "lock-io": IO_PATTERNS,
    "lock-wait": WAIT_PATTERNS,
    "lock-trainer": TRAINER_PATTERNS,
}

CATEGORY_LABEL = {
    "lock-io": "file/socket I/O",
    "lock-wait": "condition wait / sleep",
    "lock-trainer": "trainer fit",
}

ALLOW_RE = re.compile(r"otac-analyze:\s*allow\(([a-z0-9\-,\s]+)\)")

ALL_CHECKS = ("layering", "symbols", "locks")


class ConfigError(Exception):
    """Setup problem (missing compile DB, nm, malformed registry):
    exit 2, never a silent pass."""


class Finding:
    def __init__(self, check: str, kind: str, path: str, line: int,
                 message: str):
        self.check = check
        self.kind = kind
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.kind}] {self.message}"

    def to_json(self) -> dict:
        return {"check": self.check, "kind": self.kind, "path": self.path,
                "line": self.line, "message": self.message}


def strip_comments(text: str) -> str:
    """Replace comment bodies with spaces (string literals preserved,
    newlines kept so offsets map back to line numbers)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            out.append(c if c == "\n" else " ")
            if c == "\n":
                state = "code"
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c)
        else:  # char
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def blank_literals(code: str) -> str:
    """Blank string and char literal *contents* (quotes kept) so brace
    depth tracking and identifier matching never trip over them."""
    code = re.sub(r'"(?:[^"\\\n]|\\.)*"',
                  lambda m: '"' + " " * (len(m.group(0)) - 2) + '"', code)
    code = re.sub(r"'(?:[^'\\\n]|\\.)+'",
                  lambda m: "'" + " " * (len(m.group(0)) - 2) + "'", code)
    return code


class SourceFile:
    """One scanned file: pragma state plus comment-stripped views."""

    def __init__(self, root: Path, path: Path):
        self.abs_path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.raw_text = path.read_text(encoding="utf-8", errors="replace")
        self.code_text = strip_comments(self.raw_text)
        self.scan_text = blank_literals(self.code_text)
        self.allows: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.raw_text.splitlines(), start=1):
            m = ALLOW_RE.search(line)
            if m:
                kinds = {k.strip() for k in m.group(1).split(",") if k.strip()}
                self.allows.setdefault(lineno, set()).update(kinds)
                self.allows.setdefault(lineno + 1, set()).update(kinds)

    def allowed(self, kind: str, lineno: int) -> bool:
        return kind in self.allows.get(lineno, set())

    def line_of_offset(self, offset: int) -> int:
        return self.code_text.count("\n", 0, offset) + 1

    @property
    def unit(self) -> str:
        return self.rel_path.rsplit(".", 1)[0]


def collect_sources(root: Path) -> list[SourceFile]:
    files: list[SourceFile] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            # Violation fixtures (otac_lint, otac_analyze) are intentional
            # rule breakage; scanning them would fail every clean tree.
            if "fixtures" in path.relative_to(root).parts:
                continue
            files.append(SourceFile(root, path))
    return files


def module_of(rel_path: str) -> str | None:
    parts = rel_path.split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1] if parts[1] in _SRC_ALL else None
    if parts[0] in ("bench", "examples", "tools", "tests"):
        return parts[0]
    return None


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def check_layering(root: Path, sources: list[SourceFile],
                   dot_path: Path | None) -> list[Finding]:
    findings: list[Finding] = []
    # Sanity: the declared DAG itself must be acyclic and closed.
    for mod, deps in ALLOWED_DEPS.items():
        unknown = deps - set(ALLOWED_DEPS)
        if unknown:
            raise ConfigError(
                f"ALLOWED_DEPS[{mod}] names unknown modules: {unknown}")
    order: list[str] = []
    seen: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(mod: str, stack: tuple[str, ...]) -> None:
        state = seen.get(mod)
        if state == 1:
            return
        if state == 0:
            raise ConfigError(
                f"declared ALLOWED_DEPS graph has a cycle: "
                f"{' -> '.join(stack + (mod,))}")
        seen[mod] = 0
        for dep in sorted(ALLOWED_DEPS[mod]):
            visit(dep, stack + (mod,))
        seen[mod] = 1
        order.append(mod)

    for mod in ALLOWED_DEPS:
        visit(mod, ())

    # Observed file-level edges -> module edges.
    edges: dict[tuple[str, str], list[tuple[str, int]]] = {}
    for src in sources:
        mod = module_of(src.rel_path)
        if mod is None:
            continue
        src_dir = src.abs_path.parent
        for m in INCLUDE_RE.finditer(src.code_text):
            inc = m.group(1)
            lineno = src.line_of_offset(m.start())
            if (root / "src" / inc).is_file():
                target = module_of(f"src/{inc}")
            elif (root / inc).is_file():
                target = module_of(inc)
            elif (src_dir / inc).is_file():
                target = mod  # includer-relative: same module
            else:
                if not src.allowed("include-unresolved", lineno):
                    findings.append(Finding(
                        "layering", "include-unresolved", src.rel_path,
                        lineno,
                        f'include "{inc}" resolves to no file under src/, '
                        f"the repo root, or the includer's directory"))
                continue
            if target is None or target == mod:
                continue
            edges.setdefault((mod, target), []).append(
                (src.rel_path, lineno))

    for (a, b), sites in sorted(edges.items()):
        if edge_allowed(a, b):
            continue
        for rel_path, lineno in sites:
            src = next(s for s in sources if s.rel_path == rel_path)
            if src.allowed("layer-dep", lineno):
                continue
            findings.append(Finding(
                "layering", "layer-dep", rel_path, lineno,
                f"module '{a}' may not depend on '{b}' "
                f"(declared deps: "
                f"{', '.join(sorted(ALLOWED_DEPS.get(a, set()))) or 'none'}"
                f"); this is a layering back-edge"))

    # Cycles in the observed graph (independent of the per-edge verdicts,
    # so a future ALLOWED_DEPS edit cannot quietly legalize a cycle).
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        if a in CONSUMER_MODULES and b in CONSUMER_MODULES:
            continue
        graph.setdefault(a, set()).add(b)
    state: dict[str, int] = {}

    def find_cycle(node: str, stack: list[str]) -> list[str] | None:
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                return stack[stack.index(nxt):] + [nxt]
            if nxt not in state:
                cycle = find_cycle(nxt, stack)
                if cycle:
                    return cycle
        stack.pop()
        state[node] = 1
        return None

    reported: set[frozenset] = set()
    for node in sorted(graph):
        if node in state:
            continue
        cycle = find_cycle(node, [])
        if cycle and frozenset(cycle) not in reported:
            reported.add(frozenset(cycle))
            findings.append(Finding(
                "layering", "layer-cycle", "src", 1,
                f"include cycle between modules: {' -> '.join(cycle)}"))

    if dot_path is not None:
        write_dot(dot_path, order, edges)
    return findings


def write_dot(dot_path: Path, topo_order: list[str],
              edges: dict[tuple[str, str], list]) -> None:
    """Observed module graph, one rank per declared layer depth; edges
    the DAG forbids are red+dashed so a back-edge is visible at a
    glance in the CI artifact."""
    depth: dict[str, int] = {}
    for mod in topo_order:  # children first
        deps = ALLOWED_DEPS[mod] & set(depth)
        depth[mod] = 1 + max((depth[d] for d in ALLOWED_DEPS[mod]),
                             default=-1) if ALLOWED_DEPS[mod] else 0
    lines = ["digraph otac_layering {", "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    by_depth: dict[int, list[str]] = {}
    for mod in sorted(ALLOWED_DEPS):
        by_depth.setdefault(depth[mod], []).append(mod)
    for d in sorted(by_depth):
        members = "; ".join(f'"{m}"' for m in by_depth[d])
        lines.append(f"  {{ rank=same; {members}; }}")
    for (a, b), sites in sorted(edges.items()):
        ok = edge_allowed(a, b)
        style = "" if ok else " [color=red, style=dashed, penwidth=2]"
        lines.append(f'  "{a}" -> "{b}"{style};  // {len(sites)} include(s)')
    lines.append("}")
    dot_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


def load_compile_db(root: Path, build_dir: Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise ConfigError(
            f"no compile database at {db_path}; configure with "
            f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (scripts/ci.sh analyze "
            f"does this)")
    try:
        return json.loads(db_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigError(f"malformed compile database {db_path}: {error}")


def object_for(entry: dict) -> Path | None:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    for i, arg in enumerate(args):
        if arg == "-o" and i + 1 < len(args):
            return Path(entry["directory"]) / args[i + 1]
        if arg.startswith("-o") and len(arg) > 2:
            return Path(entry["directory"]) / arg[2:]
    return None


def undefined_symbols(nm_tool: str, obj: Path) -> set[str]:
    result = subprocess.run(
        [nm_tool, "--undefined-only", "--format=posix", str(obj)],
        capture_output=True, text=True, check=False)
    if result.returncode != 0:
        raise ConfigError(
            f"{nm_tool} failed on {obj}: {result.stderr.strip()}")
    symbols = set()
    for line in result.stdout.splitlines():
        name = line.split()[0] if line.split() else ""
        if name:
            symbols.add(name.split("@", 1)[0])
    return symbols


def load_allowlist(root: Path) -> dict[str, dict[str, str]]:
    path = root / ALLOWLIST_FILE
    if not path.is_file():
        raise ConfigError(f"missing hot-path symbol allowlist {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigError(f"malformed allowlist {path}: {error}")
    for tu, families in data.items():
        if not isinstance(families, dict) or not all(
                isinstance(r, str) for r in families.values()):
            raise ConfigError(
                f"allowlist entry for {tu} must map family -> reason")
    return data


def check_symbols(root: Path, build_dir: Path, nm_tool: str | None,
                  extra_objects: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    allowlist = load_allowlist(root)
    nm = nm_tool or shutil.which("nm") or shutil.which("llvm-nm")
    if nm is None:
        raise ConfigError("neither nm nor llvm-nm found; the symbol gate "
                          "cannot run (and must not silently pass)")

    for tu in sorted(allowlist):
        if tu not in HOTPATH_TUS:
            findings.append(Finding(
                "symbols", "symbol-allowlist", ALLOWLIST_FILE, 1,
                f"allowlist names '{tu}', which is not a designated "
                f"hot-path TU; remove the stale entry"))
        for family in sorted(allowlist[tu]):
            if family not in SYMBOL_FAMILIES:
                findings.append(Finding(
                    "symbols", "symbol-allowlist", ALLOWLIST_FILE, 1,
                    f"allowlist for {tu} names unknown symbol family "
                    f"'{family}' (known: "
                    f"{', '.join(sorted(SYMBOL_FAMILIES))})"))

    db = load_compile_db(root, build_dir)
    by_file = {}
    for entry in db:
        by_file[Path(entry["file"]).resolve()] = entry

    targets: list[tuple[str, Path]] = []
    for tu in HOTPATH_TUS:
        entry = by_file.get((root / tu).resolve())
        if entry is None:
            findings.append(Finding(
                "symbols", "symbol-missing", tu, 1,
                f"designated hot-path TU has no compile-database entry in "
                f"{build_dir}; the symbol gate cannot vouch for it"))
            continue
        obj = object_for(entry)
        if obj is None or not obj.is_file():
            findings.append(Finding(
                "symbols", "symbol-missing", tu, 1,
                f"object file for designated hot-path TU not found "
                f"(expected {obj}); build the tree first"))
            continue
        targets.append((tu, obj))
    for spec in extra_objects:
        name, _, path = spec.partition("=")
        targets.append((name, Path(path)))

    for tu, obj in targets:
        symbols = undefined_symbols(nm, obj)
        allowed = allowlist.get(tu, {})
        used_families: set[str] = set()
        for symbol in sorted(symbols):
            for family, pattern in SYMBOL_FAMILIES.items():
                if not pattern.search(symbol):
                    continue
                if family in allowed:
                    used_families.add(family)
                else:
                    findings.append(Finding(
                        "symbols", "symbol-banned", tu, 1,
                        f"object {obj.name} references banned symbol "
                        f"'{symbol}' (family {family}); the hot path must "
                        f"not reach it — fix the code or audit it in "
                        f"{ALLOWLIST_FILE}"))
        for family in sorted(set(allowed) & set(SYMBOL_FAMILIES)):
            if family not in used_families:
                findings.append(Finding(
                    "symbols", "symbol-allowlist", tu, 1,
                    f"allowlisted family '{family}' is no longer "
                    f"referenced by {obj.name}; prune the stale audit "
                    f"entry so the allowlist stays tight"))
    return findings


# ---------------------------------------------------------------------------
# Locks
# ---------------------------------------------------------------------------


class LockEntry:
    def __init__(self, name: str, unit: str, identifier: str, cls: str,
                 rank: int):
        self.name = name
        self.unit = unit
        self.identifier = identifier
        self.cls = cls
        self.rank = rank


def parse_lock_registry(root: Path) -> list[LockEntry]:
    path = root / LOCK_REGISTRY
    if not path.is_file():
        raise ConfigError(f"missing lock registry {path}")
    code = strip_comments(path.read_text(encoding="utf-8", errors="replace"))
    entries = []
    for m in LOCK_ENTRY_RE.finditer(code):
        name, unit, identifier, cls, rank = m.groups()
        if cls not in LOCK_CLASS_BANS:
            raise ConfigError(
                f"{LOCK_REGISTRY}: entry '{name}' has unknown class "
                f"'{cls}' (known: {', '.join(sorted(LOCK_CLASS_BANS))})")
        entries.append(LockEntry(name, unit, identifier, cls, int(rank)))
    if not entries:
        raise ConfigError(f"{LOCK_REGISTRY}: no lock entries parsed")
    return entries


class GuardScope:
    def __init__(self, entry: LockEntry, decl_offset: int, decl_line: int,
                 segments: list[tuple[int, int]]):
        self.entry = entry
        self.decl_offset = decl_offset
        self.decl_line = decl_line
        self.segments = segments

    def active_at(self, offset: int) -> bool:
        return any(a <= offset < b for a, b in self.segments)


def scope_end(text: str, start: int) -> int:
    """Offset of the enclosing block's closing brace, token-level."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
        i += 1
    return n


def guard_segments(text: str, var: str, start: int, end: int
                   ) -> list[tuple[int, int]]:
    """[start,end) minus any var.unlock() .. var.lock() windows."""
    events = []
    for m in re.finditer(r"\b" + re.escape(var) + r"\s*\.\s*(un)?lock\s*\(",
                         text[start:end]):
        events.append((start + m.start(), m.group(1) == "un"))
    segments = []
    seg_start = start
    held = True
    for offset, is_unlock in events:
        if is_unlock and held:
            segments.append((seg_start, offset))
            held = False
        elif not is_unlock and not held:
            seg_start = offset
            held = True
    if held:
        segments.append((seg_start, end))
    return segments


def check_locks(root: Path, sources: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    entries = parse_lock_registry(root)

    names = {}
    ranks = {}
    keys = {}
    for e in entries:
        for attr, table, value in (("name", names, e.name),
                                   ("rank", ranks, e.rank),
                                   ("unit+identifier", keys,
                                    (e.unit, e.identifier))):
            if value in table:
                findings.append(Finding(
                    "locks", "lock-registry", LOCK_REGISTRY, 1,
                    f"duplicate {attr} {value!r} in the lock registry"))
            table[value] = e

    by_key = {(e.unit, e.identifier): e for e in entries}
    by_identifier: dict[str, list[LockEntry]] = {}
    for e in entries:
        by_identifier.setdefault(e.identifier, []).append(e)

    src_files = [s for s in sources if s.rel_path.startswith("src/")]

    # Cross-check 1: every mutex declaration registered, no stale entries.
    declared: set[tuple[str, str]] = set()
    for src in src_files:
        for m in MUTEX_DECL_RE.finditer(src.scan_text):
            identifier = m.group(1)
            declared.add((src.unit, identifier))
            if (src.unit, identifier) not in by_key:
                lineno = src.line_of_offset(m.start())
                if src.allowed("lock-registry", lineno):
                    continue
                findings.append(Finding(
                    "locks", "lock-registry", src.rel_path, lineno,
                    f"mutex '{identifier}' is not registered in "
                    f"{LOCK_REGISTRY}; every lock must be audited, "
                    f"classified, and ranked"))
    for e in entries:
        # A unit may declare in the header and guard in the source; the
        # registry pins the unit stem, so either file satisfies it.
        unit_files = {f"{e.unit}.h", f"{e.unit}.cpp"}
        if not any((root / f).is_file() for f in unit_files):
            findings.append(Finding(
                "locks", "lock-registry", LOCK_REGISTRY, 1,
                f"registry entry '{e.name}' points at unit '{e.unit}', "
                f"but neither {e.unit}.h nor {e.unit}.cpp exists"))
            continue
        if (e.unit, e.identifier) not in declared:
            findings.append(Finding(
                "locks", "lock-registry", LOCK_REGISTRY, 1,
                f"registry entry '{e.name}' names mutex "
                f"'{e.identifier}' in unit '{e.unit}', but no such "
                f"declaration exists; prune the stale entry"))

    # Cross-check 2: guard scopes obey the class policy and lock order.
    for src in src_files:
        text = src.scan_text
        scopes: list[GuardScope] = []
        for m in GUARD_RE.finditer(text):
            var = m.group(2)
            args = [a.strip() for a in m.group(3).split(",") if a.strip()]
            lineno = src.line_of_offset(m.start())
            for arg in args:
                ids = re.findall(r"\w+", arg)
                identifier = ids[-1] if ids else ""
                if identifier in LOCK_TAGS or not identifier:
                    continue
                entry = by_key.get((src.unit, identifier))
                if entry is None:
                    candidates = by_identifier.get(identifier, [])
                    if len(candidates) == 1:
                        entry = candidates[0]
                    elif not src.allowed("lock-guard", lineno):
                        problem = ("ambiguous across units "
                                   + ", ".join(sorted(c.unit
                                                      for c in candidates))
                                   if candidates else "unregistered")
                        findings.append(Finding(
                            "locks", "lock-guard", src.rel_path, lineno,
                            f"guard '{var}' locks mutex '{identifier}' "
                            f"which is {problem} in {LOCK_REGISTRY}"))
                        continue
                if entry is None:
                    continue
                end = scope_end(text, m.end())
                segments = guard_segments(text, var, m.end(), end)
                scopes.append(GuardScope(entry, m.start(), lineno, segments))

        for scope in scopes:
            bans = LOCK_CLASS_BANS[scope.entry.cls]
            for category in bans:
                for pattern in CATEGORY_PATTERNS[category]:
                    for seg_start, seg_end in scope.segments:
                        for m in pattern.finditer(text, seg_start, seg_end):
                            lineno = src.line_of_offset(m.start())
                            if src.allowed(category, lineno):
                                continue
                            findings.append(Finding(
                                "locks", category, src.rel_path, lineno,
                                f"{CATEGORY_LABEL[category]} "
                                f"'{m.group(0).strip()}' while holding "
                                f"'{scope.entry.name}' (class "
                                f"{scope.entry.cls}, {LOCK_REGISTRY})"))
            # Lock order: any other guard acquired inside this scope's
            # active segments must carry a strictly greater rank.
            for inner in scopes:
                if inner is scope or not scope.active_at(inner.decl_offset):
                    continue
                if inner.entry.rank <= scope.entry.rank:
                    if src.allowed("lock-order", inner.decl_line):
                        continue
                    findings.append(Finding(
                        "locks", "lock-order", src.rel_path,
                        inner.decl_line,
                        f"'{inner.entry.name}' (rank {inner.entry.rank}) "
                        f"acquired while holding '{scope.entry.name}' "
                        f"(rank {scope.entry.rank}); the pinned order in "
                        f"{LOCK_REGISTRY} requires ascending ranks"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="otac-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2])
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build tree with compile_commands.json and "
                             "objects (default: <root>/build)")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help=f"comma list of {'/'.join(ALL_CHECKS)}")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="also write the JSON findings report here")
    parser.add_argument("--dot", type=Path, default=None,
                        help="write the observed layering graph as DOT")
    parser.add_argument("--nm", default=None,
                        help="nm tool to use (default: nm, then llvm-nm)")
    parser.add_argument("--hotpath-object", action="append", default=[],
                        metavar="NAME=PATH",
                        help="extra designated object for the symbol gate "
                             "(fixture hook; empty allowlist)")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        print("layering: declared module DAG vs the real include graph; "
              "back-edges, cycles, unresolvable includes")
        print("symbols: nm over designated hot-path objects; banned symbol "
              "families outside the audited allowlist")
        print("locks: registered-mutex guard scopes free of the blocking "
              "operations their class forbids; ascending lock order")
        return 0

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in ALL_CHECKS]
    if unknown:
        print(f"otac-analyze: unknown checks: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    root = args.root.resolve()
    build_dir = (args.build_dir or root / "build").resolve()

    try:
        sources = collect_sources(root)
        findings: list[Finding] = []
        if "layering" in checks:
            findings.extend(check_layering(root, sources, args.dot))
        if "symbols" in checks:
            findings.extend(check_symbols(root, build_dir, args.nm,
                                          args.hotpath_object))
        if "locks" in checks:
            findings.extend(check_locks(root, sources))
    except ConfigError as error:
        print(f"otac-analyze: {error}", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.kind, f.message))
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.kind] = counts.get(f.kind, 0) + 1
    report = {
        "version": 1,
        "checks": checks,
        "findings": [f.to_json() for f in findings],
        "counts": dict(sorted(counts.items())),
        "clean": not findings,
    }
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report, indent=2) + "\n",
                                 encoding="utf-8")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"otac-analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
