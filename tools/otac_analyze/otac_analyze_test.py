#!/usr/bin/env python3
"""Tests for otac-analyze: the violation fixtures must report exactly the
pinned finding counts, the symbol gate must flag a compiled leaky object,
the clean tree must report zero findings, and configuration errors must
exit 2 rather than silently pass.

Run directly (`python3 tools/otac_analyze/otac_analyze_test.py`) or via
ctest (label `lint`). The clean-tree symbol test needs a configured build
directory (compile_commands.json + objects); it honors
OTAC_ANALYZE_BUILD_DIR and defaults to <repo>/build.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest
from collections import Counter
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOL_DIR.parents[1]
ANALYZER = TOOL_DIR / "otac_analyze.py"
FIXTURES = TOOL_DIR / "fixtures"
VIOLATION_TREE = FIXTURES / "violation_tree"
BUILD_DIR = Path(os.environ.get("OTAC_ANALYZE_BUILD_DIR",
                                REPO_ROOT / "build"))

# violation_tree, checks layering+locks -> exact multiset of finding kinds
EXPECTED_TREE = {
    "layer-dep": 1,            # src/util/clock.h includes core/engine.h
    "layer-cycle": 1,          # core -> util -> core
    "include-unresolved": 1,   # missing/gone.h
    "lock-io": 1,              # fprintf under hot lock (2nd site suppressed)
    "lock-wait": 1,            # cv_.wait under hot lock
    "lock-trainer": 1,         # ->fit under hot lock
    "lock-order": 1,           # rank 5 acquired under rank 20
    "lock-registry": 2,        # unregistered rogue_mutex_ + stale entry
    "lock-guard": 1,           # guard on the unregistered mutex
}

# hot_leaky.o via --hotpath-object, empty compile DB, stale allowlist
EXPECTED_SYMBOLS = {
    "symbol-banned": 6,     # _Znwm, __cxa_allocate_exception, __cxa_throw,
                            # clock_gettime, malloc, rand
    "symbol-missing": 6,    # each designated TU absent from the empty DB
    "symbol-allowlist": 2,  # non-hot-path TU entry + unknown family
}


def run_analyzer(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ANALYZER), *args],
        capture_output=True, text=True, check=False)


def kind_hits(stdout: str) -> Counter:
    """Parse `path:line: [kind] message` lines into a kind multiset."""
    hits: Counter = Counter()
    for line in stdout.splitlines():
        if ": [" in line and "] " in line:
            kind = line.split(": [", 1)[1].split("]", 1)[0]
            hits[kind] += 1
    return hits


def find_cxx() -> str:
    for name in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if name and shutil.which(name):
            return name
    raise RuntimeError("no C++ compiler found for the symbol fixture")


class ViolationTreeTest(unittest.TestCase):
    def test_pinned_finding_counts(self):
        result = run_analyzer("--root", str(VIOLATION_TREE),
                              "--checks", "layering,locks")
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertEqual(dict(kind_hits(result.stdout)), EXPECTED_TREE)

    def test_json_report_matches_pinned_counts(self):
        result = run_analyzer("--root", str(VIOLATION_TREE),
                              "--checks", "layering,locks",
                              "--format", "json")
        self.assertEqual(result.returncode, 1, result.stderr)
        report = json.loads(result.stdout)
        self.assertFalse(report["clean"])
        self.assertEqual(report["counts"], EXPECTED_TREE)
        self.assertEqual(len(report["findings"]),
                         sum(EXPECTED_TREE.values()))
        for finding in report["findings"]:
            self.assertEqual(sorted(finding),
                             ["check", "kind", "line", "message", "path"])

    def test_dot_artifact_marks_back_edge(self):
        with tempfile.TemporaryDirectory() as tmp:
            dot = Path(tmp) / "layering.dot"
            run_analyzer("--root", str(VIOLATION_TREE),
                         "--checks", "layering", "--dot", str(dot))
            text = dot.read_text()
            self.assertIn('"core" -> "util"', text)   # legal edge
            self.assertIn('"util" -> "core" [color=red', text)  # back-edge

    def test_json_out_file_written(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "findings.json"
            run_analyzer("--root", str(VIOLATION_TREE),
                         "--checks", "layering,locks",
                         "--json-out", str(out))
            report = json.loads(out.read_text())
            self.assertEqual(report["counts"], EXPECTED_TREE)


class SymbolGateTest(unittest.TestCase):
    def test_leaky_object_and_stale_allowlist(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            root = tmp / "root"
            build = tmp / "build"
            (root / "tools" / "otac_analyze").mkdir(parents=True)
            build.mkdir()
            (root / "tools" / "otac_analyze"
             / "hotpath_symbols.json").write_text(json.dumps({
                 "src/core/not_a_tu.cpp": {"operator-new": "stale entry"},
                 "src/core/serving_core.cpp": {"cosmic-rays": "unknown"},
             }))
            (build / "compile_commands.json").write_text("[]")
            obj = tmp / "hot_leaky.o"
            subprocess.run(
                [find_cxx(), "-O0", "-std=c++20", "-c",
                 str(FIXTURES / "hot_leaky.cpp"), "-o", str(obj)],
                check=True)
            result = run_analyzer("--root", str(root),
                                  "--build-dir", str(build),
                                  "--checks", "symbols",
                                  "--hotpath-object", f"hot_leaky={obj}")
            self.assertEqual(result.returncode, 1, result.stderr)
            self.assertEqual(dict(kind_hits(result.stdout)),
                             EXPECTED_SYMBOLS)

    def test_missing_compile_db_is_a_config_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            (tmp / "root" / "tools" / "otac_analyze").mkdir(parents=True)
            (tmp / "root" / "tools" / "otac_analyze"
             / "hotpath_symbols.json").write_text("{}")
            result = run_analyzer("--root", str(tmp / "root"),
                                  "--build-dir", str(tmp / "nope"),
                                  "--checks", "symbols")
            self.assertEqual(result.returncode, 2)
            self.assertIn("compile database", result.stderr)

    def test_missing_allowlist_is_a_config_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            result = run_analyzer("--root", str(tmp),
                                  "--checks", "symbols")
            self.assertEqual(result.returncode, 2)
            self.assertIn("allowlist", result.stderr)


class LockWindowTest(unittest.TestCase):
    """The unlock()/lock() window semantics: work done between
    guard.unlock() and guard.lock() is NOT held-under-lock (the
    trainer-watchdog fit pattern)."""

    REGISTRY = """
    enum class LockClass { hot, queue, barrier, io_writer };
    inline constexpr LockInfo kKnownLocks[] = {
        {"core.w.coord", "src/core/w", "mutex_", LockClass::queue, 10},
    };
    """

    def _run_tree(self, body: str) -> Counter:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            core = root / "src" / "core"
            core.mkdir(parents=True)
            (core / "lock_names.h").write_text(self.REGISTRY)
            (core / "w.cpp").write_text(
                "#include <mutex>\nstd::mutex mutex_;\n" + body)
            result = run_analyzer("--root", str(root), "--checks", "locks")
            return kind_hits(result.stdout)

    def test_fit_inside_unlock_window_is_clean(self):
        hits = self._run_tree("""
        void worker(Trainer& t) {
          std::unique_lock<std::mutex> lock(mutex_);
          lock.unlock();
          t.fit(1);
          lock.lock();
        }
        """)
        self.assertEqual(dict(hits), {})

    def test_fit_while_held_is_flagged(self):
        hits = self._run_tree("""
        void worker(Trainer& t) {
          std::unique_lock<std::mutex> lock(mutex_);
          t.fit(1);
        }
        """)
        self.assertEqual(dict(hits), {"lock-trainer": 1})


class CleanTreeTest(unittest.TestCase):
    def test_layering_and_locks_clean(self):
        result = run_analyzer("--root", str(REPO_ROOT),
                              "--checks", "layering,locks")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)

    def test_symbols_clean(self):
        if not (BUILD_DIR / "compile_commands.json").is_file():
            self.skipTest(f"no compile database under {BUILD_DIR}; "
                          f"run via ctest or scripts/ci.sh analyze")
        result = run_analyzer("--root", str(REPO_ROOT),
                              "--build-dir", str(BUILD_DIR),
                              "--checks", "symbols")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)


class CliTest(unittest.TestCase):
    def test_unknown_check_exits_2(self):
        result = run_analyzer("--root", str(VIOLATION_TREE),
                              "--checks", "layering,astrology")
        self.assertEqual(result.returncode, 2)
        self.assertIn("unknown checks", result.stderr)

    def test_list_checks(self):
        result = run_analyzer("--list-checks")
        self.assertEqual(result.returncode, 0)
        for check in ("layering", "symbols", "locks"):
            self.assertIn(check, result.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
