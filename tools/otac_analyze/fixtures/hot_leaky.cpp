// Fixture: a "hot-path" TU that references every banned symbol family.
// otac_analyze_test.py compiles this to an object and feeds it to the
// symbol gate via --hotpath-object, pinning one symbol-banned finding
// per undefined symbol: _Znwm (operator new), __cxa_allocate_exception +
// __cxa_throw, malloc, clock_gettime, rand.
#include <cstdlib>
#include <ctime>

int* leak_operator_new() { return new int(42); }

void leak_throw(bool arm) {
  if (arm) throw 42;
}

long leak_wall_clock() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_nsec;
}

int leak_rand() { return std::rand(); }

void* leak_malloc(std::size_t n) { return std::malloc(n); }
