// Fixture: a util header reaching up into core — the canonical layering
// back-edge (util may depend on nothing), which together with core's
// legal core -> util edge also forms an include cycle.
#pragma once

#include "core/engine.h"

namespace fixture {

inline int poll_engine() { return 0; }

}  // namespace fixture
