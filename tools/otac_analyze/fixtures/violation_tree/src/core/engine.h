// Fixture: the "core" side of a layering cycle (this header includes
// util/clock.h legally; util/clock.h includes this header back), plus
// one unresolvable include.
#pragma once

#include "util/clock.h"
#include "missing/gone.h"

#include <condition_variable>
#include <mutex>

namespace fixture {

class Engine {
 public:
  void hot_path();
  void reply();
  void audited();

 private:
  std::mutex state_mutex_;
  std::mutex queue_mutex_;
  std::mutex sink_mutex_;
  std::condition_variable cv_;
};

}  // namespace fixture
