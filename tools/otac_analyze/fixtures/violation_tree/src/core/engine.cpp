// Fixture: one guard-scope violation per lock-discipline category, one
// suppressed site proving the allow() pragma works, one unregistered
// mutex, and one guard on it.
#include "core/engine.h"

#include <cstdio>

namespace fixture {

// Unregistered declaration: not in src/core/lock_names.h -> lock-registry.
std::mutex rogue_mutex_;

struct Trainer {
  void fit(int batch);
};

void Engine::hot_path() {
  Trainer* trainer_ = nullptr;
  int batch = 0;
  std::unique_lock<std::mutex> lock(state_mutex_);
  std::fprintf(stderr, "serving\n");  // lock-io under a hot lock
  cv_.wait(lock);                     // lock-wait under a hot lock
  trainer_->fit(batch);               // lock-trainer under a hot lock
}

void Engine::reply() {
  std::lock_guard<std::mutex> outer(queue_mutex_);  // rank 20
  std::lock_guard<std::mutex> inner(sink_mutex_);   // rank 5 -> lock-order
}

void Engine::audited() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  // otac-analyze: allow(lock-io)  audited: startup banner, not hot
  std::fprintf(stderr, "banner\n");
}

void misc_guard() {
  std::lock_guard<std::mutex> g(rogue_mutex_);  // guard on it -> lock-guard
}

}  // namespace fixture
