// Fixture registry for otac_analyze_test.py — a miniature lock_names.h
// with one deliberately stale entry (core.engine.gone: no such mutex is
// declared anywhere in this tree, so the analyzer must flag the rotted
// audit) and a rank inversion set up between queue (20) and sink (5).
#pragma once

namespace fixture {

enum class LockClass { hot, queue, barrier, io_writer };

struct LockInfo {
  const char* name;
  const char* unit;
  const char* identifier;
  LockClass cls;
  int rank;
};

inline constexpr LockInfo kKnownLocks[] = {
    {"core.engine.state", "src/core/engine", "state_mutex_",
     LockClass::hot, 10},
    {"core.engine.queue", "src/core/engine", "queue_mutex_",
     LockClass::queue, 20},
    {"core.engine.sink", "src/core/engine", "sink_mutex_",
     LockClass::io_writer, 5},
    {"core.engine.gone", "src/core/engine", "gone_mutex_",
     LockClass::hot, 30},
};

}  // namespace fixture
