#!/usr/bin/env python3
"""Tests for the bench-smoke schema gate (check_bench_smoke.py).

The acceptance criterion: a report that parses as valid JSON but carries
zero cells (or cells stripped of their schema keys) must fail — that is
exactly the artifact `python3 -m json.tool` waves through.
"""

import pathlib
import sys
import unittest

HERE = pathlib.Path(__file__).resolve().parent

sys.path.insert(0, str(HERE))
import check_bench_smoke  # noqa: E402


def ok_report():
    return {
        "bench": "chaos",
        "reps": 1,
        "cells": [{
            "scenario": "ssd_write_storm", "requests": 1000,
            "completed": True, "failpoint_fires": 7, "shed_rate": 0.01,
            "ok": True,
        }],
    }


class CheckBenchSmokeTest(unittest.TestCase):
    def test_ok_report_passes(self):
        self.assertEqual(
            check_bench_smoke.check_report("BENCH_chaos.json", ok_report()),
            [])

    def test_empty_cells_fail(self):
        report = ok_report()
        report["cells"] = []
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any("silently-empty" in e for e in errors))

    def test_missing_cells_key_fails(self):
        report = ok_report()
        del report["cells"]
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any("silently-empty" in e for e in errors))

    def test_empty_cell_object_fails(self):
        report = ok_report()
        report["cells"].append({})
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any("cell 1 is not a non-empty object" in e
                            for e in errors))

    def test_missing_schema_key_fails(self):
        report = ok_report()
        del report["cells"][0]["shed_rate"]
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any("missing keys" in e and "shed_rate" in e
                            for e in errors))

    def test_missing_bench_name_fails(self):
        report = ok_report()
        report["bench"] = ""
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any('"bench" missing or empty' in e for e in errors))

    def test_zero_reps_fails(self):
        report = ok_report()
        report["reps"] = 0
        errors = check_bench_smoke.check_report("BENCH_chaos.json", report)
        self.assertTrue(any('"reps"' in e for e in errors))

    def test_unknown_report_gets_generic_checks(self):
        errors = check_bench_smoke.check_report(
            "BENCH_future.json", {"bench": "future", "reps": 1,
                                  "cells": [{"anything": 1}]})
        self.assertEqual(errors, [])
        errors = check_bench_smoke.check_report(
            "BENCH_future.json", {"bench": "future", "reps": 1, "cells": []})
        self.assertTrue(errors)

    def test_required_keys_cover_all_smoke_reports(self):
        # The bench-smoke job emits exactly these reports today; keep the
        # schema map in lockstep so none regresses to generic-only checks.
        for name in ("BENCH_cache_ops.json", "BENCH_classifier.json",
                     "BENCH_obs_overhead.json", "BENCH_sharded_replay.json",
                     "BENCH_chaos.json", "BENCH_scenarios.json",
                     "BENCH_daemon.json"):
            self.assertIn(name, check_bench_smoke.REQUIRED_CELL_KEYS)


if __name__ == "__main__":
    unittest.main()
