#!/usr/bin/env python3
"""Schema gate for the bench-smoke artifacts.

Usage: check_bench_smoke.py <bench-smoke-dir>

`python3 -m json.tool` only proves the BENCH_*.json reports parse; a
bench that silently produced zero cells (or cells stripped of the keys
the perf notes and gates read) would still pass and upload an empty
artifact. This gate walks every BENCH_*.json in the directory and
requires, per report:

  - top-level "bench" (non-empty string), "reps" (int >= 1), and a
    non-empty "cells" list,
  - every cell is a non-empty JSON object,
  - every cell carries the report's expected keys (REQUIRED_CELL_KEYS,
    keyed by file name -- extend it when adding a bench).

Unknown BENCH_*.json files still get the generic checks, so a new bench
cannot upload an empty artifact just because this map lags behind. Exit
code 0 = all reports well-formed, 1 = any violation, 2 = usage/IO error.
"""

import json
import pathlib
import sys

REQUIRED_CELL_KEYS = {
    "BENCH_cache_ops.json": ("policy", "workload", "ops", "ns_per_op",
                             "ops_per_sec", "hit_rate"),
    "BENCH_classifier.json": ("cell", "ops", "ns_per_op", "ops_per_sec"),
    # obs_overhead ends with a heterogeneous summary cell ("ratio"/"bound"),
    # so only the key all cells share is required.
    "BENCH_obs_overhead.json": ("cell",),
    "BENCH_sharded_replay.json": ("mode", "shards", "threads", "requests",
                                  "file_hit_rate", "ops_per_sec",
                                  "hardware_concurrency"),
    "BENCH_chaos.json": ("scenario", "requests", "completed",
                         "failpoint_fires", "shed_rate", "ok"),
    "BENCH_scenarios.json": ("scenario", "mode", "requests", "file_hit_rate",
                             "insertions", "shed_requests", "p99_latency_us",
                             "ok"),
    "BENCH_daemon.json": ("side", "requests"),
}


def check_report(name, report):
    """Return a list of violation messages for one parsed report."""
    errors = []
    bench = report.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append(f'{name}: "bench" missing or empty')
    reps = report.get("reps")
    if not isinstance(reps, int) or reps < 1:
        errors.append(f'{name}: "reps" missing or < 1')
    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{name}: no cells (silently-empty artifact)")
        return errors

    required = REQUIRED_CELL_KEYS.get(name, ())
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict) or not cell:
            errors.append(f"{name}: cell {i} is not a non-empty object")
            continue
        missing = [k for k in required if k not in cell]
        if missing:
            errors.append(f"{name}: cell {i} missing keys {missing}")
    return errors


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    smoke_dir = pathlib.Path(argv[1])
    reports = sorted(smoke_dir.glob("BENCH_*.json"))
    if not reports:
        print(f"bench-gate: no BENCH_*.json under {smoke_dir}",
              file=sys.stderr)
        return 2

    errors = []
    for path in reports:
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            errors.append(f"{path.name}: cannot load: {error}")
            continue
        errors.extend(check_report(path.name, report))

    if errors:
        for error in errors:
            print(f"bench-gate: FAIL {error}")
        print(f"bench-gate: {len(errors)} violation(s)")
        return 1
    print(f"bench-gate: OK ({len(reports)} reports, schemas intact)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
