// otacd: the network serving daemon CLI. Loads the seeded bench trace
// (the same one every bench binary and the load generator use), wraps it
// in an IntelligentCache, and serves it over the net/protocol.h wire
// format until a client sends SHUTDOWN (or SIGTERM-equivalent stop).
//
// The CI smoke handshake: start with --port 0 --port-file PATH, and the
// daemon writes the kernel-assigned port to PATH after binding; the load
// generator polls for that file instead of racing the bind.
//
// Examples:
//   otacd --port-file /tmp/otacd.port --seed 42 --scale 0.02 --shards 4
//   otacd --port 7433 --mode proposal --paper-gb 8 --overload
//         --watchdog-timeout 0.5 --metrics-out daemon_report.json
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/intelligent_cache.h"
#include "experiments/workloads.h"
#include "net/daemon.h"
#include "obs/report.h"
#include "util/flags.h"

namespace {

using namespace otac;

AdmissionMode parse_mode(const std::string& name) {
  if (name == "original") return AdmissionMode::original;
  if (name == "proposal") return AdmissionMode::proposal;
  if (name == "ideal") return AdmissionMode::ideal;
  if (name == "bypass") return AdmissionMode::bypass;
  throw std::invalid_argument(
      "unknown --mode '" + name + "' (original|proposal|ideal|bypass)");
}

int run(const FlagParser& flags) {
  if (flags.has("help")) {
    std::cout
        << "usage: otacd [flags]\n"
           "  --host H             bind address (default 127.0.0.1)\n"
           "  --port P             TCP port; 0 = kernel-assigned (default)\n"
           "  --port-file FILE     write the bound port to FILE after bind\n"
           "  --seed S             bench-trace seed (default 42)\n"
           "  --scale F            bench-trace scale (default 0.05)\n"
           "  --policy P           lru|fifo|s3lru|arc|lirs|lfu|belady (lru)\n"
           "  --mode M             original|proposal|ideal|bypass (proposal)\n"
           "  --capacity-frac F    cache size as fraction of dataset (0.015)\n"
           "  --paper-gb G         ...or as the paper's 2-20 GB axis value\n"
           "  --shards N           shard count = worker threads (default 4)\n"
           "  --overload           enable the fluid overload ladder\n"
           "  --service-rate R     fluid service rate per second (2000)\n"
           "  --flash-burst W      work units injected at epoch starts (0)\n"
           "  --watchdog-timeout S threaded retrain budget in seconds\n"
           "                       (0 = inline deterministic retrains)\n"
           "  --watchdog-retries N retrain retries after timeout (0)\n"
           "  --queue-capacity N   inbound frames buffered per shard (1024)\n"
           "  --retry-when-full    reply RETRY instead of blocking the\n"
           "                       connection reader on a full shard queue\n"
           "  --gather-max N       requests per staged batch, <=64 (64)\n"
           "  --metrics-out FILE   write the final RunReport JSON (+ .prom)\n"
           "                       after shutdown\n";
    return 0;
  }

  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
  const double scale = flags.get("scale", 0.05);
  const Trace trace = load_bench_trace(scale, seed);
  const BenchWorkloadInfo info = describe(trace, scale, seed);
  std::cout << "otacd: trace seed=" << seed << " scale=" << scale << " ("
            << info.requests << " requests, " << info.photos << " photos)\n";

  const IntelligentCache system{trace};

  net::DaemonConfig config;
  config.run.policy =
      policy_kind_from_name(flags.get("policy", std::string{"lru"}));
  config.run.mode = parse_mode(flags.get("mode", std::string{"proposal"}));
  if (flags.has("paper-gb")) {
    config.run.capacity_bytes =
        map_paper_gb(flags.get("paper-gb", 8.0), info.total_object_bytes);
  } else {
    config.run.capacity_bytes = static_cast<std::uint64_t>(
        flags.get("capacity-frac", 0.015) * info.total_object_bytes);
  }
  config.run.shards =
      static_cast<std::uint32_t>(flags.get("shards", std::int64_t{4}));
  config.run.resilience.overload.enabled = flags.get("overload", false);
  config.run.resilience.overload.service_rate_per_s =
      flags.get("service-rate", 2000.0);
  config.run.resilience.overload.flash_crowd_burst =
      flags.get("flash-burst", 0.0);
  config.run.resilience.watchdog.timeout_s = flags.get("watchdog-timeout", 0.0);
  config.run.resilience.watchdog.max_retries = static_cast<std::uint32_t>(
      flags.get("watchdog-retries", std::int64_t{0}));
  config.run.resilience.watchdog.backoff_seed = seed;
  config.host = flags.get("host", std::string{"127.0.0.1"});
  config.port =
      static_cast<std::uint16_t>(flags.get("port", std::int64_t{0}));
  config.queue_capacity = static_cast<std::size_t>(
      flags.get("queue-capacity", std::int64_t{1024}));
  config.retry_when_full = flags.get("retry-when-full", false);
  config.gather_max =
      static_cast<std::size_t>(flags.get("gather-max", std::int64_t{64}));

  net::Daemon daemon{system, config};
  daemon.start();
  std::cout << "otacd: listening on " << config.host << ":" << daemon.port()
            << " (" << admission_mode_name(config.run.mode) << "/"
            << policy_name(config.run.policy) << ", shards "
            << config.run.shards << ")\n"
            << std::flush;

  const std::string port_file = flags.get("port-file", std::string{});
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::cerr << "otacd: cannot open --port-file " << port_file << "\n";
      return 1;
    }
    out << daemon.port() << "\n";
  }

  daemon.wait_for_shutdown();
  daemon.stop();

  const RunResult& result = daemon.result();
  const net::DaemonWireStats wire = daemon.wire_stats();
  std::cout << "otacd: served " << result.stats.requests << " requests ("
            << wire.connections << " connections, " << wire.frames_received
            << " frames in / " << wire.frames_sent << " out, "
            << wire.protocol_errors << " protocol errors)\n"
            << "otacd: hit rate "
            << (result.stats.requests > 0
                    ? static_cast<double>(result.stats.hits) /
                          static_cast<double>(result.stats.requests)
                    : 0.0)
            << ", shed " << result.degradation.shed_requests
            << ", eviction hash 0x" << std::hex
            << result.stats.eviction_hash << std::dec << "\n";

  const std::string metrics_out = flags.get("metrics-out", std::string{});
  if (!metrics_out.empty()) {
    const std::string failed = obs::write_report_files(result.obs, metrics_out);
    if (!failed.empty()) {
      std::cerr << "otacd: cannot open " << failed << "\n";
      return 1;
    }
    std::cout << "otacd: metrics " << metrics_out << " + "
              << obs::prometheus_path_of(metrics_out) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(otac::FlagParser{argc, argv});
  } catch (const std::exception& error) {
    std::cerr << "otacd: " << error.what() << "\n";
    return 1;
  }
}
