// otac_loadgen: open-loop load generator for otacd. Regenerates the same
// seeded bench trace the daemon serves, replays its (compressed) arrival
// process over the wire, and writes BENCH_daemon.json with one client
// cell (offered/achieved rate, reply mix, p50/p99/p999 reply latency) and
// one server cell (the daemon's STATS summary, fetched over the wire).
//
// Examples:
//   otac_loadgen --port-file /tmp/otacd.port --seed 42 --scale 0.02
//                --requests 20000 --offered-rps 40000
//   otac_loadgen --port 7433 --put-every 64 --report-out daemon_obs.json
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench/bench_json.h"
#include "experiments/workloads.h"
#include "net/loadgen.h"
#include "util/flags.h"

namespace {

using namespace otac;

/// The ci.sh handshake: otacd writes its kernel-assigned port to a file
/// after binding; poll for it (bounded) instead of racing the bind.
std::uint16_t port_from_file(const std::string& path) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(path);
    long port = 0;
    if (in >> port && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  throw std::runtime_error("timed out waiting for --port-file " + path);
}

std::string client_cell(const net::LoadgenResult& r) {
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"side\": \"client\", \"requests\": %llu, \"puts\": %llu, "
      "\"replies\": %llu, \"hits\": %llu, \"admitted\": %llu, "
      "\"rejected\": %llu, \"shed\": %llu, \"retries\": %llu, "
      "\"degraded\": %llu, \"errors\": %llu, \"wall_seconds\": %.6f, "
      "\"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}",
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.puts),
      static_cast<unsigned long long>(r.replies),
      static_cast<unsigned long long>(r.hits),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.degraded),
      static_cast<unsigned long long>(r.errors), r.wall_seconds,
      r.offered_rps, r.achieved_rps, r.p50_us, r.p99_us, r.p999_us);
  return buffer;
}

std::string server_cell(const net::SummaryPayload& s) {
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"side\": \"server\", \"requests\": %llu, \"hits\": %llu, "
      "\"insertions\": %llu, \"rejected\": %llu, \"evictions\": %llu, "
      "\"shed_requests\": %llu, \"degraded_admits\": %llu, "
      "\"overload_transitions\": %llu, \"retrain_timeouts\": %llu, "
      "\"trainings\": %llu, \"file_hit_rate\": %.6f, "
      "\"byte_hit_rate\": %.6f, \"mean_latency_us\": %.3f, "
      "\"eviction_hash\": \"0x%016llx\"}",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.insertions),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.shed_requests),
      static_cast<unsigned long long>(s.degraded_admits),
      static_cast<unsigned long long>(s.overload_transitions),
      static_cast<unsigned long long>(s.retrain_timeouts),
      static_cast<unsigned long long>(s.trainings), s.file_hit_rate,
      s.byte_hit_rate, s.mean_latency_us,
      static_cast<unsigned long long>(s.eviction_hash));
  return buffer;
}

int run(const FlagParser& flags) {
  if (flags.has("help")) {
    std::cout
        << "usage: otac_loadgen [flags]\n"
           "  --host H             daemon address (default 127.0.0.1)\n"
           "  --port P             daemon port\n"
           "  --port-file FILE     ...or poll FILE for the port (otacd\n"
           "                       --port-file handshake)\n"
           "  --seed S             bench-trace seed; must match otacd (42)\n"
           "  --scale F            bench-trace scale; must match otacd (0.05)\n"
           "  --requests N         GET frames to send (0 = whole trace)\n"
           "  --offered-rps R      open-loop offered rate (default 20000)\n"
           "  --put-every K        send a PUT every K-th request (0 = none)\n"
           "  --report-out FILE    also fetch the server RunReport JSON and\n"
           "                       write it to FILE\n"
           "  --out FILE           benchmark report path\n"
           "                       (default BENCH_daemon.json)\n";
    return 0;
  }

  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
  const double scale = flags.get("scale", 0.05);
  const Trace trace = load_bench_trace(scale, seed);

  net::LoadgenConfig config;
  config.host = flags.get("host", std::string{"127.0.0.1"});
  const std::string port_file = flags.get("port-file", std::string{});
  if (!port_file.empty()) {
    config.port = port_from_file(port_file);
  } else {
    config.port =
        static_cast<std::uint16_t>(flags.get("port", std::int64_t{0}));
  }
  if (config.port == 0) {
    throw std::invalid_argument("need --port or --port-file");
  }
  config.requests = static_cast<std::uint64_t>(
      flags.get("requests", std::int64_t{0}));
  config.offered_rps = flags.get("offered-rps", 20000.0);
  config.put_every = static_cast<std::uint64_t>(
      flags.get("put-every", std::int64_t{0}));
  const std::string report_out = flags.get("report-out", std::string{});
  config.fetch_report = !report_out.empty();

  std::cout << "otac_loadgen: " << config.host << ":" << config.port
            << " seed=" << seed << " scale=" << scale << " offered_rps="
            << config.offered_rps << "\n";
  const net::LoadgenResult result = run_loadgen(trace, config);

  std::printf(
      "client: sent=%llu replies=%llu hit=%llu admit=%llu reject=%llu "
      "shed=%llu retry=%llu\n"
      "client: achieved %.0f rps, p50 %.0f us, p99 %.0f us, p999 %.0f us\n"
      "server: requests=%llu hit_rate=%.4f shed=%llu trainings=%llu\n",
      static_cast<unsigned long long>(result.requests),
      static_cast<unsigned long long>(result.replies),
      static_cast<unsigned long long>(result.hits),
      static_cast<unsigned long long>(result.admitted),
      static_cast<unsigned long long>(result.rejected),
      static_cast<unsigned long long>(result.shed),
      static_cast<unsigned long long>(result.retries), result.achieved_rps,
      result.p50_us, result.p99_us, result.p999_us,
      static_cast<unsigned long long>(result.server.requests),
      result.server.file_hit_rate,
      static_cast<unsigned long long>(result.server.shed_requests),
      static_cast<unsigned long long>(result.server.trainings));
  if (result.errors != 0) {
    std::cerr << "otac_loadgen: " << result.errors
              << " errors: " << result.error_text << "\n";
  }

  if (!report_out.empty() && !result.server_report_json.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "otac_loadgen: cannot open " << report_out << "\n";
      return 1;
    }
    out << result.server_report_json;
    std::cout << "wrote " << report_out << "\n";
  }

  bench::Report report;
  report.bench = "daemon";
  report.reps = 1;
  report.cells.push_back(client_cell(result));
  report.cells.push_back(server_cell(result.server));
  report.write(flags.get("out", std::string{"BENCH_daemon.json"}));

  return result.errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(otac::FlagParser{argc, argv});
  } catch (const std::exception& error) {
    std::cerr << "otac_loadgen: " << error.what() << "\n";
    return 1;
  }
}
