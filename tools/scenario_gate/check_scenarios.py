#!/usr/bin/env python3
"""Validate BENCH_scenarios.json against checked-in tolerance envelopes.

Usage: check_scenarios.py <BENCH_scenarios.json> <envelopes.json>

The report comes from bench/micro_scenarios (one cell per scenario x
admission mode); the envelopes file (tools/scenario_gate/envelopes.json)
pins, per cell:

  requests          -- exact (the replay is deterministic; a drifted trace
                       is a different experiment, not noise)
  file_hit_rate     -- [lo, hi] window
  byte_write_rate   -- [lo, hi] window
  insertions        -- [lo, hi] window (SSD writes)
  max_shed_requests -- ceiling on load-shedding drops
  p99_latency_us    -- [lo, hi] window

A regression in any scenario's hit rate / writes / p99 therefore fails CI,
as does a scenario missing from either side (a silently dropped scenario
is the failure mode the registry exists to prevent). Exit code 0 = all
cells in-window, 1 = any violation, 2 = usage/IO error.

When a workload or the admission path changes *intentionally*, re-run
`build/bench/micro_scenarios` at scale 1.0 and update envelopes.json in
the same commit, with the regenerated numbers in the PR description.
"""

import json
import sys


def cell_key(cell):
    return f'{cell["scenario"]}/{cell["mode"]}'


def check_window(errors, key, metric, value, window):
    lo, hi = window
    if not lo <= value <= hi:
        errors.append(
            f"{key}: {metric} = {value:g} outside envelope [{lo:g}, {hi:g}]")


def check(report, envelopes):
    """Return a list of violation messages (empty = gate passes)."""
    errors = []
    cells = {}
    for cell in report.get("cells", []):
        key = cell_key(cell)
        if key in cells:
            errors.append(f"{key}: duplicate cell in report")
        cells[key] = cell

    expected = {
        f"{scenario}/{mode}": envelope
        for scenario, modes in envelopes["scenarios"].items()
        for mode, envelope in modes.items()
    }

    for key in sorted(expected.keys() - cells.keys()):
        errors.append(f"{key}: missing from report (scenario dropped?)")
    for key in sorted(cells.keys() - expected.keys()):
        errors.append(f"{key}: present in report but has no envelope")

    for key in sorted(expected.keys() & cells.keys()):
        cell, envelope = cells[key], expected[key]
        if not cell.get("ok", False):
            errors.append(f"{key}: cell reports ok=false")
        if cell["requests"] != envelope["requests"]:
            errors.append(
                f'{key}: requests = {cell["requests"]} != '
                f'{envelope["requests"]} (workload drifted)')
        for metric in ("file_hit_rate", "byte_write_rate", "insertions",
                       "p99_latency_us"):
            check_window(errors, key, metric, cell[metric], envelope[metric])
        if cell["shed_requests"] > envelope["max_shed_requests"]:
            errors.append(
                f'{key}: shed_requests = {cell["shed_requests"]} > '
                f'{envelope["max_shed_requests"]}')
    return errors


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            report = json.load(f)
        with open(argv[2]) as f:
            envelopes = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"scenario-gate: cannot load inputs: {error}", file=sys.stderr)
        return 2

    errors = check(report, envelopes)
    if errors:
        for error in errors:
            print(f"scenario-gate: FAIL {error}")
        print(f"scenario-gate: {len(errors)} violation(s)")
        return 1
    checked = sum(len(modes) for modes in envelopes["scenarios"].values())
    print(f"scenario-gate: OK ({checked} cells within envelopes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
