#!/usr/bin/env python3
"""Tests for the scenario regression gate (check_scenarios.py).

The negative case is the acceptance criterion for the whole gate: an
injected hit-rate regression in the fixture report must fail the check
with a violation naming the metric. Also pins the cross-file invariants —
the checked-in envelopes.json must cover exactly the scenarios registered
in src/scenario/scenario_names.h, in both admission modes.
"""

import json
import pathlib
import re
import sys
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
FIXTURES = HERE / "fixtures"

sys.path.insert(0, str(HERE))
import check_scenarios  # noqa: E402


def load(path):
    with open(path) as f:
        return json.load(f)


class CheckScenariosTest(unittest.TestCase):
    def test_ok_report_passes(self):
        errors = check_scenarios.check(
            load(FIXTURES / "report_ok.json"), load(FIXTURES / "envelope.json"))
        self.assertEqual(errors, [])

    def test_injected_hit_rate_regression_fails(self):
        errors = check_scenarios.check(
            load(FIXTURES / "report_regressed.json"),
            load(FIXTURES / "envelope.json"))
        self.assertEqual(len(errors), 1)
        self.assertIn("toy_scan/Proposal", errors[0])
        self.assertIn("file_hit_rate", errors[0])

    def test_missing_scenario_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"] = [c for c in report["cells"]
                           if c["mode"] != "Proposal"]
        errors = check_scenarios.check(report,
                                       load(FIXTURES / "envelope.json"))
        self.assertTrue(any("missing from report" in e for e in errors))

    def test_unexpected_scenario_fails(self):
        report = load(FIXTURES / "report_ok.json")
        extra = dict(report["cells"][0], scenario="rogue")
        report["cells"].append(extra)
        errors = check_scenarios.check(report,
                                       load(FIXTURES / "envelope.json"))
        self.assertTrue(any("no envelope" in e for e in errors))

    def test_requests_drift_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][0]["requests"] += 1
        errors = check_scenarios.check(report,
                                       load(FIXTURES / "envelope.json"))
        self.assertTrue(any("workload drifted" in e for e in errors))

    def test_shed_ceiling_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][1]["shed_requests"] = 11
        errors = check_scenarios.check(report,
                                       load(FIXTURES / "envelope.json"))
        self.assertTrue(any("shed_requests" in e for e in errors))

    def test_ok_false_cell_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][0]["ok"] = False
        errors = check_scenarios.check(report,
                                       load(FIXTURES / "envelope.json"))
        self.assertTrue(any("ok=false" in e for e in errors))

    def test_main_exit_codes(self):
        self.assertEqual(
            check_scenarios.main(["check", str(FIXTURES / "report_ok.json"),
                                  str(FIXTURES / "envelope.json")]), 0)
        self.assertEqual(
            check_scenarios.main(
                ["check", str(FIXTURES / "report_regressed.json"),
                 str(FIXTURES / "envelope.json")]), 1)
        self.assertEqual(check_scenarios.main(["check"]), 2)
        self.assertEqual(
            check_scenarios.main(["check", "/nonexistent.json",
                                  str(FIXTURES / "envelope.json")]), 2)


class EnvelopeRegistrySyncTest(unittest.TestCase):
    """The checked-in envelopes must track the C++ scenario registry."""

    def registered_names(self):
        header = (REPO / "src" / "scenario" / "scenario_names.h").read_text()
        body = header[header.index("kKnownScenarios"):]
        body = body[:body.index("}")]
        return re.findall(r'"([^"]+)"', body)

    def test_envelopes_cover_every_registered_scenario(self):
        envelopes = load(HERE / "envelopes.json")["scenarios"]
        self.assertEqual(sorted(envelopes.keys()),
                         sorted(self.registered_names()))
        for name, modes in envelopes.items():
            self.assertEqual(sorted(modes.keys()), ["Original", "Proposal"],
                             f"scenario {name} must pin both admission modes")

    def test_envelope_windows_are_sane(self):
        envelopes = load(HERE / "envelopes.json")["scenarios"]
        for name, modes in envelopes.items():
            for mode, env in modes.items():
                for metric in ("file_hit_rate", "byte_write_rate",
                               "insertions", "p99_latency_us"):
                    lo, hi = env[metric]
                    self.assertLessEqual(lo, hi, f"{name}/{mode} {metric}")
                self.assertGreater(env["requests"], 0)
                self.assertGreaterEqual(env["max_shed_requests"], 0)


if __name__ == "__main__":
    unittest.main()
