#!/usr/bin/env python3
"""Validate BENCH_daemon.json against checked-in serving envelopes.

Usage: check_daemon.py <BENCH_daemon.json> <envelopes.json>

The report comes from tools/otac_loadgen driving tools/otacd over
loopback with a fixed seed/scale/request count (the `daemon` CI job). It
has exactly two cells, tagged "side": "client" (frames sent, reply mix,
p50/p99/p999 reply latency, achieved rate) and "side": "server" (the
daemon's own CacheStats summary fetched over the wire).

The envelopes file (tools/daemon_gate/envelopes.json) pins:

  client.requests       -- exact (the loadgen sends a fixed count)
  client.replies        -- exact (every GET/PUT must be answered)
  client.max_*          -- ceilings on errors / retries / shed replies
  client.min_achieved_rps, client.p50/p99/p999_us windows
                        -- throughput/latency envelope; generous because
                           CI machines are shared, but a wedged daemon
                           (e.g. a worker deadlock serializing shards)
                           still lands far outside it
  server.requests       -- exact (server-side replay is deterministic)
  server.file_hit_rate  -- [lo, hi] window
  server.trainings      -- [lo, hi] window (threaded retrains may time
                           out on a loaded machine; a daemon that never
                           trains is broken)
  server.max_shed_requests, server.max_retrain_timeouts -- ceilings
  server.eviction_hash_nonzero -- the eviction fingerprint must be live

A silently-empty report (no cells, or a cell missing its schema keys)
fails, as does an injected p99 regression — both are pinned by
check_daemon_test.py. Exit code 0 = in-envelope, 1 = any violation,
2 = usage/IO error.

When the serving path changes *intentionally*, re-run `scripts/ci.sh
daemon` locally and update envelopes.json in the same commit.
"""

import json
import sys

CLIENT_KEYS = (
    "requests", "puts", "replies", "hits", "admitted", "rejected", "shed",
    "retries", "degraded", "errors", "wall_seconds", "offered_rps",
    "achieved_rps", "p50_us", "p99_us", "p999_us",
)
SERVER_KEYS = (
    "requests", "hits", "insertions", "rejected", "evictions",
    "shed_requests", "degraded_admits", "overload_transitions",
    "retrain_timeouts", "trainings", "file_hit_rate", "byte_hit_rate",
    "mean_latency_us", "eviction_hash",
)


def check_window(errors, side, metric, value, window):
    lo, hi = window
    if not lo <= value <= hi:
        errors.append(
            f"{side}: {metric} = {value:g} outside envelope [{lo:g}, {hi:g}]")


def check_ceiling(errors, side, metric, value, ceiling):
    if value > ceiling:
        errors.append(f"{side}: {metric} = {value} > {ceiling}")


def check(report, envelopes):
    """Return a list of violation messages (empty = gate passes)."""
    errors = []
    cells = report.get("cells", [])
    if not cells:
        return ["report has no cells (silently-empty artifact)"]

    by_side = {}
    for cell in cells:
        side = cell.get("side")
        if side in by_side:
            errors.append(f"{side}: duplicate cell in report")
        by_side[side] = cell

    for side, keys in (("client", CLIENT_KEYS), ("server", SERVER_KEYS)):
        cell = by_side.get(side)
        if cell is None:
            errors.append(f"{side}: cell missing from report")
            continue
        missing = [k for k in keys if k not in cell]
        if missing:
            errors.append(f"{side}: cell missing keys {missing}")
    if errors:
        return errors

    client, server = by_side["client"], by_side["server"]
    env_client, env_server = envelopes["client"], envelopes["server"]

    if client["requests"] != env_client["requests"]:
        errors.append(
            f'client: requests = {client["requests"]} != '
            f'{env_client["requests"]} (loadgen schedule drifted)')
    expected_replies = client["requests"] + client["puts"]
    if client["replies"] != expected_replies:
        errors.append(
            f'client: replies = {client["replies"]} != {expected_replies} '
            f"(sent frames unanswered)")
    check_ceiling(errors, "client", "errors", client["errors"],
                  env_client["max_errors"])
    check_ceiling(errors, "client", "retries", client["retries"],
                  env_client["max_retries"])
    check_ceiling(errors, "client", "shed", client["shed"],
                  env_client["max_shed"])
    if client["achieved_rps"] < env_client["min_achieved_rps"]:
        errors.append(
            f'client: achieved_rps = {client["achieved_rps"]:g} < '
            f'{env_client["min_achieved_rps"]:g}')
    for metric in ("p50_us", "p99_us", "p999_us"):
        check_window(errors, "client", metric, client[metric],
                     env_client[metric])

    if server["requests"] != env_server["requests"]:
        errors.append(
            f'server: requests = {server["requests"]} != '
            f'{env_server["requests"]} (server-side replay drifted)')
    check_window(errors, "server", "file_hit_rate", server["file_hit_rate"],
                 env_server["file_hit_rate"])
    check_window(errors, "server", "trainings", server["trainings"],
                 env_server["trainings"])
    check_ceiling(errors, "server", "shed_requests", server["shed_requests"],
                  env_server["max_shed_requests"])
    check_ceiling(errors, "server", "retrain_timeouts",
                  server["retrain_timeouts"],
                  env_server["max_retrain_timeouts"])
    if env_server.get("eviction_hash_nonzero", False):
        if int(server["eviction_hash"], 16) == 0:
            errors.append(
                "server: eviction_hash is zero (eviction fingerprint dead)")
    return errors


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            report = json.load(f)
        with open(argv[2]) as f:
            envelopes = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"daemon-gate: cannot load inputs: {error}", file=sys.stderr)
        return 2

    errors = check(report, envelopes)
    if errors:
        for error in errors:
            print(f"daemon-gate: FAIL {error}")
        print(f"daemon-gate: {len(errors)} violation(s)")
        return 1
    print("daemon-gate: OK (client and server cells within envelopes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
