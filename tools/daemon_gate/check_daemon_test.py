#!/usr/bin/env python3
"""Tests for the daemon serving-envelope gate (check_daemon.py).

Two negative cases are the acceptance criteria for the whole gate: an
injected client-side p99 regression must fail with a violation naming
the metric, and a silently-empty report (no cells, or a cell stripped of
its schema keys) must fail rather than pass vacuously.
"""

import json
import pathlib
import sys
import unittest

HERE = pathlib.Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

sys.path.insert(0, str(HERE))
import check_daemon  # noqa: E402


def load(path):
    with open(path) as f:
        return json.load(f)


def envelope():
    return load(FIXTURES / "envelope.json")


class CheckDaemonTest(unittest.TestCase):
    def test_ok_report_passes(self):
        errors = check_daemon.check(load(FIXTURES / "report_ok.json"),
                                    envelope())
        self.assertEqual(errors, [])

    def test_injected_p99_regression_fails(self):
        errors = check_daemon.check(
            load(FIXTURES / "report_p99_regressed.json"), envelope())
        self.assertEqual(len(errors), 1)
        self.assertIn("p99_us", errors[0])
        self.assertIn("client", errors[0])

    def test_empty_report_fails(self):
        errors = check_daemon.check(load(FIXTURES / "report_empty.json"),
                                    envelope())
        self.assertTrue(any("no cells" in e for e in errors))

    def test_missing_schema_key_fails(self):
        report = load(FIXTURES / "report_ok.json")
        del report["cells"][1]["eviction_hash"]
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("missing keys" in e and "eviction_hash" in e
                            for e in errors))

    def test_missing_server_cell_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"] = [c for c in report["cells"]
                           if c["side"] != "server"]
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("server: cell missing" in e for e in errors))

    def test_unanswered_frames_fail(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][0]["replies"] -= 7
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("unanswered" in e for e in errors))

    def test_request_count_drift_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][0]["requests"] += 1
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("schedule drifted" in e for e in errors))

    def test_server_replay_drift_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][1]["requests"] -= 1
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("replay drifted" in e for e in errors))

    def test_transport_error_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][0]["errors"] = 1
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("errors = 1 > 0" in e for e in errors))

    def test_no_trainings_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][1]["trainings"] = 0
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("trainings" in e for e in errors))

    def test_zero_eviction_hash_fails(self):
        report = load(FIXTURES / "report_ok.json")
        report["cells"][1]["eviction_hash"] = "0x0000000000000000"
        errors = check_daemon.check(report, envelope())
        self.assertTrue(any("fingerprint dead" in e for e in errors))

    def test_checked_in_envelopes_are_loadable(self):
        live = load(HERE / "envelopes.json")
        for side in ("client", "server"):
            self.assertIn(side, live)
        # Every key the checker reads must be present so CI never fails
        # on a KeyError instead of a clean violation message.
        for key in ("requests", "max_errors", "max_retries", "max_shed",
                    "min_achieved_rps", "p50_us", "p99_us", "p999_us"):
            self.assertIn(key, live["client"])
        for key in ("requests", "file_hit_rate", "trainings",
                    "max_shed_requests", "max_retrain_timeouts"):
            self.assertIn(key, live["server"])


if __name__ == "__main__":
    unittest.main()
