#include "tools/chaos/chaos.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "util/failpoint_names.h"

namespace otac::chaos {
namespace {

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

[[nodiscard]] fail::Spec once_spec() {
  fail::Spec spec;
  spec.trigger = fail::Trigger::once;
  return spec;
}

[[nodiscard]] fail::Spec every_nth_spec(std::uint64_t n) {
  fail::Spec spec;
  spec.trigger = fail::Trigger::every_nth;
  spec.n = n;
  return spec;
}

[[nodiscard]] fail::Spec window_spec(std::uint64_t from, std::uint64_t to) {
  fail::Spec spec;
  spec.trigger = fail::Trigger::window;
  spec.from = from;
  spec.to = to;
  return spec;
}

/// Sub-millisecond backoff so chaos replays spend their wall-clock on
/// serving, not on sleeping between storage retries.
[[nodiscard]] BackoffConfig fast_backoff() {
  BackoffConfig backoff;
  backoff.base_s = 1e-6;
  backoff.cap_s = 1e-4;
  return backoff;
}

/// Every registered failpoint armed with a self-clearing trigger, plus
/// the full resilience layer to absorb them. The checkpoint.* names only
/// evaluate inside CheckpointManager, hence the after-replay round-trip.
[[nodiscard]] Scenario make_failpoint_storm() {
  Scenario s;
  s.name = "failpoint_storm";
  s.description =
      "every registered failpoint fires at least once; the replay and a "
      "checkpoint round-trip complete and fully recover";
  // Barrier 1: two throwing attempts, then a 250ms hang, then success —
  // watchdog retries (inline) absorb all three.
  s.faults.push_back({"trainer.train.fail", window_spec(1, 2)});
  s.faults.push_back({"trainer.train.hang", window_spec(1, 1)});
  // Serving-path faults: an SSD-write burst (consecutive evaluations both
  // exhaust the per-insert retry budget and then clear) and periodic
  // flash-crowd injections large enough to shed the injecting request.
  s.faults.push_back({"storage.ssd.write_error", window_spec(50, 60)});
  s.faults.push_back({"chaos.flash_crowd", every_nth_spec(997)});
  // One transient fault per checkpoint crash surface; the save retry
  // budget below outlasts the five throwing sites.
  s.faults.push_back({"checkpoint.write.bitflip", once_spec()});
  s.faults.push_back({"checkpoint.write.open_fail", once_spec()});
  s.faults.push_back({"checkpoint.write.torn", once_spec()});
  s.faults.push_back({"checkpoint.write.crash", once_spec()});
  s.faults.push_back({"checkpoint.rotate.fail", once_spec()});
  s.faults.push_back({"checkpoint.rename.fail", once_spec()});
  s.faults.push_back({"checkpoint.load.io", once_spec()});

  s.resilience.overload.enabled = true;
  s.resilience.overload.flash_crowd_burst = 150.0;
  s.resilience.watchdog.max_retries = 3;
  s.resilience.watchdog.backoff = fast_backoff();
  s.resilience.checkpoint.max_retries = 8;
  s.resilience.checkpoint.backoff = fast_backoff();
  s.resilience.ssd_write_max_retries = 2;
  s.checkpoint = CheckpointPhase::after_replay;
  return s;
}

/// One retrain throws once; a single watchdog retry reproduces the exact
/// tree (the failpoint sits before any trainer state mutation), so the
/// whole replay must be bit-identical to the fault-free golden.
[[nodiscard]] Scenario make_retrain_transient() {
  Scenario s;
  s.name = "retrain_transient";
  s.description =
      "transient trainer failure absorbed by one watchdog retry; replay "
      "bit-identical to the fault-free golden";
  s.faults.push_back({"trainer.train.fail", once_spec()});
  s.resilience.watchdog.max_retries = 2;
  s.resilience.watchdog.backoff = fast_backoff();
  s.golden_identical = true;
  s.max_shed_rate = 0.0;  // overload layer off: nothing may shed
  return s;
}

/// A mid-schedule retrain hangs past the threaded watchdog's timeout:
/// the barrier abandons it (shards serve the last-good model) and the
/// replay — which runs barriers far faster than the 250ms hang — keeps
/// going, buffering samples at busy barriers. The window sits at the
/// third trigger so the first two barriers prove clean threaded training
/// deterministically, regardless of how the replay's wall-clock races
/// the hang.
[[nodiscard]] Scenario make_retrain_hang() {
  Scenario s;
  s.name = "retrain_hang";
  s.description =
      "a hung retrain is abandoned by the threaded watchdog; earlier "
      "barriers train clean and serving never stalls";
  s.faults.push_back({"trainer.train.hang", window_spec(3, 3)});
  // The hang failpoint sleeps 250ms; a 200ms timeout abandons it while
  // still dwarfing a clean fit on the chaos workload (sanitizers
  // included).
  s.resilience.watchdog.timeout_s = 0.2;
  s.max_shed_rate = 0.0;
  return s;
}

/// A checkpointer thread cycles save/load against scripted corruption
/// while all shards keep serving — the registry, the retry loop, and the
/// generation fallback all cross threads here.
[[nodiscard]] Scenario make_checkpoint_corruption() {
  Scenario s;
  s.name = "checkpoint_corruption_mid_serve";
  s.description =
      "checkpoint save/load cycles absorb scripted corruption while the "
      "sharded replay keeps serving";
  // Distinct early-evaluation windows per crash surface: the first few
  // save/load cycles hit faults (bounded retries absorb them), later
  // cycles run clean.
  s.faults.push_back({"checkpoint.write.open_fail", window_spec(1, 1)});
  s.faults.push_back({"checkpoint.write.bitflip", window_spec(2, 3)});
  s.faults.push_back({"checkpoint.write.torn", window_spec(4, 4)});
  s.faults.push_back({"checkpoint.rotate.fail", window_spec(3, 3)});
  s.faults.push_back({"checkpoint.rename.fail", window_spec(5, 5)});
  s.faults.push_back({"checkpoint.write.crash", window_spec(6, 6)});
  s.faults.push_back({"checkpoint.load.io", window_spec(1, 2)});
  s.resilience.checkpoint.max_retries = 6;
  s.resilience.checkpoint.backoff = fast_backoff();
  s.checkpoint = CheckpointPhase::during_replay;
  s.max_shed_rate = 0.0;
  return s;
}

/// Flash-crowd bursts push one shard's queue through Degraded into
/// Shedding; the fluid queue drains back to Normal once the window
/// closes. threads=1 pins the failpoint evaluation order, so the shed
/// and transition counts are a pure function of the trace.
[[nodiscard]] Scenario make_flash_crowd() {
  Scenario s;
  s.name = "flash_crowd";
  s.description =
      "flash-crowd injections walk a shard Normal->Degraded->Shedding and "
      "back; sheds stay bounded and deterministic";
  s.faults.push_back({"chaos.flash_crowd", window_spec(1500, 1502)});
  s.resilience.overload.enabled = true;
  s.resilience.overload.service_rate_per_s = 0.5;
  s.resilience.overload.flash_crowd_burst = 150.0;
  s.threads = 1;  // deterministic evaluation order across shards
  s.max_shed_rate = 0.05;
  return s;
}

}  // namespace

bool failpoints_compiled() noexcept {
#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> scenarios = {
      make_failpoint_storm(),   make_retrain_transient(),
      make_retrain_hang(),      make_checkpoint_corruption(),
      make_flash_crowd(),
  };
  return scenarios;
}

const Scenario& find_scenario(std::string_view name) {
  for (const Scenario& scenario : builtin_scenarios()) {
    if (scenario.name == name) return scenario;
  }
  std::string message = "unknown chaos scenario: ";
  message += name;
  message += " (known:";
  for (const Scenario& scenario : builtin_scenarios()) {
    message += ' ';
    message += scenario.name;
  }
  message += ')';
  throw std::invalid_argument(message);
}

void arm(const Scenario& scenario) {
  fail::Registry& registry = fail::Registry::instance();
  registry.disable_all();
  for (const FaultSpec& fault : scenario.faults) {
    registry.enable(fault.failpoint, fault.spec);  // throws on unknown name
  }
}

void disarm() { fail::Registry::instance().disable_all(); }

Harness::Harness(Trace trace, double capacity_fraction)
    : trace_(std::move(trace)), system_(trace_), sharded_(system_) {
  capacity_bytes_ = static_cast<std::uint64_t>(system_.total_object_bytes() *
                                               capacity_fraction);
  hit_rate_estimate_ = system_.estimate_hit_rate(capacity_bytes_);
}

RunConfig Harness::base_config(const Scenario& scenario) const {
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes = capacity_bytes_;
  config.mode = AdmissionMode::proposal;
  config.hit_rate_estimate = hit_rate_estimate_;
  config.shards = scenario.shards;
  config.threads = scenario.threads;
  config.resilience = scenario.resilience;
  return config;
}

ScenarioReport Harness::run(const Scenario& scenario) const {
  ScenarioReport report;
  report.scenario = scenario.name;
  const RunConfig config = base_config(scenario);

  if (scenario.golden_identical) {
    disarm();
    const auto golden_start = std::chrono::steady_clock::now();
    report.golden = sharded_.run(config);
    report.golden_seconds = seconds_since(golden_start);
    report.golden_run = true;
  }

  std::unique_ptr<CheckpointManager> manager;
  std::filesystem::path checkpoint_dir;
  if (scenario.checkpoint != CheckpointPhase::none) {
    checkpoint_dir = std::filesystem::temp_directory_path() /
                     ("otac_chaos_" + scenario.name);
    std::filesystem::remove_all(checkpoint_dir);
    manager = std::make_unique<CheckpointManager>(checkpoint_dir.string());
    manager->configure_retry(scenario.resilience.checkpoint);
  }
  ClassifierSnapshot snapshot;
  snapshot.m = 1000.0;
  snapshot.h = 0.5;
  snapshot.p = 0.2;
  snapshot.cost_v = 2.0;

  arm(scenario);

  std::atomic<bool> serving_done{false};
  std::uint64_t checkpointer_cycles = 0;  // written only before the join
  std::thread checkpointer;
  if (scenario.checkpoint == CheckpointPhase::during_replay) {
    checkpointer = std::thread([&] {
      while (!serving_done.load(std::memory_order_acquire)) {
        (void)manager->save_with_retry(snapshot);
        (void)manager->load_with_retry();
        ++checkpointer_cycles;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  const auto faulty_start = std::chrono::steady_clock::now();
  report.faulty = sharded_.run(config);
  report.faulty_seconds = seconds_since(faulty_start);
  serving_done.store(true, std::memory_order_release);
  if (checkpointer.joinable()) checkpointer.join();
  report.checkpoint_cycles = checkpointer_cycles;

  if (scenario.checkpoint == CheckpointPhase::after_replay) {
    // Two cycles, not one: rotation (current -> previous) only happens
    // once a current generation exists, so the rotate failpoint needs a
    // second save to evaluate at all.
    for (int cycle = 0; cycle < 2; ++cycle) {
      (void)manager->save_with_retry(snapshot);
      (void)manager->load_with_retry();
      ++report.checkpoint_cycles;
    }
  }

  for (const FaultSpec& fault : scenario.faults) {
    report.failpoint_fires +=
        fail::Registry::instance().fires(fault.failpoint);
  }
  disarm();

  if (manager != nullptr) {
    // Faults cleared: the store must come all the way back — a clean save
    // landing a current generation that loads as such. A manager driven
    // into terminal read-only state fails this on purpose (the builtin
    // scenarios budget retries to outlast their fault windows).
    const bool saved = manager->save_with_retry(snapshot);
    const CheckpointLoad loaded = manager->load_with_retry();
    report.checkpoint_recovered =
        saved && loaded.origin == CheckpointOrigin::current;
    std::filesystem::remove_all(checkpoint_dir);
  }

  report.completed = report.faulty.stats.requests == trace_.requests.size();
  const std::uint64_t requests = report.faulty.stats.requests;
  report.shed_rate =
      requests == 0 ? 0.0
                    : static_cast<double>(
                          report.faulty.degradation.shed_requests) /
                          static_cast<double>(requests);
  report.shed_rate_bounded = report.shed_rate <= scenario.max_shed_rate;
  if (report.golden_run) {
    report.stats_identical = report.faulty.stats == report.golden.stats &&
                             report.faulty.daily == report.golden.daily &&
                             report.faulty.trainings == report.golden.trainings;
  }
  return report;
}

}  // namespace otac::chaos
