// Chaos-schedule harness: deterministic, registry-pinned fault scenarios
// driven through full sharded replays (core/sharded_cache.h), asserting
// the overload-resilience invariants end to end:
//
//   - completion: every scenario finishes the whole trace — no deadlock,
//     no crash — under ASan/UBSan and TSan (ctest label `chaos`);
//   - bounded shedding: load-shedding drops stay observable
//     (DegradationCounters::shed_requests) and under the scenario's
//     declared ceiling;
//   - recovery: once faults clear (every trigger is a bounded window,
//     `once`, or `every_nth` — nothing fires forever) queues drain and
//     the system returns to normal serving; for pure-trainer faults the
//     replay is *bit-identical* to the fault-free golden (same CacheStats
//     including the eviction-sequence hash).
//
// Scenarios are data, not code: a Scenario lists (failpoint name,
// fail::Spec) pairs — arm() rejects any name missing from
// util/failpoint_names.h, so a renamed failpoint breaks the chaos suite
// loudly — plus the ResilienceConfig the replay runs under. builtin
// scenarios cover the storm (every registered failpoint firing), a
// transient retrain fault absorbed by watchdog retry, a hung retrain
// abandoned by the threaded watchdog, checkpoint corruption while serving,
// and a flash-crowd overload burst.
//
// Consumed by tests/chaos/chaos_replay_test.cpp (assertions) and
// bench/micro_chaos_replay.cpp (BENCH_chaos.json for CI).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sharded_cache.h"
#include "trace/trace.h"
#include "util/failpoint.h"

namespace otac::chaos {

/// True when OTAC_FAILPOINT_* sites are compiled in — scenarios degenerate
/// to fault-free replays without them (tests skip, the bench reports it).
[[nodiscard]] bool failpoints_compiled() noexcept;

/// One armed failpoint: a registered name plus its trigger spec. Every
/// builtin scenario uses self-clearing triggers (once / every_nth /
/// window), never `always` — "faults clear" is part of the contract.
struct FaultSpec {
  std::string failpoint;
  fail::Spec spec{};
};

/// When (and whether) the scenario cycles the checkpoint store, so the
/// checkpoint.* failpoints actually evaluate:
///  - after_replay: one save/load round-trip once the replay finishes;
///  - during_replay: a dedicated checkpointer thread cycles save/load
///    concurrently with the serving shards (the TSan-relevant shape).
enum class CheckpointPhase { none, after_replay, during_replay };

struct Scenario {
  std::string name;
  std::string description;
  std::vector<FaultSpec> faults;
  ResilienceConfig resilience{};
  std::size_t shards = 4;
  /// 0 = one worker per shard. Scenarios that pin exact counters use 1:
  /// with a single worker the failpoint evaluation order — and therefore
  /// every every_nth/window firing — is a pure function of the trace.
  std::size_t threads = 0;
  /// Expect the faulty replay's CacheStats/daily/trainings to be
  /// bit-identical to a fault-free run of the same configuration (the
  /// harness runs the golden only for these scenarios).
  bool golden_identical = false;
  CheckpointPhase checkpoint = CheckpointPhase::none;
  /// Ceiling on shed_requests / requests asserted by the suite.
  double max_shed_rate = 0.05;
};

/// The five builtin scenarios: failpoint_storm, retrain_transient,
/// retrain_hang, checkpoint_corruption_mid_serve, flash_crowd.
[[nodiscard]] const std::vector<Scenario>& builtin_scenarios();

/// Lookup by name; throws std::invalid_argument listing the known names.
[[nodiscard]] const Scenario& find_scenario(std::string_view name);

/// disable_all() then enable every fault in the scenario. Throws on a
/// name not present in util/failpoint_names.h (registry-pinned).
void arm(const Scenario& scenario);

/// disable_all() — faults cleared.
void disarm();

struct ScenarioReport {
  std::string scenario;
  bool completed = false;  ///< replay returned (always true if run() did)

  RunResult faulty;
  double faulty_seconds = 0.0;

  /// Fault-free baseline under the same config; only populated when
  /// Scenario::golden_identical asked for the comparison.
  bool golden_run = false;
  RunResult golden;
  double golden_seconds = 0.0;
  /// stats (incl. eviction hash) + daily confusion matrices + trainings
  /// all bit-identical to the golden. Meaningful iff golden_run.
  bool stats_identical = false;

  double shed_rate = 0.0;  ///< shed_requests / requests
  bool shed_rate_bounded = false;
  /// Total Registry fires across the scenario's armed failpoints.
  std::uint64_t failpoint_fires = 0;

  /// Checkpoint store survived: after faults cleared, a save+load
  /// round-trip landed a current generation (trivially true when the
  /// scenario exercises no checkpointing).
  bool checkpoint_recovered = true;
  std::uint64_t checkpoint_cycles = 0;  ///< save/load cycles executed
};

/// Owns the workload (trace + oracle + memoized hit-rate estimate) and
/// replays scenarios against it. Construction is the expensive part;
/// run() is two replays at most.
class Harness {
 public:
  /// `capacity_fraction` scales total_object_bytes into the cache size.
  explicit Harness(Trace trace, double capacity_fraction = 0.02);

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] ScenarioReport run(const Scenario& scenario) const;

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

 private:
  [[nodiscard]] RunConfig base_config(const Scenario& scenario) const;

  Trace trace_;
  IntelligentCache system_;
  ShardedCache sharded_;
  std::uint64_t capacity_bytes_ = 0;
  double hit_rate_estimate_ = 0.0;
};

}  // namespace otac::chaos
