// Photo popularity synthesis: latent scores, one-time calibration, and
// per-photo access-count assignment.
//
// Every catalog photo receives a latent popularity score
//   z = wq*owner_quality + wt*type_popularity + wh*upload_hour_boost
//       + wn*noise + wm*log(window_mass)
// (standardized over the population). One-time photos are chosen with
// probability 1 - sigmoid((z - theta)/tau); theta is solved by bisection so
// the realized one-time object fraction matches the target *exactly in
// expectation over the population scores*. Multi-access photos draw a
// heavy-tailed count scaled by exp(beta*z); a second bisection on a global
// multiplier pins the mean access count so one-time accesses form the
// target share of the trace.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/photo_catalog.h"
#include "trace/workload_config.h"
#include "util/rng.h"

namespace otac {

/// Lomax (Pareto-II) CDF with given shape/scale; support x >= 0.
[[nodiscard]] double lomax_cdf(double x, double shape, double scale) noexcept;

/// Inverse of lomax_cdf on [0, 1).
[[nodiscard]] double lomax_cdf_inverse(double u, double shape,
                                       double scale) noexcept;

[[nodiscard]] double sigmoid(double x) noexcept;

struct PopularityAssignment {
  std::vector<float> score;          // standardized latent score per photo
  std::vector<std::uint32_t> count;  // accesses within the window, >= 1
  double theta = 0.0;                // one-time decision threshold
  double count_scale = 0.0;          // calibrated global count multiplier
};

class PopularityModel {
 public:
  /// window_mass[i] = probability mass of the access-time kernel falling
  /// inside the observation window for photo i (in (0, 1]).
  PopularityAssignment assign(const WorkloadConfig& config,
                              const PhotoCatalog& catalog,
                              const std::vector<double>& window_mass,
                              Rng& rng) const;

  /// Hour-of-day upload boost in [-1, 1]: photos uploaded near the diurnal
  /// peak tend to catch more eyeballs. Exposed for tests.
  [[nodiscard]] static double upload_hour_boost(int hour) noexcept;
};

/// Find x in [lo, hi] with f(x) ~= target for nondecreasing f (bisection).
[[nodiscard]] double bisect_nondecreasing(double lo, double hi, double target,
                                          int iterations,
                                          const std::function<double(double)>& f);

}  // namespace otac
