#include "trace/photo_catalog.h"

namespace otac {

double PhotoCatalog::mean_photo_size() const noexcept {
  if (photos_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& photo : photos_) total += photo.size_bytes;
  return total / static_cast<double>(photos_.size());
}

}  // namespace otac
