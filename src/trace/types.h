// Core datatypes for the synthetic QQPhoto-style workload.
//
// The paper's trace records photo accesses tagged with photo metadata
// (type = resolution x format, size, upload time, owner) and request
// context (timestamp, terminal type). Ids are dense so catalogs index by
// vector instead of hash maps.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/sim_time.h"

namespace otac {

using PhotoId = std::uint32_t;
using UserId = std::uint32_t;

inline constexpr PhotoId kInvalidPhoto = static_cast<PhotoId>(-1);

/// Six resolutions (§3.2.1): a < b < c < m < l < o ("original").
enum class Resolution : std::uint8_t { a = 0, b, c, m, l, o };
inline constexpr int kResolutionCount = 6;

/// Two picture specifications, encoded 0 (png) and 5 (jpg) as in the paper.
enum class PhotoFormat : std::uint8_t { png = 0, jpg = 1 };
inline constexpr int kFormatCount = 2;

/// Combined photo type: 12 discrete values (a0, a5, b0, ..., l5, o0, o5).
/// The discretized codes 1..12 required by §3.2.3 come from type_code().
struct PhotoType {
  Resolution resolution = Resolution::a;
  PhotoFormat format = PhotoFormat::png;

  friend constexpr bool operator==(PhotoType, PhotoType) = default;
};

inline constexpr int kPhotoTypeCount = kResolutionCount * kFormatCount;

[[nodiscard]] constexpr int type_index(PhotoType t) noexcept {
  return static_cast<int>(t.resolution) * kFormatCount +
         static_cast<int>(t.format);
}

/// Discrete value 1..12 used as the ML feature (§3.2.3).
[[nodiscard]] constexpr int type_code(PhotoType t) noexcept {
  return type_index(t) + 1;
}

[[nodiscard]] constexpr PhotoType type_from_index(int index) noexcept {
  return PhotoType{static_cast<Resolution>(index / kFormatCount),
                   static_cast<PhotoFormat>(index % kFormatCount)};
}

/// Human-readable name, e.g. "l5" (resolution letter + spec digit).
[[nodiscard]] constexpr std::string_view type_name(PhotoType t) noexcept {
  constexpr std::array<std::string_view, kPhotoTypeCount> names = {
      "a0", "a5", "b0", "b5", "c0", "c5", "m0", "m5", "l0", "l5", "o0", "o5"};
  return names[static_cast<std::size_t>(type_index(t))];
}

enum class TerminalType : std::uint8_t { pc = 0, mobile = 1 };

/// Static per-photo metadata, fixed at upload time.
struct PhotoMeta {
  UserId owner = 0;
  PhotoType type{};
  std::uint32_t size_bytes = 0;
  SimTime upload_time{};
};

/// Static per-owner metadata. Dynamic aggregates (views so far) live in the
/// online feature extractor, not here.
struct OwnerMeta {
  std::uint32_t active_friends = 0;  // interactions in the recent past
  float activity = 0.0F;             // upload propensity (relative)
  float quality = 0.0F;              // latent attractiveness of this owner's photos
  std::uint32_t photo_count = 0;
};

/// One access in the trace.
struct Request {
  SimTime time{};
  PhotoId photo = kInvalidPhoto;
  TerminalType terminal = TerminalType::pc;
};

static_assert(sizeof(Request) <= 16, "Request should stay compact");

}  // namespace otac
