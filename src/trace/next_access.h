// Oracle next-access information, computed by one backward pass.
//
// Used by (a) the Belady offline-optimal policy, (b) the "Ideal" classifier
// (100%-accurate admission), and (c) the trainer's ground-truth labeling of
// one-time-access samples via reaccess distance (§4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace otac {

inline constexpr std::uint64_t kNoNextAccess =
    std::numeric_limits<std::uint64_t>::max();

struct NextAccessInfo {
  /// next[i] = index of the next request touching the same photo, or
  /// kNoNextAccess when request i is the photo's final appearance.
  std::vector<std::uint64_t> next;

  /// prev_seen[i] = true when the photo of request i appeared earlier in the
  /// trace (i.e. this is not its first access).
  std::vector<bool> prev_seen;

  /// Reaccess distance (number of successive accesses until the photo is
  /// touched again, §4.3); kNoNextAccess when never reaccessed.
  [[nodiscard]] std::uint64_t reaccess_distance(std::uint64_t i) const noexcept {
    return next[i] == kNoNextAccess ? kNoNextAccess : next[i] - i;
  }
};

/// O(n) time, O(#photos) auxiliary space.
[[nodiscard]] NextAccessInfo compute_next_access(const Trace& trace);

}  // namespace otac
