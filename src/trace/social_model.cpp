#include "trace/social_model.h"

#include <cmath>
#include <stdexcept>

namespace otac {

std::vector<OwnerMeta> generate_owners(const WorkloadConfig& config, Rng& rng) {
  std::vector<OwnerMeta> owners;
  owners.reserve(config.num_owners);

  const double coupling = config.friends_activity_coupling;
  if (coupling < 0.0 || coupling > 1.0) {
    throw std::invalid_argument("friends_activity_coupling must be in [0,1]");
  }
  const double orthogonal = std::sqrt(1.0 - coupling * coupling);
  constexpr double kQualityCoupling = 0.5;  // corr(quality, social standing)
  const double quality_orthogonal =
      std::sqrt(1.0 - kQualityCoupling * kQualityCoupling);
  constexpr double kFriendsSigma = 0.9;
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); offset keeps the mean at
  // config.mean_active_friends.
  const double friends_mu = -kFriendsSigma * kFriendsSigma / 2.0;

  for (std::uint32_t i = 0; i < config.num_owners; ++i) {
    // Standardized log-activity; the raw activity is its lognormal image.
    const double z_activity = rng.normal();
    const double z_social =
        coupling * z_activity + orthogonal * rng.normal();
    const double z_quality =
        kQualityCoupling * z_social + quality_orthogonal * rng.normal();

    OwnerMeta owner;
    owner.activity = static_cast<float>(
        std::exp(config.owner_activity_sigma * z_activity));
    const double friends = config.mean_active_friends *
                           std::exp(friends_mu + kFriendsSigma * z_social);
    owner.active_friends = static_cast<std::uint32_t>(std::lround(friends));
    owner.quality =
        static_cast<float>(config.owner_quality_sigma * z_quality);
    owner.photo_count = 0;  // filled in while photos are assigned
    owners.push_back(owner);
  }
  return owners;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("pearson_correlation: size mismatch/empty");
  }
  const auto n = static_cast<double>(xs.size());
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= n;
  mean_y /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace otac
