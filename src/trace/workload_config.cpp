#include "trace/workload_config.h"

#include <algorithm>
#include <cmath>

namespace otac {

WorkloadConfig scaled(WorkloadConfig config, double factor) {
  factor = std::max(factor, 1e-6);
  const auto scale_count = [factor](std::uint32_t count) {
    const double scaled_count = std::round(static_cast<double>(count) * factor);
    return static_cast<std::uint32_t>(std::max(scaled_count, 1.0));
  };
  config.num_owners = scale_count(config.num_owners);
  config.num_photos = scale_count(config.num_photos);
  return config;
}

}  // namespace otac
