// A complete synthetic trace: catalog + time-sorted requests.
#pragma once

#include <vector>

#include "trace/photo_catalog.h"
#include "trace/types.h"
#include "trace/workload_config.h"
#include "util/sim_time.h"

namespace otac {

struct Trace {
  WorkloadConfig config{};
  PhotoCatalog catalog;
  std::vector<Request> requests;  // sorted by (time, photo)
  SimTime horizon{};              // requests all fall in [0, horizon)

  // Debug/analysis channel: standardized latent popularity score per photo.
  // Not visible to the classifier (it would be ground truth leakage).
  std::vector<float> latent_score;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }

  /// Total bytes across all requests (denominator of byte rates).
  [[nodiscard]] double total_request_bytes() const;
};

}  // namespace otac
