// All knobs of the synthetic social-photo workload.
//
// Defaults are calibrated to the paper's trace characterization (§2.2,
// Fig. 3): ~61.5% one-time objects, one-time accesses ~25.5% of requests,
// l5 dominating the request mix, diurnal 05:00 trough / 20:00 peak.
#pragma once

#include <array>
#include <cstdint>

#include "trace/diurnal.h"
#include "trace/types.h"

namespace otac {

struct WorkloadConfig {
  std::uint64_t seed = 42;

  // --- Population ----------------------------------------------------------
  std::uint32_t num_owners = 20'000;
  std::uint32_t num_photos = 400'000;
  double horizon_days = 9.0;      // paper: 9-day log
  double backlog_days = 30.0;     // photos uploaded before the window opens

  // --- Target trace shape (calibrated exactly by the generator) ------------
  // The paper's 61.5% one-time objects with its object/access totals
  // (1.48B / 5.86B) imply a one-time access share of 15.5% and a hit-rate
  // cap of 74.5% — the 25.5% stated in §2.2 is inconsistent with those
  // totals. We match the totals (and therefore the 74.5% cap the paper's
  // curves rely on); the share knob is exposed for sensitivity studies.
  double one_time_object_fraction = 0.615;  // objects accessed exactly once
  double one_time_access_share = 0.1555;    // share of requests they make up
  std::uint32_t max_accesses_per_photo = 20'000;

  // --- Owner / social model -------------------------------------------------
  double owner_activity_sigma = 1.2;   // lognormal spread of upload activity
  double friends_activity_coupling = 0.7;  // corr(log friends, log activity)
  double mean_active_friends = 35.0;
  double owner_quality_sigma = 1.0;    // latent photo attractiveness spread

  // --- Popularity model ------------------------------------------------------
  // Latent score z = wq*quality + wt*type + wh*upload-hour + noise. The noise
  // weight bounds attainable classifier accuracy (~0.86 at the default).
  double weight_owner_quality = 1.0;
  double weight_type = 0.8;
  double weight_upload_hour = 0.35;
  double weight_noise = 1.6;
  double weight_window_mass = 0.5;  // aging term: older photos skew one-time
  double sigmoid_tau = 1.1;         // softness of the one-time decision
  double count_tail_alpha = 1.7;    // Zipf exponent of the multi-access tail
  double count_score_beta = 0.6;    // how strongly z scales access counts

  // Concept drift: every `type_popularity_rotation_days` the mapping from
  // photo type to popularity rotates one position, so a model trained on
  // old days mispredicts newer uploads. 0 disables (stationary workload).
  // Real social workloads drift (the paper's §4.4.3 observes classifier
  // decay over days); this knob reproduces that failure mode on demand.
  int type_popularity_rotation_days = 0;

  // --- Age decay of accesses (Lomax kernel) ---------------------------------
  double decay_shape = 1.1;   // heavier tail -> more long-lived photos
  double decay_scale_days = 1.2;

  // --- Request context -------------------------------------------------------
  double mobile_share = 0.72;
  DiurnalConfig diurnal{};

  // --- Photo types -----------------------------------------------------------
  // Photo-level mix; requests skew further toward popular types via
  // type_popularity, landing l5 near the paper's ~45% request share.
  // Order matches type_index(): a0,a5,b0,b5,c0,c5,m0,m5,l0,l5,o0,o5.
  std::array<double, kPhotoTypeCount> type_mix = {
      0.020, 0.060, 0.025, 0.075, 0.030, 0.095,
      0.045, 0.140, 0.055, 0.330, 0.030, 0.095};
  std::array<double, kPhotoTypeCount> type_popularity = {
      -0.8, -0.4, -0.6, -0.2, -0.4, 0.1,
      -0.1, 0.5,  0.1,  1.0,  -0.5, 0.0};

  // Median size per resolution (a,b,c,m,l,o) in bytes; jpg uses it as-is,
  // png is scaled up (poorer compression). Lognormal sigma adds spread.
  std::array<double, kResolutionCount> resolution_size_bytes = {
      2.0e3, 4.0e3, 8.0e3, 16.0e3, 32.0e3, 128.0e3};
  double png_size_factor = 1.6;
  double size_sigma = 0.35;
};

/// Scale photo/owner counts by a factor (OTAC_SCALE), keeping shape knobs.
[[nodiscard]] WorkloadConfig scaled(WorkloadConfig config, double factor);

}  // namespace otac
