// 1:N object sampling, reproducing the paper's trace-reduction pipeline
// (§5.1): sample the *object set* at 1:100, then keep every request whose
// object was sampled, preserving timestamp order. Sampling objects (rather
// than requests) preserves per-object access-count distributions, which is
// what cache behaviour depends on.
#pragma once

#include "trace/trace.h"
#include "util/rng.h"

namespace otac {

/// Returns a new trace whose catalog contains only the sampled photos
/// (ids compacted; owners carried over unchanged). `keep_one_in` must be
/// >= 1; keep_one_in == 1 returns a copy.
[[nodiscard]] Trace sample_objects(const Trace& trace, std::uint64_t keep_one_in,
                                   Rng& rng);

}  // namespace otac
