#include "trace/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/popularity_model.h"
#include "trace/social_model.h"
#include "util/alias_table.h"

namespace otac {

double Trace::total_request_bytes() const {
  double total = 0.0;
  for (const Request& request : requests) {
    total += catalog.photo(request.photo).size_bytes;
  }
  return total;
}

Trace TraceGenerator::generate() const {
  const WorkloadConfig& config = config_;
  if (config.num_photos == 0 || config.num_owners == 0) {
    throw std::invalid_argument("TraceGenerator: empty population");
  }
  if (config.horizon_days <= 0.0) {
    throw std::invalid_argument("TraceGenerator: horizon must be positive");
  }

  Rng master{config.seed};
  Rng owner_rng = master.fork(1);
  Rng photo_rng = master.fork(2);
  Rng pop_rng = master.fork(3);
  Rng event_rng = master.fork(4);

  Trace trace;
  trace.config = config;
  trace.horizon = from_days(config.horizon_days);
  const std::int64_t horizon_s = trace.horizon.seconds;

  // --- 1. Owners -------------------------------------------------------------
  std::vector<OwnerMeta> owners = generate_owners(config, owner_rng);
  std::vector<double> owner_weights(owners.size());
  for (std::size_t i = 0; i < owners.size(); ++i) {
    owner_weights[i] = owners[i].activity;
  }
  const AliasTable owner_sampler{owner_weights};
  const AliasTable type_sampler{
      std::span<const double>{config.type_mix.data(), config.type_mix.size()}};
  const DiurnalModel diurnal{config.diurnal};

  // --- 2. Photos ---------------------------------------------------------------
  std::vector<PhotoMeta> photos;
  photos.reserve(config.num_photos);
  for (std::uint32_t i = 0; i < config.num_photos; ++i) {
    PhotoMeta photo;
    photo.owner = static_cast<UserId>(owner_sampler.sample(photo_rng));
    owners[photo.owner].photo_count += 1;
    photo.type = type_from_index(static_cast<int>(type_sampler.sample(photo_rng)));

    const double median =
        config.resolution_size_bytes[static_cast<std::size_t>(
            photo.type.resolution)] *
        (photo.type.format == PhotoFormat::png ? config.png_size_factor : 1.0);
    const double size =
        median * std::exp(config.size_sigma * photo_rng.normal());
    photo.size_bytes = static_cast<std::uint32_t>(
        std::clamp(size, 512.0, 16.0 * 1024.0 * 1024.0));

    // Upload day uniform over [-backlog, horizon); second-of-day diurnal.
    const std::int64_t upload_day = photo_rng.uniform_int(
        -from_days(config.backlog_days).seconds / kSecondsPerDay,
        horizon_s / kSecondsPerDay - 1);
    photo.upload_time = SimTime{upload_day * kSecondsPerDay +
                                diurnal.sample_second_of_day(photo_rng)};
    photos.push_back(photo);
  }
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};

  // --- 3. Popularity / counts ----------------------------------------------------
  // Window mass: fraction of the access-time kernel inside [0, horizon).
  const double shape = config.decay_shape;
  const double scale_s = config.decay_scale_days * kSecondsPerDay;
  const std::size_t n = trace.catalog.photo_count();
  std::vector<double> window_mass(n);
  std::vector<double> cdf_lo(n), cdf_hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t upload = trace.catalog.photo(static_cast<PhotoId>(i))
                                    .upload_time.seconds;
    const double lo = static_cast<double>(std::max<std::int64_t>(0, -upload));
    const double hi = static_cast<double>(horizon_s - upload);
    cdf_lo[i] = lomax_cdf(lo, shape, scale_s);
    cdf_hi[i] = lomax_cdf(hi, shape, scale_s);
    window_mass[i] = std::max(cdf_hi[i] - cdf_lo[i], 1e-9);
  }
  const PopularityModel popularity;
  PopularityAssignment assignment =
      popularity.assign(config, trace.catalog, window_mass, pop_rng);
  trace.latent_score = assignment.score;

  // --- 4. Events --------------------------------------------------------------------
  std::size_t total_events = 0;
  for (const std::uint32_t c : assignment.count) total_events += c;
  trace.requests.reserve(total_events);

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<PhotoId>(i);
    const std::int64_t upload = trace.catalog.photo(id).upload_time.seconds;
    for (std::uint32_t k = 0; k < assignment.count[i]; ++k) {
      // Offset drawn from the Lomax kernel truncated to the window.
      const double u =
          cdf_lo[i] + event_rng.next_double() * (cdf_hi[i] - cdf_lo[i]);
      const double offset = lomax_cdf_inverse(u, shape, scale_s);
      const std::int64_t raw_time =
          upload + static_cast<std::int64_t>(offset);
      // Preserve the day (decay structure) but redistribute the second of
      // day along the diurnal curve.
      const std::int64_t day = day_index(SimTime{std::clamp<std::int64_t>(
          raw_time, 0, horizon_s - 1)});
      std::int64_t when =
          day * kSecondsPerDay + diurnal.sample_second_of_day(event_rng);
      if (when <= upload) {
        // Same-day access drawn before the upload instant: nudge it to just
        // after upload (a few minutes of jitter), staying inside the window.
        const auto jitter = static_cast<std::int64_t>(
            event_rng.exponential(1.0 / (10.0 * kSecondsPerMinute)));
        when = std::min<std::int64_t>(upload + 1 + jitter, horizon_s - 1);
      }
      when = std::clamp<std::int64_t>(when, 0, horizon_s - 1);

      Request request;
      request.time = SimTime{when};
      request.photo = id;
      request.terminal = event_rng.bernoulli(config.mobile_share)
                             ? TerminalType::mobile
                             : TerminalType::pc;
      trace.requests.push_back(request);
    }
  }

  // --- 5. Sort -----------------------------------------------------------------------
  std::sort(trace.requests.begin(), trace.requests.end(),
            [](const Request& a, const Request& b) {
              if (a.time.seconds != b.time.seconds)
                return a.time.seconds < b.time.seconds;
              return a.photo < b.photo;
            });
  return trace;
}

Trace generate_default_trace(double scale, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  TraceGenerator generator{scaled(config, scale)};
  return generator.generate();
}

}  // namespace otac
