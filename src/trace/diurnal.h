// Diurnal (time-of-day) intensity model.
//
// The paper observes workload periodicity with the daily trough at 05:00
// and peak around 20:00 (§4.4.3); access hour is a classifier feature.
// DiurnalModel provides a smooth 24h intensity curve, normalized weights
// per minute bin, and an alias-table sampler for second-of-day draws.
#pragma once

#include <array>
#include <optional>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace otac {

struct DiurnalConfig {
  double trough_hour = 5.0;   // least active time of day
  double peak_hour = 20.0;    // most active time of day
  double peak_to_trough = 6.0;  // intensity ratio peak / trough, > 1
};

class DiurnalModel {
 public:
  explicit DiurnalModel(const DiurnalConfig& config = {});

  /// Relative intensity at an hour-of-day in [0, 24); mean over the day is 1.
  [[nodiscard]] double intensity(double hour) const noexcept;

  /// Intensity for a simulation time point.
  [[nodiscard]] double intensity_at(SimTime t) const noexcept {
    return intensity(static_cast<double>(second_of_day(t)) / kSecondsPerHour);
  }

  /// Draw a second-of-day (0..86399) with probability following the curve.
  [[nodiscard]] std::int64_t sample_second_of_day(Rng& rng) const noexcept;

  [[nodiscard]] const DiurnalConfig& config() const noexcept { return config_; }

 private:
  DiurnalConfig config_;
  double base_;
  double amplitude_;
  AliasTable minute_sampler_;  // 1440 one-minute bins
};

}  // namespace otac
