#include "trace/diurnal.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace otac {

DiurnalModel::DiurnalModel(const DiurnalConfig& config) : config_(config) {
  if (config.peak_to_trough <= 1.0) {
    throw std::invalid_argument("DiurnalModel: peak_to_trough must exceed 1");
  }
  // Cosine bump peaking at peak_hour with min at peak_hour + 12h; the
  // configured trough hour shifts the phase (we centre the cosine so its
  // minimum lands on trough_hour, which for QQ is 15h before the peak —
  // close enough to antipodal that a single harmonic serves).
  // intensity(h) = base + amplitude * (1 + cos(2*pi*(h - peak)/24)) / 2
  // with base/amplitude solved from the peak:trough ratio and unit mean.
  const double ratio = config.peak_to_trough;
  // mean of (1+cos)/2 over a day = 1/2. mean intensity = base + amplitude/2 = 1.
  // peak = base + amplitude, trough = base. ratio = (base+amplitude)/base.
  base_ = 1.0 / (0.5 * (ratio - 1.0) + 1.0);
  amplitude_ = base_ * (ratio - 1.0);

  std::vector<double> minute_weights(static_cast<std::size_t>(24 * 60));
  for (std::size_t minute = 0; minute < minute_weights.size(); ++minute) {
    const double hour = (static_cast<double>(minute) + 0.5) / 60.0;
    minute_weights[minute] = intensity(hour);
  }
  minute_sampler_ = AliasTable{minute_weights};
}

double DiurnalModel::intensity(double hour) const noexcept {
  const double phase =
      2.0 * std::numbers::pi * (hour - config_.peak_hour) / 24.0;
  return base_ + amplitude_ * (1.0 + std::cos(phase)) / 2.0;
}

std::int64_t DiurnalModel::sample_second_of_day(Rng& rng) const noexcept {
  const auto minute = static_cast<std::int64_t>(minute_sampler_.sample(rng));
  return minute * kSecondsPerMinute + rng.uniform_int(0, kSecondsPerMinute - 1);
}

}  // namespace otac
