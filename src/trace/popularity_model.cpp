#include "trace/popularity_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/zipf.h"

namespace otac {

double lomax_cdf(double x, double shape, double scale) noexcept {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 + x / scale, -shape);
}

double lomax_cdf_inverse(double u, double shape, double scale) noexcept {
  u = std::clamp(u, 0.0, 1.0 - 1e-15);
  return scale * (std::pow(1.0 - u, -1.0 / shape) - 1.0);
}

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

double bisect_nondecreasing(double lo, double hi, double target,
                            int iterations,
                            const std::function<double(double)>& f) {
  // Expand hi until it brackets the target (or give up and return hi).
  for (int i = 0; i < 64 && f(hi) < target; ++i) hi *= 2.0;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double PopularityModel::upload_hour_boost(int hour) noexcept {
  // Smooth bump peaking at 20:00 (the diurnal peak), trough near 08:00.
  return std::cos(2.0 * std::numbers::pi * (hour - 20.0) / 24.0);
}

PopularityAssignment PopularityModel::assign(
    const WorkloadConfig& config, const PhotoCatalog& catalog,
    const std::vector<double>& window_mass, Rng& rng) const {
  const std::size_t n = catalog.photo_count();
  if (window_mass.size() != n) {
    throw std::invalid_argument("PopularityModel: window_mass size mismatch");
  }
  if (n == 0) return {};

  PopularityAssignment result;
  result.score.resize(n);

  // --- Raw scores -----------------------------------------------------------
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const PhotoMeta& photo = catalog.photo(static_cast<PhotoId>(i));
    const OwnerMeta& owner = catalog.owner(photo.owner);
    int type_slot = type_index(photo.type);
    if (config.type_popularity_rotation_days > 0) {
      // Concept drift: rotate the type->popularity mapping by upload day.
      const std::int64_t shift = day_index(photo.upload_time) /
                                 config.type_popularity_rotation_days;
      type_slot = static_cast<int>(
          ((type_slot + shift) % kPhotoTypeCount + kPhotoTypeCount) %
          kPhotoTypeCount);
    }
    const double type_term =
        config.type_popularity[static_cast<std::size_t>(type_slot)];
    const double hour_term = upload_hour_boost(hour_of_day(photo.upload_time));
    const double mass = std::max(window_mass[i], 1e-9);
    const double raw = config.weight_owner_quality *
                           static_cast<double>(owner.quality) +
                       config.weight_type * type_term +
                       config.weight_upload_hour * hour_term +
                       config.weight_noise * rng.normal() +
                       config.weight_window_mass * std::log(mass);
    result.score[i] = static_cast<float>(raw);
    mean += raw;
  }
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (const float s : result.score) {
    const double d = static_cast<double>(s) - mean;
    variance += d * d;
  }
  const double stddev = std::sqrt(variance / static_cast<double>(n));
  const double inv_std = stddev > 0.0 ? 1.0 / stddev : 1.0;
  for (float& s : result.score) {
    s = static_cast<float>((static_cast<double>(s) - mean) * inv_std);
  }

  // --- One-time threshold ----------------------------------------------------
  // P(one-time | z) = 1 - sigmoid((z - theta)/tau); increasing in theta, so
  // the expected fraction is nondecreasing and bisection applies.
  const double tau = config.sigmoid_tau;
  const auto expected_one_time = [&](double theta) {
    double acc = 0.0;
    for (const float z : result.score) {
      acc += 1.0 - sigmoid((static_cast<double>(z) - theta) / tau);
    }
    return acc / static_cast<double>(n);
  };
  result.theta = bisect_nondecreasing(-20.0, 20.0,
                                      config.one_time_object_fraction, 60,
                                      expected_one_time);

  // --- Draw one-time vs multi -------------------------------------------------
  result.count.assign(n, 1);
  std::vector<std::size_t> multi;
  multi.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double p_one =
        1.0 -
        sigmoid((static_cast<double>(result.score[i]) - result.theta) / tau);
    if (!rng.bernoulli(p_one)) multi.push_back(i);
  }

  // --- Heavy-tailed counts for multi-access photos -----------------------------
  // Target mean count mu makes one-time accesses the configured share:
  // share = N1 / (N * mu)  =>  mu = object_fraction / access_share.
  const double mu =
      config.one_time_object_fraction / config.one_time_access_share;
  if (mu < 1.0) {
    throw std::invalid_argument(
        "WorkloadConfig: one_time_access_share too large for object fraction");
  }
  const std::size_t n_multi = multi.size();
  if (n_multi > 0) {
    const ZipfSampler tail{100'000, config.count_tail_alpha};
    std::vector<double> gain(n_multi);
    for (std::size_t j = 0; j < n_multi; ++j) {
      const double base = static_cast<double>(tail.sample(rng));
      gain[j] = base * std::exp(config.count_score_beta *
                                static_cast<double>(result.score[multi[j]]));
    }
    const double max_extra =
        static_cast<double>(config.max_accesses_per_photo) - 2.0;
    const auto mean_count = [&](double s) {
      double total = static_cast<double>(n - n_multi);  // one-time photos
      for (std::size_t j = 0; j < n_multi; ++j) {
        total += 2.0 + std::min(max_extra, std::floor(s * gain[j]));
      }
      return total / static_cast<double>(n);
    };
    result.count_scale =
        bisect_nondecreasing(0.0, 4.0, mu, 60, mean_count);
    for (std::size_t j = 0; j < n_multi; ++j) {
      const double extra =
          std::min(max_extra, std::floor(result.count_scale * gain[j]));
      result.count[multi[j]] =
          static_cast<std::uint32_t>(2.0 + extra);
    }
  }
  return result;
}

}  // namespace otac
