// Trace persistence: compact binary format (round-trip exact) and CSV
// export of the request stream for external analysis/plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace otac {

inline constexpr std::uint32_t kTraceMagic = 0x4f544143;  // "OTAC"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serialize the trace (catalog, requests, horizon, latent scores). Knobs in
/// config are not persisted — a loaded trace stands on its own data.
void save_trace(const Trace& trace, std::ostream& out);
void save_trace(const Trace& trace, const std::string& path);

/// Throws std::runtime_error on magic/version mismatch or truncation.
[[nodiscard]] Trace load_trace(std::istream& in);
[[nodiscard]] Trace load_trace(const std::string& path);

/// Request stream as CSV: time_s,photo,owner,type,size_bytes,terminal.
void export_requests_csv(const Trace& trace, std::ostream& out);

/// Build a Trace from a request CSV in the export format above — the
/// adapter for replaying real access logs through the simulator. Photo and
/// owner ids are remapped densely; each photo's upload time is approximated
/// as one minute before its first access (real logs rarely carry it), and
/// owner social attributes default to zero, so the social features carry
/// less signal on imported traces than on synthetic ones. Rows must be
/// time-sorted; throws std::runtime_error naming the 1-based line number
/// (the header is line 1) on malformed or unsorted input.
[[nodiscard]] Trace import_requests_csv(std::istream& in);

}  // namespace otac
