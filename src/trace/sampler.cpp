#include "trace/sampler.h"

#include <stdexcept>
#include <vector>

namespace otac {

Trace sample_objects(const Trace& trace, std::uint64_t keep_one_in, Rng& rng) {
  if (keep_one_in == 0) {
    throw std::invalid_argument("sample_objects: keep_one_in must be >= 1");
  }

  const std::size_t photo_count = trace.catalog.photo_count();
  std::vector<PhotoId> remap(photo_count, kInvalidPhoto);
  std::vector<PhotoMeta> sampled_photos;
  std::vector<float> sampled_scores;
  const bool have_scores = trace.latent_score.size() == photo_count;
  sampled_photos.reserve(photo_count / keep_one_in + 1);

  for (PhotoId id = 0; id < photo_count; ++id) {
    if (keep_one_in == 1 || rng.next_below(keep_one_in) == 0) {
      remap[id] = static_cast<PhotoId>(sampled_photos.size());
      sampled_photos.push_back(trace.catalog.photo(id));
      if (have_scores) sampled_scores.push_back(trace.latent_score[id]);
    }
  }

  Trace result;
  result.config = trace.config;
  result.horizon = trace.horizon;
  std::vector<OwnerMeta> owners{trace.catalog.owners().begin(),
                                trace.catalog.owners().end()};
  result.catalog = PhotoCatalog{std::move(sampled_photos), std::move(owners)};
  result.latent_score = std::move(sampled_scores);

  result.requests.reserve(trace.requests.size() / keep_one_in + 1);
  for (const Request& request : trace.requests) {
    const PhotoId mapped = remap[request.photo];
    if (mapped == kInvalidPhoto) continue;
    Request kept = request;
    kept.photo = mapped;
    result.requests.push_back(kept);
  }
  return result;
}

}  // namespace otac
