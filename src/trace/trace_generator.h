// End-to-end synthetic trace generation (see DESIGN.md §2 for the mapping
// from the paper's production trace to this model).
//
// Pipeline:
//   1. generate_owners            — correlated social attributes
//   2. photo placement            — owners chosen ~ activity; upload times
//                                    diurnal within uniformly chosen days over
//                                    [-backlog, horizon); type & size drawn
//   3. PopularityModel::assign    — latent score + calibrated access counts
//   4. access-time sampling       — truncated-Lomax day offsets, diurnal
//                                    second-of-day, terminal type
//   5. sort by time
#pragma once

#include "trace/trace.h"

namespace otac {

class TraceGenerator {
 public:
  explicit TraceGenerator(WorkloadConfig config) : config_(std::move(config)) {}

  /// Generate the full trace. Deterministic for a fixed config (including
  /// config.seed); independent of platform and thread count.
  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

 private:
  WorkloadConfig config_;
};

/// Convenience: generate with default config scaled by `scale`.
[[nodiscard]] Trace generate_default_trace(double scale, std::uint64_t seed);

}  // namespace otac
