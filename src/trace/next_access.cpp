#include "trace/next_access.h"

namespace otac {

NextAccessInfo compute_next_access(const Trace& trace) {
  const std::size_t n = trace.requests.size();
  NextAccessInfo info;
  info.next.assign(n, kNoNextAccess);
  info.prev_seen.assign(n, false);

  // last_seen[photo] = most recent (from the back) index, i.e. the *next*
  // occurrence for anything earlier.
  std::vector<std::uint64_t> last_seen(trace.catalog.photo_count(),
                                       kNoNextAccess);
  for (std::size_t idx = n; idx-- > 0;) {
    const PhotoId photo = trace.requests[idx].photo;
    info.next[idx] = last_seen[photo];
    last_seen[photo] = idx;
  }
  // Forward pass for first-access flags.
  std::vector<bool> seen(trace.catalog.photo_count(), false);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const PhotoId photo = trace.requests[idx].photo;
    info.prev_seen[idx] = seen[photo];
    seen[photo] = true;
  }
  return info;
}

}  // namespace otac
