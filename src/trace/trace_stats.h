// Trace characterization: the §2.2 numbers (one-time objects/accesses,
// achievable hit-rate cap) and the Fig. 3 per-type request mix.
#pragma once

#include <array>
#include <cstdint>

#include "trace/trace.h"

namespace otac {

struct TraceStats {
  std::uint64_t total_requests = 0;
  std::uint64_t distinct_objects = 0;
  std::uint64_t one_time_objects = 0;   // accessed exactly once
  std::uint64_t one_time_accesses = 0;  // == one_time_objects by definition
  double mean_accesses_per_object = 0.0;
  double mean_request_size_bytes = 0.0;
  double total_request_bytes = 0.0;
  double total_object_bytes = 0.0;  // footprint of distinct objects

  std::array<std::uint64_t, kPhotoTypeCount> requests_by_type{};
  std::array<std::uint64_t, kPhotoTypeCount> objects_by_type{};

  /// Fraction of objects accessed exactly once (paper: 61.5%).
  [[nodiscard]] double one_time_object_fraction() const noexcept {
    return distinct_objects
               ? static_cast<double>(one_time_objects) /
                     static_cast<double>(distinct_objects)
               : 0.0;
  }
  /// Share of all accesses made by one-time objects (paper: 25.5%).
  [[nodiscard]] double one_time_access_share() const noexcept {
    return total_requests ? static_cast<double>(one_time_accesses) /
                                static_cast<double>(total_requests)
                          : 0.0;
  }
  /// Upper bound on hit rate with infinite cache (paper: 74.5%): every
  /// access except each object's first can hit.
  [[nodiscard]] double hit_rate_cap() const noexcept {
    return total_requests
               ? 1.0 - static_cast<double>(distinct_objects) /
                           static_cast<double>(total_requests)
               : 0.0;
  }
};

[[nodiscard]] TraceStats compute_trace_stats(const Trace& trace);

}  // namespace otac
