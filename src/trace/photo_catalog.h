// PhotoCatalog: dense-id store of photos and owners for one workload.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "trace/types.h"

namespace otac {

class PhotoCatalog {
 public:
  PhotoCatalog() = default;
  PhotoCatalog(std::vector<PhotoMeta> photos, std::vector<OwnerMeta> owners)
      : photos_(std::move(photos)), owners_(std::move(owners)) {}

  [[nodiscard]] std::size_t photo_count() const noexcept { return photos_.size(); }
  [[nodiscard]] std::size_t owner_count() const noexcept { return owners_.size(); }

  [[nodiscard]] const PhotoMeta& photo(PhotoId id) const {
    if (id >= photos_.size()) throw std::out_of_range("PhotoCatalog: photo id");
    return photos_[id];
  }
  [[nodiscard]] const OwnerMeta& owner(UserId id) const {
    if (id >= owners_.size()) throw std::out_of_range("PhotoCatalog: owner id");
    return owners_[id];
  }

  [[nodiscard]] std::span<const PhotoMeta> photos() const noexcept {
    return photos_;
  }
  [[nodiscard]] std::span<const OwnerMeta> owners() const noexcept {
    return owners_;
  }

  PhotoId add_photo(const PhotoMeta& meta) {
    photos_.push_back(meta);
    return static_cast<PhotoId>(photos_.size() - 1);
  }
  UserId add_owner(const OwnerMeta& meta) {
    owners_.push_back(meta);
    return static_cast<UserId>(owners_.size() - 1);
  }

  /// Mean photo size in bytes (S-bar in the one-time-access criteria).
  [[nodiscard]] double mean_photo_size() const noexcept;

 private:
  std::vector<PhotoMeta> photos_;
  std::vector<OwnerMeta> owners_;
};

}  // namespace otac
