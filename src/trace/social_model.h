// Owner (user) population synthesis.
//
// Owners carry three correlated latent attributes: upload *activity*
// (lognormal, heavy-tailed — a few power users upload most photos),
// *active friends* (the paper's social feature: users who interacted with
// the owner recently), and *quality* (latent attractiveness of the owner's
// photos, which drives re-access probability). The correlations are what
// make "active friends" and "average views of owner's photos" informative
// classifier features.
#pragma once

#include <vector>

#include "trace/types.h"
#include "trace/workload_config.h"
#include "util/rng.h"

namespace otac {

/// Generate config.num_owners owners. Deterministic given rng state.
[[nodiscard]] std::vector<OwnerMeta> generate_owners(const WorkloadConfig& config,
                                                     Rng& rng);

/// Pearson correlation helper used by tests to validate the coupling knobs.
[[nodiscard]] double pearson_correlation(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

}  // namespace otac
