#include "trace/trace_stats.h"

#include <vector>

namespace otac {

TraceStats compute_trace_stats(const Trace& trace) {
  TraceStats stats;
  stats.total_requests = trace.requests.size();

  std::vector<std::uint32_t> access_count(trace.catalog.photo_count(), 0);
  for (const Request& request : trace.requests) {
    access_count[request.photo] += 1;
    const PhotoMeta& photo = trace.catalog.photo(request.photo);
    stats.requests_by_type[static_cast<std::size_t>(type_index(photo.type))] +=
        1;
    stats.total_request_bytes += photo.size_bytes;
  }
  for (PhotoId id = 0; id < access_count.size(); ++id) {
    if (access_count[id] == 0) continue;
    stats.distinct_objects += 1;
    const PhotoMeta& photo = trace.catalog.photo(id);
    stats.objects_by_type[static_cast<std::size_t>(type_index(photo.type))] +=
        1;
    stats.total_object_bytes += photo.size_bytes;
    if (access_count[id] == 1) {
      stats.one_time_objects += 1;
      stats.one_time_accesses += 1;
    }
  }
  if (stats.distinct_objects > 0) {
    stats.mean_accesses_per_object =
        static_cast<double>(stats.total_requests) /
        static_cast<double>(stats.distinct_objects);
  }
  if (stats.total_requests > 0) {
    stats.mean_request_size_bytes =
        stats.total_request_bytes / static_cast<double>(stats.total_requests);
  }
  return stats;
}

}  // namespace otac
