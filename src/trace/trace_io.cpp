#include "trace/trace_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace otac {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

/// Bytes left between the current position and the end of a seekable
/// stream; max() when the stream cannot be positioned (socket-like).
std::uint64_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type current = in.tellg();
  if (current == std::istream::pos_type(-1)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(current);
  if (end == std::istream::pos_type(-1) || end < current) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(end - current);
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in);
  // Bound the declared record count against what the stream can actually
  // hold before allocating: a flipped length byte must fail cleanly, not
  // become a multi-gigabyte resize followed by a short read.
  if (count > remaining_bytes(in) / sizeof(T)) {
    throw std::runtime_error("trace_io: record count exceeds stream size");
  }
  std::vector<T> values(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in) throw std::runtime_error("trace_io: truncated stream");
  }
  return values;
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  write_pod(out, kTraceMagic);
  write_pod(out, kTraceVersion);
  write_pod(out, trace.horizon.seconds);

  std::vector<PhotoMeta> photos{trace.catalog.photos().begin(),
                                trace.catalog.photos().end()};
  std::vector<OwnerMeta> owners{trace.catalog.owners().begin(),
                                trace.catalog.owners().end()};
  write_vector(out, photos);
  write_vector(out, owners);
  write_vector(out, trace.requests);
  write_vector(out, trace.latent_score);
  if (!out) throw std::runtime_error("trace_io: write failure");
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("trace_io: cannot open " + path);
  save_trace(trace, file);
}

Trace load_trace(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kTraceMagic) {
    throw std::runtime_error("trace_io: bad magic");
  }
  if (read_pod<std::uint32_t>(in) != kTraceVersion) {
    throw std::runtime_error("trace_io: unsupported version");
  }
  Trace trace;
  trace.horizon = SimTime{read_pod<std::int64_t>(in)};
  auto photos = read_vector<PhotoMeta>(in);
  auto owners = read_vector<OwnerMeta>(in);
  auto requests = read_vector<Request>(in);
  auto latent_score = read_vector<float>(in);

  // Referential and value validation: a corrupt file must be rejected
  // here, not crash the simulator later through an out-of-range id or a
  // NaN score propagating into the popularity math.
  for (const PhotoMeta& photo : photos) {
    if (photo.owner >= owners.size()) {
      throw std::runtime_error("trace_io: photo owner id out of range");
    }
    // Corrupted enum bytes would index the 12-entry type tables OOB.
    if (static_cast<int>(photo.type.resolution) >= kResolutionCount ||
        static_cast<int>(photo.type.format) >= kFormatCount) {
      throw std::runtime_error("trace_io: invalid photo type");
    }
  }
  for (const OwnerMeta& owner : owners) {
    if (!std::isfinite(owner.activity) || !std::isfinite(owner.quality)) {
      throw std::runtime_error("trace_io: non-finite owner attributes");
    }
  }
  std::int64_t previous_time = std::numeric_limits<std::int64_t>::min();
  for (const Request& request : requests) {
    if (request.photo >= photos.size()) {
      throw std::runtime_error("trace_io: request photo id out of range");
    }
    if (request.time.seconds < previous_time) {
      throw std::runtime_error("trace_io: requests not time-sorted");
    }
    previous_time = request.time.seconds;
  }
  if (!latent_score.empty() && latent_score.size() != photos.size()) {
    throw std::runtime_error("trace_io: latent score count mismatch");
  }
  for (const float score : latent_score) {
    if (!std::isfinite(score)) {
      throw std::runtime_error("trace_io: non-finite latent score");
    }
  }

  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.requests = std::move(requests);
  trace.latent_score = std::move(latent_score);
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("trace_io: cannot open " + path);
  return load_trace(file);
}

Trace import_requests_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("time_s,photo,owner,type", 0) != 0) {
    throw std::runtime_error("import_requests_csv: missing/invalid header");
  }

  Trace trace;
  std::vector<PhotoMeta> photos;
  std::vector<OwnerMeta> owners;
  std::unordered_map<std::string, PhotoId> photo_ids;
  std::unordered_map<std::string, UserId> owner_ids;

  std::unordered_map<std::string, int> type_by_name;
  for (int t = 0; t < kPhotoTypeCount; ++t) {
    type_by_name.emplace(std::string{type_name(type_from_index(t))}, t);
  }

  std::int64_t previous_time = std::numeric_limits<std::int64_t>::min();
  std::size_t row = 1;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::string time_s, photo_s, owner_s, type_s, size_s, terminal_s;
    if (!std::getline(fields, time_s, ',') ||
        !std::getline(fields, photo_s, ',') ||
        !std::getline(fields, owner_s, ',') ||
        !std::getline(fields, type_s, ',') ||
        !std::getline(fields, size_s, ',') ||
        !std::getline(fields, terminal_s)) {
      throw std::runtime_error("import_requests_csv: malformed row at line " +
                               std::to_string(row));
    }
    std::int64_t time = 0;
    std::uint64_t size = 0;
    try {
      std::size_t time_used = 0;
      std::size_t size_used = 0;
      time = std::stoll(time_s, &time_used);
      size = std::stoull(size_s, &size_used);
      // Trailing garbage ("12x", "1e9", "nan") must not half-parse.
      if (time_used != time_s.size() || size_used != size_s.size()) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      throw std::runtime_error("import_requests_csv: bad number at line " +
                               std::to_string(row));
    }
    if (time < 0 ||
        size > std::numeric_limits<std::uint32_t>::max() ||
        size_s.find('-') != std::string::npos) {
      throw std::runtime_error(
          "import_requests_csv: value out of range at line " +
          std::to_string(row));
    }
    if (time < previous_time) {
      throw std::runtime_error(
          "import_requests_csv: rows not time-sorted at line " +
          std::to_string(row));
    }
    previous_time = time;

    const auto owner_it = owner_ids.find(owner_s);
    UserId owner;
    if (owner_it == owner_ids.end()) {
      owner = static_cast<UserId>(owners.size());
      owner_ids.emplace(owner_s, owner);
      owners.push_back(OwnerMeta{});
    } else {
      owner = owner_it->second;
    }

    const auto photo_it = photo_ids.find(photo_s);
    PhotoId photo;
    if (photo_it == photo_ids.end()) {
      photo = static_cast<PhotoId>(photos.size());
      photo_ids.emplace(photo_s, photo);
      PhotoMeta meta;
      meta.owner = owner;
      const auto type = type_by_name.find(type_s);
      if (type == type_by_name.end()) {
        throw std::runtime_error("import_requests_csv: unknown type '" +
                                 type_s + "' at line " + std::to_string(row));
      }
      meta.type = type_from_index(type->second);
      meta.size_bytes = static_cast<std::uint32_t>(size);
      meta.upload_time = SimTime{time - kSecondsPerMinute};
      photos.push_back(meta);
      owners[owner].photo_count += 1;
    } else {
      photo = photo_it->second;
    }

    Request request;
    request.time = SimTime{time};
    request.photo = photo;
    request.terminal = (terminal_s == "mobile" || terminal_s == "1")
                           ? TerminalType::mobile
                           : TerminalType::pc;
    trace.requests.push_back(request);
  }
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.horizon = SimTime{previous_time + 1};
  return trace;
}

void export_requests_csv(const Trace& trace, std::ostream& out) {
  out << "time_s,photo,owner,type,size_bytes,terminal\n";
  for (const Request& request : trace.requests) {
    const PhotoMeta& photo = trace.catalog.photo(request.photo);
    out << request.time.seconds << ',' << request.photo << ',' << photo.owner
        << ',' << type_name(photo.type) << ',' << photo.size_bytes << ','
        << (request.terminal == TerminalType::mobile ? "mobile" : "pc")
        << '\n';
  }
}

}  // namespace otac
