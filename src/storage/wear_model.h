// SSD wear / lifetime model — quantifies the paper's motivation (§1): a
// caching SSD sees a write density far above backend storage, and cutting
// admission writes extends device lifetime proportionally.
#pragma once

#include <cstdint>

namespace otac {

struct SsdWearConfig {
  std::uint64_t capacity_bytes = 0;
  double pe_cycles = 3000.0;           // rated program/erase cycles (MLC-era)
  double write_amplification = 1.3;    // FTL-induced extra writes
};

class SsdWearModel {
 public:
  explicit constexpr SsdWearModel(const SsdWearConfig& config)
      : config_(config) {}

  /// Total host bytes the device can absorb before wearing out.
  [[nodiscard]] constexpr double endurance_bytes() const noexcept {
    return static_cast<double>(config_.capacity_bytes) * config_.pe_cycles /
           config_.write_amplification;
  }

  /// Expected lifetime in days at a given host write rate.
  [[nodiscard]] constexpr double lifetime_days(
      double bytes_written_per_day) const noexcept {
    return bytes_written_per_day > 0.0
               ? endurance_bytes() / bytes_written_per_day
               : 0.0;
  }

  /// Write density (writes per unit time and space, §1): bytes/day/byte.
  [[nodiscard]] constexpr double write_density(
      double bytes_written_per_day) const noexcept {
    return config_.capacity_bytes > 0
               ? bytes_written_per_day /
                     static_cast<double>(config_.capacity_bytes)
               : 0.0;
  }

  /// Fraction of rated P/E cycles consumed after `days` at the given rate.
  [[nodiscard]] constexpr double wear_fraction(
      double bytes_written_per_day, double days) const noexcept {
    return endurance_bytes() > 0.0
               ? bytes_written_per_day * days / endurance_bytes()
               : 0.0;
  }

  [[nodiscard]] const SsdWearConfig& config() const noexcept { return config_; }

 private:
  SsdWearConfig config_;
};

}  // namespace otac
