// Analytic storage-device timing models: latency = fixed overhead +
// size / bandwidth. Used to derive latency constants for photo sizes other
// than the paper's 32 KB reference and to drive the wear model.
#pragma once

#include <cstdint>

namespace otac {

struct DeviceTimingConfig {
  double fixed_overhead_us = 0.0;   // seek/controller/firmware latency
  double read_bandwidth_mbps = 0.0;  // MB/s sustained read
  double write_bandwidth_mbps = 0.0;
};

class DeviceModel {
 public:
  explicit constexpr DeviceModel(const DeviceTimingConfig& config)
      : config_(config) {}

  [[nodiscard]] constexpr double read_latency_us(
      std::uint64_t bytes) const noexcept {
    return config_.fixed_overhead_us +
           static_cast<double>(bytes) / config_.read_bandwidth_mbps;
  }
  [[nodiscard]] constexpr double write_latency_us(
      std::uint64_t bytes) const noexcept {
    return config_.fixed_overhead_us +
           static_cast<double>(bytes) / config_.write_bandwidth_mbps;
  }

  [[nodiscard]] const DeviceTimingConfig& config() const noexcept {
    return config_;
  }

 private:
  DeviceTimingConfig config_;  // bandwidths interpreted as bytes/us == MB/s
};

/// SATA-era datacenter SSD: ~90 us overhead, 400/300 MB/s — yields ~100 us
/// more than HDD-free reads for a 32 KB photo, matching LatencyConfig.
[[nodiscard]] constexpr DeviceModel typical_ssd() noexcept {
  return DeviceModel{DeviceTimingConfig{90.0, 400.0, 300.0}};
}

/// 7.2k RPM HDD: ~2.9 ms average seek+rotate, 150 MB/s sequential-ish.
[[nodiscard]] constexpr DeviceModel typical_hdd() noexcept {
  return DeviceModel{DeviceTimingConfig{2900.0, 150.0, 150.0}};
}

}  // namespace otac
