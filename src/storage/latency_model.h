// Response-time model of §5.3.5 (Equations 3-6).
//
//   T = hit_rate * HitCost + (1 - hit_rate) * MissPenalty          (Eq. 3)
//   HitCost            = t_query + t_ssdr                           (Eq. 4)
//   MissPenalty_orig   = t_query + t_hddr                           (Eq. 5)
//   MissPenalty_prop   = t_query + t_classify + t_hddr              (Eq. 6)
//
// Paper constants for a 32 KB photo: t_hddr = 3 ms, t_query = 1 us,
// t_classify = 0.4 us. The paper omits t_ssdr; we default to 100 us (a
// typical SATA-era SSD 32 KB random read) and expose it as a knob —
// EXPERIMENTS.md reports the sensitivity. SSD writes are excluded by the
// paper (performed in the background).
#pragma once

#include <vector>

namespace otac {

struct LatencyConfig {
  double t_query_us = 1.0;
  double t_classify_us = 0.4;
  double t_hddr_us = 3000.0;
  double t_ssdr_us = 100.0;
};

class LatencyModel {
 public:
  explicit constexpr LatencyModel(const LatencyConfig& config = {})
      : config_(config) {}

  [[nodiscard]] constexpr double hit_cost_us() const noexcept {
    return config_.t_query_us + config_.t_ssdr_us;  // Eq. 4
  }
  [[nodiscard]] constexpr double miss_penalty_original_us() const noexcept {
    return config_.t_query_us + config_.t_hddr_us;  // Eq. 5
  }
  [[nodiscard]] constexpr double miss_penalty_proposed_us() const noexcept {
    return config_.t_query_us + config_.t_classify_us +
           config_.t_hddr_us;  // Eq. 6
  }

  /// Eq. 3 for the traditional system.
  [[nodiscard]] constexpr double mean_access_time_original_us(
      double hit_rate) const noexcept {
    return hit_rate * hit_cost_us() +
           (1.0 - hit_rate) * miss_penalty_original_us();
  }
  /// Eq. 3 for the classifier-equipped system.
  [[nodiscard]] constexpr double mean_access_time_proposed_us(
      double hit_rate) const noexcept {
    return hit_rate * hit_cost_us() +
           (1.0 - hit_rate) * miss_penalty_proposed_us();
  }

  /// Latency of one simulated request — the two-point distribution behind
  /// Eq. 3, resolved per request so the observability layer can feed real
  /// percentiles (p50/p90/p99/p999) instead of only the blended mean.
  [[nodiscard]] constexpr double request_latency_us(
      bool hit, bool proposed) const noexcept {
    if (hit) return hit_cost_us();
    return proposed ? miss_penalty_proposed_us()
                    : miss_penalty_original_us();
  }

  /// Bucket grid (microseconds) for per-request latency histograms: a
  /// 1-2-5 decade ladder spanning sub-query costs to several HDD seeks, so
  /// the default constants (101 us hit, ~3 ms miss) land mid-grid for any
  /// plausible knob setting.
  [[nodiscard]] static std::vector<double> histogram_bounds_us() {
    return {1,    2,    5,    10,    20,    50,    100,   200,
            500,  1000, 2000, 5000,  10000, 20000, 50000, 100000};
  }

  [[nodiscard]] const LatencyConfig& config() const noexcept { return config_; }

 private:
  LatencyConfig config_;
};

}  // namespace otac
