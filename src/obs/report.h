// Exportable view of one run: per-shard and merged metric snapshots, the
// barrier-time series, and derived summary figures, serializable as pretty
// JSON (machine-diffable, golden-testable) and as Prometheus text
// exposition format (scrapeable).
//
// Snapshots are taken only at deterministic points (retrain barriers, end
// of run), so every counter and histogram bucket in a report is a pure
// function of (trace, config, partition) — with the single documented
// exception of wall-clock duration histograms (names ending in
// "_seconds"), which report real elapsed time and therefore vary run to
// run. The golden test pins everything else exactly and only checks
// structural invariants for the timing metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace otac::obs {

/// One barrier snapshot: the merged registry state after all shards
/// finished requests <= request_index (cumulative, not per-interval).
struct BarrierSample {
  std::uint64_t request_index = 0;
  std::int64_t sim_seconds = 0;  ///< simulated time of the barrier request
  MetricsSnapshot merged;

  friend bool operator==(const BarrierSample&, const BarrierSample&) = default;
};

struct RunReport {
  // Run metadata, filled by whoever owns the run loop.
  std::string source;  ///< emitting binary ("otac_sim", "daily_operations")
  std::string mode;    ///< admission mode name, empty when not applicable
  std::string policy;  ///< replacement policy name
  std::size_t shards = 0;
  std::size_t threads = 0;

  MetricsSnapshot merged;
  std::vector<MetricsSnapshot> per_shard;  ///< shard order; empty if unsharded
  std::vector<BarrierSample> timeline;     ///< barrier order; last = end of run

  /// Non-additive summary figures (hit rates, Eq. 3 mean latency) computed
  /// from the merged totals at report-build time.
  std::map<std::string, double> derived;

  /// Latency quantiles exported for every histogram (p50/p90/p99/p999).
  static const std::vector<double>& quantiles();

  /// Pretty-printed JSON document (stable key order: std::map iteration).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format: counters/gauges/histograms with a
  /// `shard` label ("all" for the merged view, "0".."N-1" per shard), plus
  /// `_p50`-style gauges for histogram quantiles (Prometheus histograms
  /// carry no server-computed percentiles; the gauges make the acceptance
  /// numbers scrapeable directly).
  [[nodiscard]] std::string to_prometheus() const;

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

/// "latency.request_us" -> "otac_latency_request_us": Prometheus metric
/// names allow [a-zA-Z0-9_:] only.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view text);

/// "metrics.json" -> "metrics.prom"; paths without an extension get
/// ".prom" appended (dots inside directory names are not extensions).
[[nodiscard]] std::string prometheus_path_of(const std::string& json_path);

/// Writes `report.to_json()` to `json_path` and `report.to_prometheus()`
/// to `prometheus_path_of(json_path)`. Returns an empty string on success
/// and the path that failed to open otherwise.
[[nodiscard]] std::string write_report_files(const RunReport& report,
                                             const std::string& json_path);

}  // namespace otac::obs
