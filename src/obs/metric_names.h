// Central registry of every metric name the serving stack records. A
// string literal passed to MetricsRegistry::counter / gauge / histogram /
// set / set_gauge anywhere in src/, bench/, or examples/ must appear in
// this table: `tools/otac_lint` (rule `metric-registry`) cross-checks the
// call sites. Keeping the names in one sorted table is what makes report
// diffs reviewable and prevents near-duplicate names ("cache.hit" vs
// "cache.hits") from drifting into dashboards.
//
// Names with the "_seconds" suffix are wall-clock timing histograms — the
// one non-deterministic family in a RunReport (see core/run_metrics.h).
//
// The registry class itself stays generic (tests bind ad-hoc names); this
// table governs production call sites, not the obs library.
//
// To add a metric: add the name here (keep each list sorted), then bind it
// at the call site. RunReport::derived keys (file_hit_rate, ...) are not
// registry metrics and are not listed.
#pragma once

#include <string_view>

namespace otac::obs {

inline constexpr std::string_view kKnownCounters[] = {
    "cache.evictions",
    "cache.hits",
    "cache.insertions",
    "cache.misses",
    "cache.rejected",
    "cache.requests",
    "checkpoint.load_retries",
    "checkpoint.loads_cold",
    "checkpoint.loads_current",
    "checkpoint.loads_previous",
    "checkpoint.read_only_skips",
    "checkpoint.rejected_files",
    "checkpoint.save_failures",
    "checkpoint.save_retries",
    "checkpoint.saves",
    "daemon.connections",
    "daemon.frames_received",
    "daemon.frames_sent",
    "daemon.get_requests",
    "daemon.protocol_errors",
    "daemon.put_requests",
    "daemon.retry_replies",
    "daemon.shed_replies",
    "degradation.degraded_admits",
    "degradation.nonfinite_feature_requests",
    "degradation.overload_transitions",
    "degradation.predict_failures",
    "degradation.rejected_models",
    "degradation.retrain_failures",
    "degradation.retrain_retries",
    "degradation.retrain_timeouts",
    "degradation.shed_requests",
    "degradation.ssd_write_drops",
    "degradation.ssd_write_retries",
    "history.rectified",
    "serving.history_recorded",
    "serving.no_model_admits",
    "serving.predict_one_time",
    "serving.predict_reuse",
    "serving.rectified",
    "trainer.compiled_tree_swaps",
    "trainer.fit_skipped",
    "trainer.fits",
    "trainer.models_published",
    "trainer.samples_drained",
    "trainer.trainings",
};

inline constexpr std::string_view kKnownGauges[] = {
    "cache.evicted_bytes",
    "cache.hit_bytes",
    "cache.inserted_bytes",
    "cache.rejected_bytes",
    "cache.request_bytes",
    "history.capacity",
    "history.size",
};

inline constexpr std::string_view kKnownHistograms[] = {
    "checkpoint.load_seconds",
    "checkpoint.save_seconds",
    "daemon.batch_gather_size",
    "latency.request_us",   // core/run_metrics.h kLatencyHistogramName
    "serving.admission_batch_size",  // kAdmissionBatchHistogramName
    "trainer.fit_seconds",  // core/run_metrics.h kFitHistogramName
};

[[nodiscard]] constexpr bool is_known_metric(std::string_view name) {
  for (const std::string_view known : kKnownCounters) {
    if (name == known) return true;
  }
  for (const std::string_view known : kKnownGauges) {
    if (name == known) return true;
  }
  for (const std::string_view known : kKnownHistograms) {
    if (name == known) return true;
  }
  return false;
}

}  // namespace otac::obs
