// Unified observability layer: a lock-cheap metrics registry of named
// counters, gauges, and fixed-bucket histograms.
//
// The concurrency model is *per-shard accumulation with explicit merge*,
// not shared atomics: every request stream (a shard worker, the unsharded
// simulator loop, the global trainer) owns a private MetricsRegistry and
// mutates it through pre-resolved handles — a handle increment is one
// unsynchronized add on memory nothing else touches. Registries meet only
// at deterministic points (retrain barriers, end of run), where snapshots
// are taken and merged in shard order. That is what keeps the layer both
// cheap (no contention, no fences on the request path) and deterministic
// (merged counters are a pure function of the trace and the shard
// partition, never of thread scheduling) — the same bulk-synchronous
// argument core/sharded_cache.h makes for the model slot.
//
// Handles stay valid for the registry's lifetime: counters and gauges live
// in node-stable std::map slots, histograms are owned by the map too.
// Lookup by name happens once at bind time, never per request.
//
// Compile-time escape hatch: building with -DOTAC_OBS=OFF (which defines
// OTAC_OBS_OFF) flips obs::kEnabled to false, and every hot-path
// instrumentation site — guarded by `if constexpr (obs::kEnabled)` — is
// compiled out entirely. Snapshot-time population (copying CacheStats into
// a registry at a barrier) is not gated: it is off the request path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace otac::obs {

#if defined(OTAC_OBS_OFF)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Point-in-time state of one histogram: bucket upper bounds (ascending,
/// finite; an implicit +inf overflow bucket follows), per-bucket counts
/// (counts.size() == bounds.size() + 1), and the exact sum of observed
/// values. Plain data — copyable, comparable, serializable.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Quantile q in [0, 1] by linear interpolation inside the target bucket
  /// (bucket 0 interpolates from 0). Values in the overflow bucket report
  /// the last finite bound — the histogram cannot resolve beyond it.
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Bucketwise sum. Throws std::invalid_argument on mismatched bounds
  /// (histograms are only mergeable when they were cut from the same grid).
  void merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-bucket histogram designed for non-negative measures (latencies,
/// durations): values below the grid land in bucket 0, values past the
/// last bound land in the overflow bucket, totals are always preserved.
class FixedHistogram {
 public:
  FixedHistogram() = default;
  /// `upper_bounds` must be finite and strictly ascending.
  explicit FixedHistogram(std::vector<double> upper_bounds);

  /// Index of the bucket `value` falls into (binary search).
  [[nodiscard]] std::size_t bucket_of(double value) const noexcept;

  void add(double value, std::uint64_t weight = 1) noexcept {
    add_to_bucket(bucket_of(value), value, weight);
  }

  /// Fast path for pre-resolved bucket indices (e.g. LatencyRecorder, whose
  /// two possible values are known before the replay loop starts).
  void add_to_bucket(std::size_t bucket, double value,
                     std::uint64_t weight = 1) noexcept {
    counts_[bucket] += weight;
    sum_ += value * static_cast<double>(weight);
  }

  /// Bucketwise sum; throws std::invalid_argument on mismatched bounds.
  void merge(const FixedHistogram& other) { merge(other.snapshot()); }
  void merge(const HistogramSnapshot& other);

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double quantile(double q) const noexcept {
    return snapshot().quantile(q);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const {
    return HistogramSnapshot{upper_bounds_, counts_, sum_};
  }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_{0};  // bounds.size() + 1 entries
  double sum_ = 0.0;
};

/// Point-in-time state of a whole registry. std::map keys make iteration
/// order (and therefore every serialization) deterministic by name.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Additive merge: counters and gauges sum, histograms merge bucketwise,
  /// names missing on one side are adopted. Associative and (for the
  /// counter/gauge part) commutative — the registry merge-associativity
  /// test pins this across shard counts.
  void merge(const MetricsSnapshot& other);

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Named-metric registry. Single-stream by design (see file comment): one
/// instance per shard / serving loop, no internal locking.
class MetricsRegistry {
 public:
  /// Stable handle types: direct pointers at the backing storage. An
  /// increment through a handle is the entire hot-path cost.
  using Counter = std::uint64_t*;
  using Gauge = double*;

  MetricsRegistry() = default;
  // Handles point into this instance — copying would silently detach them.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Repeated calls with the same name return the same
  /// handle; new counters start at 0, gauges at 0.0.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);

  /// Find-or-create with this bucket grid; re-requesting an existing
  /// histogram ignores `upper_bounds` (first registration wins).
  [[nodiscard]] FixedHistogram* histogram(std::string_view name,
                                          std::vector<double> upper_bounds);

  /// Snapshot-time population helpers (assign, not add): barrier snapshots
  /// copy cumulative CacheStats-style totals into the registry, so repeated
  /// population at successive barriers stays idempotent.
  void set(std::string_view name, std::uint64_t value) {
    *counter(name) = value;
  }
  void set_gauge(std::string_view name, double value) { *gauge(name) = value; }

  /// Additive merge of another registry's current state (same semantics as
  /// MetricsSnapshot::merge).
  void merge(const MetricsRegistry& other) { merge(other.snapshot()); }
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, FixedHistogram, std::less<>> histograms_;
};

/// Per-request simulated-latency instrumentation. The paper's response-time
/// model (storage/latency_model.h) maps every request to one of two
/// constants — hit cost or miss penalty — so the recorder resolves both
/// bucket indices up front and the per-request cost is a single
/// add_to_bucket. Disabled (null histogram or OTAC_OBS_OFF) it is free.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  LatencyRecorder(FixedHistogram* histogram, double hit_us, double miss_us)
      : histogram_(histogram),
        hit_us_(hit_us),
        miss_us_(miss_us),
        hit_bucket_(histogram != nullptr ? histogram->bucket_of(hit_us) : 0),
        miss_bucket_(histogram != nullptr ? histogram->bucket_of(miss_us)
                                          : 0) {}

  void record(bool hit) noexcept {
    if constexpr (!kEnabled) return;
    if (histogram_ == nullptr) return;
    if (hit) {
      histogram_->add_to_bucket(hit_bucket_, hit_us_);
    } else {
      histogram_->add_to_bucket(miss_bucket_, miss_us_);
    }
  }

 private:
  FixedHistogram* histogram_ = nullptr;
  double hit_us_ = 0.0;
  double miss_us_ = 0.0;
  std::size_t hit_bucket_ = 0;
  std::size_t miss_bucket_ = 0;
};

}  // namespace otac::obs
