#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace otac::obs {

std::uint64_t HistogramSnapshot::count() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

double HistogramSnapshot::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank then interpolate
  // within the bucket the rank lands in).
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= rank && counts[b] > 0) {
      if (b >= upper_bounds.size()) {
        // Overflow bucket: unbounded above; the last finite bound is the
        // most honest answer the grid can give.
        return upper_bounds.empty() ? 0.0 : upper_bounds.back();
      }
      const double lo = b == 0 ? 0.0 : upper_bounds[b - 1];
      const double hi = upper_bounds[b];
      const double within =
          (rank - cumulative) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.empty() || count() == 0) {
    // Merging into a default-constructed / empty slot adopts the grid.
    if (upper_bounds.empty()) {
      *this = other;
      return;
    }
  }
  if (upper_bounds != other.upper_bounds) {
    throw std::invalid_argument(
        "HistogramSnapshot::merge: mismatched bucket bounds");
  }
  for (std::size_t b = 0; b < counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  sum += other.sum;
}

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  for (std::size_t b = 0; b < upper_bounds_.size(); ++b) {
    if (!std::isfinite(upper_bounds_[b]) ||
        (b > 0 && upper_bounds_[b] <= upper_bounds_[b - 1])) {
      throw std::invalid_argument(
          "FixedHistogram: bounds must be finite and strictly ascending");
    }
  }
}

std::size_t FixedHistogram::bucket_of(double value) const noexcept {
  // First bucket whose upper bound contains `value` (bounds are inclusive
  // upper edges, Prometheus `le` semantics); past the end = overflow.
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  return static_cast<std::size_t>(it - upper_bounds_.begin());
}

void FixedHistogram::merge(const HistogramSnapshot& other) {
  if (upper_bounds_.empty() && count() == 0) {
    upper_bounds_ = other.upper_bounds;
    counts_ = other.counts;
    sum_ += other.sum;
    return;
  }
  if (upper_bounds_ != other.upper_bounds) {
    throw std::invalid_argument(
        "FixedHistogram::merge: mismatched bucket bounds");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts[b];
  }
  sum_ += other.sum;
}

std::uint64_t FixedHistogram::count() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].merge(histogram);  // default slot adopts the grid
  }
}

MetricsRegistry::Counter MetricsRegistry::counter(std::string_view name) {
  // std::map nodes are stable under insertion, so the mapped value's
  // address is a valid handle for the registry's lifetime.
  return &counters_.try_emplace(std::string{name}, 0).first->second;
}

MetricsRegistry::Gauge MetricsRegistry::gauge(std::string_view name) {
  return &gauges_.try_emplace(std::string{name}, 0.0).first->second;
}

FixedHistogram* MetricsRegistry::histogram(std::string_view name,
                                           std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  return &histograms_
              .emplace(std::string{name},
                       FixedHistogram{std::move(upper_bounds)})
              .first->second;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    *counter(name) += value;
  }
  for (const auto& [name, value] : other.gauges) {
    *gauge(name) += value;
  }
  for (const auto& [name, snap] : other.histograms) {
    histogram(name, snap.upper_bounds)->merge(snap);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram.snapshot());
  }
  return snap;
}

}  // namespace otac::obs
