#include "obs/report.h"

#include <charconv>
#include <cinttypes>
#include <fstream>
#include <sstream>

namespace otac::obs {

namespace {

/// Shortest round-trip decimal form (std::to_chars): deterministic,
/// locale-independent, and stable for golden tests.
std::string format_double(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, ptr) : std::string{"0"};
}

constexpr std::string_view kQuantileSuffixes[] = {"p50", "p90", "p99",
                                                  "p999"};

void append_histogram_json(std::ostringstream& out,
                           const HistogramSnapshot& histogram,
                           const std::string& indent) {
  out << "{\n" << indent << "  \"upper_bounds\": [";
  for (std::size_t b = 0; b < histogram.upper_bounds.size(); ++b) {
    out << (b == 0 ? "" : ", ") << format_double(histogram.upper_bounds[b]);
  }
  out << "],\n" << indent << "  \"counts\": [";
  for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
    out << (b == 0 ? "" : ", ") << histogram.counts[b];
  }
  out << "],\n"
      << indent << "  \"count\": " << histogram.count() << ",\n"
      << indent << "  \"sum\": " << format_double(histogram.sum);
  const auto& qs = RunReport::quantiles();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    out << ",\n"
        << indent << "  \"" << kQuantileSuffixes[i]
        << "\": " << format_double(histogram.quantile(qs[i]));
  }
  out << "\n" << indent << "}";
}

void append_snapshot_json(std::ostringstream& out,
                          const MetricsSnapshot& snapshot,
                          const std::string& indent) {
  out << "{\n" << indent << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n")
        << indent << "    \"" << json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + indent + "  ") << "},\n"
      << indent << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n")
        << indent << "    \"" << json_escape(name)
        << "\": " << format_double(value);
    first = false;
  }
  out << (first ? "" : "\n" + indent + "  ") << "},\n"
      << indent << "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "\n" : ",\n")
        << indent << "    \"" << json_escape(name) << "\": ";
    append_histogram_json(out, histogram, indent + "    ");
    first = false;
  }
  out << (first ? "" : "\n" + indent + "  ") << "}\n" << indent << "}";
}

/// Emit one Prometheus series line: name{shard="...",extra} value.
void prom_line(std::ostringstream& out, const std::string& name,
               const std::string& shard, const std::string& extra_labels,
               const std::string& value) {
  out << name << "{shard=\"" << shard << "\"" << extra_labels << "} " << value
      << "\n";
}

void append_prometheus_family(
    std::ostringstream& out, const std::string& base_name,
    const std::string& type,
    const std::vector<std::pair<std::string, const MetricsSnapshot*>>& views,
    const std::string& metric) {
  out << "# TYPE " << base_name << " " << type << "\n";
  for (const auto& [shard, snapshot] : views) {
    if (type == "counter") {
      const auto it = snapshot->counters.find(metric);
      if (it != snapshot->counters.end()) {
        prom_line(out, base_name, shard, "", std::to_string(it->second));
      }
    } else if (type == "gauge") {
      const auto it = snapshot->gauges.find(metric);
      if (it != snapshot->gauges.end()) {
        prom_line(out, base_name, shard, "", format_double(it->second));
      }
    } else {  // histogram: cumulative le buckets + _sum + _count
      const auto it = snapshot->histograms.find(metric);
      if (it == snapshot->histograms.end()) continue;
      const HistogramSnapshot& histogram = it->second;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
        cumulative += histogram.counts[b];
        const std::string le = b < histogram.upper_bounds.size()
                                   ? format_double(histogram.upper_bounds[b])
                                   : std::string{"+Inf"};
        prom_line(out, base_name + "_bucket", shard, ",le=\"" + le + "\"",
                  std::to_string(cumulative));
      }
      prom_line(out, base_name + "_sum", shard, "",
                format_double(histogram.sum));
      prom_line(out, base_name + "_count", shard, "",
                std::to_string(histogram.count()));
    }
  }
}

}  // namespace

const std::vector<double>& RunReport::quantiles() {
  static const std::vector<double> kQuantiles{0.50, 0.90, 0.99, 0.999};
  return kQuantiles;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "otac_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RunReport::to_json() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"source\": \"" << json_escape(source) << "\",\n"
      << "  \"mode\": \"" << json_escape(mode) << "\",\n"
      << "  \"policy\": \"" << json_escape(policy) << "\",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"derived\": {";
  bool first = true;
  for (const auto& [name, value] : derived) {
    out << (first ? "\n" : ",\n")
        << "    \"" << json_escape(name) << "\": " << format_double(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"merged\": ";
  append_snapshot_json(out, merged, "  ");
  out << ",\n  \"per_shard\": [";
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    out << (s == 0 ? "\n    " : ",\n    ");
    append_snapshot_json(out, per_shard[s], "    ");
  }
  out << (per_shard.empty() ? "" : "\n  ") << "],\n  \"timeline\": [";
  for (std::size_t t = 0; t < timeline.size(); ++t) {
    const BarrierSample& sample = timeline[t];
    out << (t == 0 ? "\n" : ",\n")
        << "    {\n      \"request_index\": " << sample.request_index
        << ",\n      \"sim_seconds\": " << sample.sim_seconds
        << ",\n      \"metrics\": ";
    append_snapshot_json(out, sample.merged, "      ");
    out << "\n    }";
  }
  out << (timeline.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string RunReport::to_prometheus() const {
  std::ostringstream out;
  out << "# otacache run report: source=" << source << " mode=" << mode
      << " policy=" << policy << " shards=" << shards
      << " threads=" << threads << "\n";

  std::vector<std::pair<std::string, const MetricsSnapshot*>> views;
  views.emplace_back("all", &merged);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    views.emplace_back(std::to_string(s), &per_shard[s]);
  }

  // The merged snapshot names every metric any shard has (merge adopts
  // missing names), so iterating it covers the whole keyspace.
  for (const auto& [name, value] : merged.counters) {
    append_prometheus_family(out, prometheus_name(name), "counter", views,
                             name);
  }
  for (const auto& [name, value] : merged.gauges) {
    append_prometheus_family(out, prometheus_name(name), "gauge", views,
                             name);
  }
  for (const auto& [name, histogram] : merged.histograms) {
    const std::string base = prometheus_name(name);
    append_prometheus_family(out, base, "histogram", views, name);
    const auto& qs = quantiles();
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const std::string gauge_name =
          base + "_" + std::string{kQuantileSuffixes[i]};
      out << "# TYPE " << gauge_name << " gauge\n";
      for (const auto& [shard, snapshot] : views) {
        const auto it = snapshot->histograms.find(name);
        if (it == snapshot->histograms.end()) continue;
        prom_line(out, gauge_name, shard, "",
                  format_double(it->second.quantile(qs[i])));
      }
    }
  }
  for (const auto& [name, value] : derived) {
    const std::string base = prometheus_name("derived." + name);
    out << "# TYPE " << base << " gauge\n";
    prom_line(out, base, "all", "", format_double(value));
  }
  return out.str();
}

std::string prometheus_path_of(const std::string& json_path) {
  const std::size_t dot = json_path.find_last_of('.');
  const std::size_t slash = json_path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return json_path + ".prom";
  }
  return json_path.substr(0, dot) + ".prom";
}

std::string write_report_files(const RunReport& report,
                               const std::string& json_path) {
  std::ofstream json_out(json_path);
  if (!json_out) return json_path;
  json_out << report.to_json();
  const std::string prom_path = prometheus_path_of(json_path);
  std::ofstream prom_out(prom_path);
  if (!prom_out) return prom_path;
  prom_out << report.to_prometheus();
  return {};
}

}  // namespace otac::obs
