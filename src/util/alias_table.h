// Walker alias method for O(1) sampling from an arbitrary discrete
// distribution. Used for photo-type mixes and time-of-day (diurnal) bins.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace otac {

class AliasTable {
 public:
  AliasTable() = default;

  /// Build from non-negative weights (need not be normalized). Throws
  /// std::invalid_argument if weights is empty, contains a negative value,
  /// or sums to zero.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Draw an index in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  /// Normalized probability of index i (for testing / reporting).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_.at(i);
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace otac
