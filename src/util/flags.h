// Tiny command-line flag parser for the example/CLI binaries:
// --name=value and --name value forms, plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace otac {

class FlagParser {
 public:
  /// Parse argv; unknown arguments that don't start with "--" are collected
  /// as positionals. Throws std::invalid_argument on malformed flags.
  FlagParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace otac
