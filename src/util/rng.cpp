#include "util/rng.h"

namespace otac {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gauss_ = v * factor;
  have_gauss_ = true;
  return u * factor;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double u = next_double_open();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth inversion in the log domain is unnecessary at this size;
    // multiplicative form is fine because exp(-64) > DBL_MIN.
    const double limit = std::exp(-mean);
    double prod = next_double_open();
    std::uint64_t count = 0;
    while (prod > limit) {
      prod *= next_double_open();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // arrival counts where mean is large and per-bin exactness is irrelevant.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

}  // namespace otac
