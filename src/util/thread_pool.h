// Minimal fixed-size thread pool with a parallel_for helper.
//
// Experiment sweeps (many independent cache simulations) are embarrassingly
// parallel; the pool lets them saturate whatever cores exist while staying
// deterministic: work items receive their index, and anything random forks a
// per-index RNG stream, so results are independent of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace otac {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task; tasks must not throw (they run under noexcept workers —
  /// an escaping exception terminates, matching gsl "fail fast" guidance).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Run body(i) for i in [0, n), distributing across the pool and blocking
  /// until done. Exceptions in body are rethrown in the caller (first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace otac
