// Bounded Zipf (power-law) sampling.
//
// ZipfSampler draws integers k in [1, n] with P(k) proportional to
// k^-alpha using Hörmann's rejection-inversion method, which is O(1) per
// sample independent of n — essential when the universe has millions of
// objects. Web/photo popularity is Zipf-like (Breslau et al., INFOCOM'99),
// which is why the workload synthesizer leans on this sampler.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace otac {

class ZipfSampler {
 public:
  /// Distribution over [1, n] with exponent alpha >= 0 (alpha == 0 is
  /// uniform; alpha == 1 is the classic harmonic Zipf). Throws
  /// std::invalid_argument when n == 0 or alpha < 0.
  ZipfSampler(std::uint64_t n, double alpha);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Draw one sample in [1, n].
  std::uint64_t sample(Rng& rng) const noexcept;

  /// Exact probability mass of rank k (k in [1, n]); O(n) the first call is
  /// avoided by using the precomputed normalization from construction.
  [[nodiscard]] double pmf(std::uint64_t k) const noexcept;

 private:
  [[nodiscard]] double h(double x) const noexcept;
  [[nodiscard]] double h_integral(double x) const noexcept;
  [[nodiscard]] double h_integral_inverse(double x) const noexcept;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
  double norm_;  // sum_{k=1..n} k^-alpha, for pmf()
};

}  // namespace otac
