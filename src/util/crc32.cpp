#include "util/crc32.h"

#include <array>

namespace otac {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0U ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace otac
