// Aligned ASCII tables and CSV emission for benchmark harnesses.
//
// Every bench binary prints a paper-style table through TablePrinter so the
// reproduction output is uniform and diffable, and can optionally mirror the
// rows to a CSV file for plotting.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace otac {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 4);
  /// Format as a percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated form (RFC-4180-style quoting for cells containing
  /// commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to a path; returns false (and leaves no partial file
  /// guarantee) on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace otac
