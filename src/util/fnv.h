// FNV-1a folding over 64-bit words: the behavior-identity hash used by the
// golden-equivalence tests (eviction sequences) and by CacheStats to pin
// replay determinism. A sequence hash trips on any reordering, insertion,
// or value change — exactly what "bit-identical run" proofs need.
#pragma once

#include <cstdint>

namespace otac {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Fold one 64-bit value into `hash`, byte by byte (little-endian order).
constexpr void fnv64(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
}

/// Hash of a whole sequence already reduced to per-element hashes; used to
/// combine per-shard eviction hashes in a fixed shard order.
[[nodiscard]] constexpr std::uint64_t fnv64_combine(
    std::uint64_t seed, std::uint64_t value) noexcept {
  fnv64(seed, value);
  return seed;
}

}  // namespace otac
