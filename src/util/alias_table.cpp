#include "util/alias_table.h"

#include <stdexcept>

namespace otac {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasTable: weights sum to zero");
  }

  const std::size_t n = weights.size();
  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; > 1 means "overfull" bucket donating to others.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding.
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.next_double() < prob_[column] ? column : alias_[column];
}

}  // namespace otac
