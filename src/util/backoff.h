// Deterministic exponential backoff with bounded jitter, for the
// overload-resilience layer's retry loops (retrain watchdog, checkpoint
// save/load, SSD-write recovery).
//
// Two project invariants shape the design:
//  - No ambient randomness (otac-lint rule `ambient-random`): the jitter
//    stream is a seeded util/rng.h fork, so a retry schedule is a pure
//    function of (config, seed) and replays are reproducible.
//  - No unbounded retries (otac-lint rule `bounded-retry`): the budget is
//    part of the config and exhausted() is the loop condition, so a caller
//    literally cannot write `while (true) retry();` around this class
//    without the linter flagging it.
//
// The schedule is the classic capped exponential with proportional jitter:
//   envelope(k) = min(cap_s, base_s * multiplier^k)
//   delay(k)    = envelope(k) * (1 - jitter * u),  u ~ U[0,1) seeded
// so delay(k) always lies in [envelope(k) * (1 - jitter), envelope(k)] —
// the bounds the unit tests pin.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace otac {

struct BackoffConfig {
  double base_s = 0.001;    ///< first-retry envelope (seconds)
  double multiplier = 2.0;  ///< envelope growth per attempt
  double cap_s = 0.100;     ///< envelope ceiling (seconds)
  double jitter = 0.5;      ///< fraction of the envelope randomized away
  int max_retries = 2;      ///< retry budget; exhausted() gates the loop
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffConfig config = {},
                              std::uint64_t seed = 0) noexcept
      : config_(sanitized(config)), rng_(seed) {}

  /// True once the retry budget is spent; callers use this as the loop
  /// bound (never retry on an exhausted backoff).
  [[nodiscard]] bool exhausted() const noexcept {
    return attempt_ >= config_.max_retries;
  }

  /// Retries consumed so far.
  [[nodiscard]] int attempt() const noexcept { return attempt_; }

  /// Deterministic envelope for retry `k` (what next_delay_s jitters).
  [[nodiscard]] double envelope_s(int k) const noexcept {
    double envelope = config_.base_s;
    for (int i = 0; i < k; ++i) {
      envelope *= config_.multiplier;
      if (envelope >= config_.cap_s) return config_.cap_s;
    }
    return std::min(envelope, config_.cap_s);
  }

  /// Consume one retry from the budget and return its jittered delay in
  /// seconds. Requires !exhausted().
  [[nodiscard]] double next_delay_s() noexcept {
    const double envelope = envelope_s(attempt_);
    ++attempt_;
    const double u = rng_.next_double();  // [0, 1)
    return envelope * (1.0 - config_.jitter * u);
  }

  /// Rewind the schedule (e.g. after a success, before the next barrier);
  /// the jitter stream continues — it is not re-seeded, so two resets do
  /// not replay identical delays within one run.
  void reset() noexcept { attempt_ = 0; }

  [[nodiscard]] const BackoffConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] static BackoffConfig sanitized(BackoffConfig c) noexcept {
    c.base_s = std::max(c.base_s, 0.0);
    c.cap_s = std::max(c.cap_s, c.base_s);
    c.multiplier = std::max(c.multiplier, 1.0);
    c.jitter = std::clamp(c.jitter, 0.0, 1.0);
    c.max_retries = std::max(c.max_retries, 0);
    return c;
  }

  BackoffConfig config_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace otac
