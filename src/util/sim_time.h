// Simulation time: a strong integer type counting seconds since the start
// of the simulated epoch, plus calendar helpers (hour-of-day, day index).
//
// The workload model is diurnal, the trainer fires at a fixed hour, and the
// paper discretizes ages/recency at 10-minute granularity — so seconds are
// a sufficient and overflow-safe resolution for multi-year horizons.
#pragma once

#include <compare>
#include <cstdint>

namespace otac {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// Seconds since simulation epoch. A plain struct rather than
/// std::chrono to keep trace records trivially serializable.
struct SimTime {
  std::int64_t seconds = 0;

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(std::int64_t delta) const noexcept {
    return SimTime{seconds + delta};
  }
  constexpr SimTime operator-(std::int64_t delta) const noexcept {
    return SimTime{seconds - delta};
  }
  constexpr std::int64_t operator-(SimTime other) const noexcept {
    return seconds - other.seconds;
  }
};

[[nodiscard]] constexpr SimTime from_days(double days) noexcept {
  return SimTime{static_cast<std::int64_t>(days * kSecondsPerDay)};
}

[[nodiscard]] constexpr std::int64_t day_index(SimTime t) noexcept {
  // Floor division so times before the epoch land on negative days.
  const std::int64_t q = t.seconds / kSecondsPerDay;
  return (t.seconds % kSecondsPerDay < 0) ? q - 1 : q;
}

[[nodiscard]] constexpr std::int64_t second_of_day(SimTime t) noexcept {
  std::int64_t r = t.seconds % kSecondsPerDay;
  if (r < 0) r += kSecondsPerDay;
  return r;
}

[[nodiscard]] constexpr int hour_of_day(SimTime t) noexcept {
  return static_cast<int>(second_of_day(t) / kSecondsPerHour);
}

[[nodiscard]] constexpr int minute_of_day(SimTime t) noexcept {
  return static_cast<int>(second_of_day(t) / kSecondsPerMinute);
}

/// Age/recency bucketing at the paper's 10-minute granularity (§3.2.3).
[[nodiscard]] constexpr std::int64_t ten_minute_buckets(std::int64_t delta_seconds) noexcept {
  return delta_seconds / (10 * kSecondsPerMinute);
}

}  // namespace otac
