#include "util/zipf.h"

#include <cmath>
#include <stdexcept>

namespace otac {

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (alpha < 0.0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  norm_ = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    norm_ += std::pow(static_cast<double>(k), -alpha);
  }
}

double ZipfSampler::h(double x) const noexcept { return std::pow(x, -alpha_); }

double ZipfSampler::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  // Integral of t^-alpha dt: handles alpha == 1 via the expm1 identity,
  // numerically stable for alpha near 1.
  const double t = (1.0 - alpha_) * log_x;
  double value;
  if (std::abs(t) < 1e-8) {
    value = log_x * (1.0 + t / 2.0 + t * t / 6.0);
  } else {
    value = std::expm1(t) / (1.0 - alpha_);
  }
  return value;
}

double ZipfSampler::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  double value;
  if (std::abs(t) < 1e-8) {
    // log1p(t)/t ~ 1 - t/2 for small t, so log1p(t)/(1-alpha) ~ x(1 - t/2).
    value = x * (1.0 - t / 2.0);
  } else {
    value = std::log1p(t) / (1.0 - alpha_);
  }
  return std::exp(value);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  if (n_ == 1) return 1;
  while (true) {
    const double u =
        h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

double ZipfSampler::pmf(std::uint64_t k) const noexcept {
  if (k < 1 || k > n_) return 0.0;
  return std::pow(static_cast<double>(k), -alpha_) / norm_;
}

}  // namespace otac
