#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace otac {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Block-cyclic work stealing: lanes claim chunks of indices rather than
  // single ones, so cheap bodies (per-request feature hashing and the like)
  // don't pay one contended fetch_add per index. The chunk shrinks with n
  // so small sweeps (a capacity sweep is ~10 simulations) still spread over
  // every lane instead of serializing behind one big grab.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t lanes = std::min(n, thread_count());
  const std::size_t chunk =
      std::clamp<std::size_t>(n / (lanes * 8), 1, 64);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&] {
      for (std::size_t base = next.fetch_add(chunk); base < n;
           base = next.fetch_add(chunk)) {
        const std::size_t end = std::min(base + chunk, n);
        for (std::size_t i = base; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            const std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace otac
