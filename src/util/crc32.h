// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Guards the checkpoint file sections against torn writes and bit rot;
// matches zlib's crc32() so externally written sections can be verified
// with standard tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace otac {

/// One-shot or incremental: pass the previous return value as `seed` to
/// continue a running checksum (seed 0 starts a fresh one).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace otac
