#include "util/flags.h"

#include <stdexcept>

namespace otac {

FlagParser::FlagParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("FlagParser: bare '--' not supported");
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not a flag; else a boolean switch.
    if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  return values_.contains(name);
}

std::string FlagParser::get(const std::string& name,
                            const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double FlagParser::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("FlagParser: --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

std::int64_t FlagParser::get(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("FlagParser: --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

bool FlagParser::get(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument("FlagParser: --" + name +
                              " expects a boolean, got '" + value + "'");
}

}  // namespace otac
