#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace otac {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return out.str();
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) out << "  ";
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w;
  rule += 2 * (widths.size() - 1);
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]);
      if (c + 1 != row.size()) out << ",";
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

}  // namespace otac
