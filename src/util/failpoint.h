// Named failpoints for deterministic fault injection (the RocksDB
// sync-point / fault-injection pattern): production code marks failure
// surfaces with OTAC_FAILPOINT_* macros, and tests script them by name —
// fire always, once, every Nth evaluation, or with a seeded probability.
//
// With -DOTAC_FAILPOINTS=OFF the macros compile to a constant-false
// branch, so release builds carry no registry lookups on the hot path.
// The registry itself stays compiled (tests of the registry skip
// gracefully); only the *sites* disappear.
//
// Usage at a failure surface:
//
//   OTAC_FAILPOINT_THROW("checkpoint.write.crash");      // throw on fire
//   if (OTAC_FAILPOINT_ACTIVE("checkpoint.write.torn")) {
//     ... simulate the torn write ...
//   }
//
// and in a test:
//
//   fail::Registry::instance().enable_once("checkpoint.write.crash");
//   EXPECT_THROW(manager.save(snapshot), fail::FailpointTriggered);
//   fail::Registry::instance().disable_all();
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace otac::fail {

/// Thrown by OTAC_FAILPOINT_THROW sites (and by scripted actions that
/// simulate a crash). Carries the failpoint name for assertions.
class FailpointTriggered : public std::runtime_error {
 public:
  explicit FailpointTriggered(const std::string& name)
      : std::runtime_error("failpoint fired: " + name), name_(name) {}
  [[nodiscard]] const std::string& failpoint() const noexcept { return name_; }

 private:
  std::string name_;
};

enum class Trigger {
  always,       ///< fire on every evaluation
  once,         ///< fire on the first evaluation, then disarm
  every_nth,    ///< fire on evaluations n, 2n, 3n, ... after enabling
  probability,  ///< fire with probability p per evaluation (seeded RNG)
  window,       ///< fire on evaluations [from, to] after enabling, then stop
};

struct Spec {
  Trigger trigger = Trigger::always;
  std::uint64_t n = 1;       ///< period for every_nth
  double p = 1.0;            ///< fire probability for probability mode
  std::uint64_t seed = 0;    ///< RNG seed for probability mode
  std::uint64_t from = 1;    ///< first firing evaluation for window mode
  std::uint64_t to = 1;      ///< last firing evaluation for window mode
};

/// Process-wide registry of enabled failpoints. Thread-safe; evaluations
/// on disabled names are counted but cost one mutex + hash lookup, which
/// is acceptable because failpoints only mark cold failure surfaces.
class Registry {
 public:
  static Registry& instance();

  void enable(const std::string& name, Spec spec = {});
  void enable_once(const std::string& name) {
    enable(name, Spec{Trigger::once, 1, 1.0, 0});
  }
  void enable_every_nth(const std::string& name, std::uint64_t n) {
    enable(name, Spec{Trigger::every_nth, n == 0 ? 1 : n, 1.0, 0});
  }
  void enable_probability(const std::string& name, double p,
                          std::uint64_t seed) {
    enable(name, Spec{Trigger::probability, 1, p, seed});
  }
  /// Deterministic fault *window*: fire on evaluations `from`..`to`
  /// (1-based, inclusive), then never again — the chaos harness's way of
  /// pinning "faults clear" to an evaluation count instead of wall time.
  void enable_window(const std::string& name, std::uint64_t from,
                     std::uint64_t to) {
    Spec spec;
    spec.trigger = Trigger::window;
    spec.from = from == 0 ? 1 : from;
    spec.to = to;
    enable(name, spec);
  }

  void disable(const std::string& name);
  void disable_all();

  /// Evaluate the failpoint: record the hit and decide whether it fires.
  /// Called by the OTAC_FAILPOINT_* macros; tests normally don't call it.
  [[nodiscard]] bool should_fire(std::string_view name);

  /// Evaluations seen at this name (enabled or not) since last enable/reset.
  [[nodiscard]] std::uint64_t hits(const std::string& name) const;
  /// Evaluations that actually fired.
  [[nodiscard]] std::uint64_t fires(const std::string& name) const;
  /// Names with any recorded evaluation (sorted; diagnostic aid).
  [[nodiscard]] std::vector<std::string> evaluated_names() const;

 private:
  struct State {
    Spec spec{};
    bool enabled = false;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng = 0;  ///< SplitMix64 state for probability mode
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, State> states_;
};

}  // namespace otac::fail

#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED
#define OTAC_FAILPOINT_ACTIVE(name) \
  (::otac::fail::Registry::instance().should_fire(name))
#else
#define OTAC_FAILPOINT_ACTIVE(name) (false)
#endif

/// Throw FailpointTriggered when the named failpoint fires.
#define OTAC_FAILPOINT_THROW(name)                    \
  do {                                                \
    if (OTAC_FAILPOINT_ACTIVE(name)) {                \
      throw ::otac::fail::FailpointTriggered{(name)}; \
    }                                                 \
  } while (false)
