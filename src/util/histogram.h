// Lightweight fixed-bin histogram and streaming summary statistics used for
// trace characterization and experiment reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace otac {

/// Streaming mean/variance/min/max via Welford's algorithm.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the edge bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept {
    return bin_lo(i) + width_;
  }
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_.at(i); }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within bins.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Render a terminal bar chart, one line per bin.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace otac
