// Environment-variable configuration knobs shared by benches and examples.
//
// OTAC_SEED   — master RNG seed (default 42)
// OTAC_SCALE  — multiplies the default benchmark workload size (default 1.0)
// OTAC_CACHE_DIR — directory for disk-cached experiment results
//                  (default ".otac_bench_cache"; empty string disables)
#pragma once

#include <cstdint>
#include <string>

namespace otac {

/// Parse env var as double; returns fallback when unset or malformed.
double env_double(const char* name, double fallback) noexcept;

/// Parse env var as signed integer; returns fallback when unset or malformed.
std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// Return env var value or fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

std::uint64_t global_seed() noexcept;
double global_scale() noexcept;
std::string bench_cache_dir();

}  // namespace otac
