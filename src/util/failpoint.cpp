#include "util/failpoint.h"

#include <algorithm>

#include "util/failpoint_names.h"
#include "util/rng.h"

namespace otac::fail {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::enable(const std::string& name, Spec spec) {
  // A typo'd name would otherwise register fine and simply never fire —
  // the scripted fault silently tests nothing. Unknown names fail loudly,
  // and the message lists every registered name so the nearest valid
  // spelling is one read away.
  if (!is_known_failpoint(name)) {
    std::string message =
        "failpoint not in util/failpoint_names.h: " + name + " (registered:";
    for (const std::string_view known : kKnownFailpoints) {
      message += ' ';
      message += known;
    }
    message += ')';
    throw std::invalid_argument(message);
  }
  const std::lock_guard lock(mutex_);
  State& state = states_[name];
  state.spec = spec;
  state.enabled = true;
  state.hits = 0;
  state.fires = 0;
  state.rng = spec.seed;
}

void Registry::disable(const std::string& name) {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(name);
  if (it != states_.end()) it->second.enabled = false;
}

void Registry::disable_all() {
  const std::lock_guard lock(mutex_);
  for (auto& [name, state] : states_) state.enabled = false;
}

bool Registry::should_fire(std::string_view name) {
  const std::lock_guard lock(mutex_);
  State& state = states_[std::string{name}];
  ++state.hits;
  if (!state.enabled) return false;

  bool fire = false;
  switch (state.spec.trigger) {
    case Trigger::always:
      fire = true;
      break;
    case Trigger::once:
      fire = true;
      state.enabled = false;  // disarm after the first firing
      break;
    case Trigger::every_nth:
      fire = state.hits % state.spec.n == 0;
      break;
    case Trigger::probability: {
      // SplitMix64 keeps the per-failpoint stream reproducible from the
      // seed regardless of what other failpoints do.
      const double u =
          static_cast<double>(splitmix64(state.rng) >> 11) * 0x1.0p-53;
      fire = u < state.spec.p;
      break;
    }
    case Trigger::window:
      fire = state.hits >= state.spec.from && state.hits <= state.spec.to;
      if (state.hits >= state.spec.to) state.enabled = false;  // window past
      break;
  }
  if (fire) ++state.fires;
  return fire;
}

std::uint64_t Registry::hits(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(name);
  return it == states_.end() ? 0 : it->second.hits;
}

std::uint64_t Registry::fires(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(name);
  return it == states_.end() ? 0 : it->second.fires;
}

std::vector<std::string> Registry::evaluated_names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, state] : states_) {
    if (state.hits > 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace otac::fail
