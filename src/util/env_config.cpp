#include "util/env_config.h"

#include <cstdlib>

namespace otac {

double env_double(const char* name, double fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::int64_t>(value)
                                          : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? std::string{raw} : fallback;
}

std::uint64_t global_seed() noexcept {
  return static_cast<std::uint64_t>(env_int("OTAC_SEED", 42));
}

double global_scale() noexcept {
  const double scale = env_double("OTAC_SCALE", 1.0);
  return scale > 0.0 ? scale : 1.0;
}

std::string bench_cache_dir() {
  return env_string("OTAC_CACHE_DIR", ".otac_bench_cache");
}

}  // namespace otac
