// Open-addressing hash index: integral key -> 32-bit slot handle.
//
// The cache policies pay a hash probe on *every* request, so the index is
// built for that path: linear probing over a flat power-of-two slot array
// (one cache line covers several probes), no per-node allocation, and
// backward-shift deletion instead of tombstones so lookup cost never
// degrades as entries churn. Values are dense 32-bit handles into a slab
// (see cachesim/slab_list.h); `npos` is reserved as the empty marker.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace otac {

template <typename Key = std::uint64_t>
class OpenHashIndex {
 public:
  static constexpr std::uint32_t npos = 0xFFFFFFFFu;

  explicit OpenHashIndex(std::size_t expected = 0) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{Key{}, npos});
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Slot handle for `key`, or npos when absent.
  [[nodiscard]] std::uint32_t find(Key key) const noexcept {
    std::size_t i = hash(key) & mask_;
    while (slots_[i].value != npos) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  [[nodiscard]] bool contains(Key key) const noexcept {
    return find(key) != npos;
  }

  /// Insert a key that must not be present. `value` must not be npos.
  void insert(Key key, std::uint32_t value) {
    assert(value != npos && "npos is the empty marker");
    assert(find(key) == npos && "duplicate key");
    if ((size_ + 1) * 2 > mask_ + 1) grow();
    std::size_t i = hash(key) & mask_;
    while (slots_[i].value != npos) i = (i + 1) & mask_;
    slots_[i] = Slot{key, value};
    ++size_;
  }

  /// Update the handle of an existing key.
  void assign(Key key, std::uint32_t value) {
    std::size_t i = hash(key) & mask_;
    while (true) {
      assert(slots_[i].value != npos && "assign of absent key");
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Remove a key that must be present (backward-shift deletion keeps the
  /// probe sequences of the survivors intact — no tombstones).
  void erase(Key key) {
    std::size_t i = hash(key) & mask_;
    while (true) {
      assert(slots_[i].value != npos && "erase of absent key");
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t probe = i;
    while (true) {
      probe = (probe + 1) & mask_;
      if (slots_[probe].value == npos) break;
      const std::size_t home = hash(slots_[probe].key) & mask_;
      // The entry at `probe` may fill the hole iff its home position does
      // not lie strictly inside (hole, probe] in circular order.
      const bool movable = hole <= probe ? (home <= hole || home > probe)
                                         : (home <= hole && home > probe);
      if (movable) {
        slots_[hole] = slots_[probe];
        hole = probe;
      }
    }
    slots_[hole].value = npos;
    --size_;
  }

  void clear() noexcept {
    for (Slot& slot : slots_) slot.value = npos;
    size_ = 0;
  }

 private:
  struct Slot {
    Key key;
    std::uint32_t value;  // npos == empty
  };

  [[nodiscard]] static std::size_t hash(Key key) noexcept {
    // splitmix64 finalizer: full avalanche so dense PhotoIds spread evenly.
    auto x = static_cast<std::uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = (mask_ + 1) << 1;
    slots_.assign(cap, Slot{Key{}, npos});
    mask_ = cap - 1;
    for (const Slot& slot : old) {
      if (slot.value == npos) continue;
      std::size_t i = hash(slot.key) & mask_;
      while (slots_[i].value != npos) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace otac
