// Deterministic pseudo-random number generation for simulations.
//
// All randomness in otacache flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The core generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64, which is both
// faster and of higher statistical quality than std::mt19937_64 while
// keeping the state small enough to copy freely.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace otac {

/// SplitMix64 step: used to expand a single seed into generator state and
/// to derive independent child seeds. Stateless helper.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, but the member distributions below are preferred
/// because they are guaranteed stable across standard library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    have_gauss_ = false;
  }

  /// Derive an independent stream; children of distinct indices do not
  /// overlap in practice because the derivation rehashes through SplitMix64.
  [[nodiscard]] Rng fork(std::uint64_t stream_index) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_index + 1));
    sm ^= state_[3];
    return Rng{splitmix64(sm)};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe to pass to log().
  double next_double_open() noexcept { return 1.0 - next_double(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept {
    return -std::log(next_double_open()) / rate;
  }

  /// Pareto type II (Lomax): survival (1 + x/scale)^-shape, support x >= 0.
  /// Heavy-tailed; used for popularity age decay. Requires shape, scale > 0.
  double lomax(double shape, double scale) noexcept {
    return scale * (std::pow(next_double_open(), -1.0 / shape) - 1.0);
  }

  /// Geometric number of failures before first success, support {0,1,...}.
  /// Requires p in (0, 1].
  std::uint64_t geometric(double p) noexcept;

  /// Poisson with the given mean; inversion for small means, PTRS-style
  /// normal approximation fallback above 64 for speed.
  std::uint64_t poisson(double mean) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool have_gauss_ = false;
};

}  // namespace otac
