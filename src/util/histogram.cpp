#include "util/histogram.h"

#include <sstream>
#include <stdexcept>

namespace otac {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) noexcept {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] >= target) {
      const double inside =
          counts_[i] > 0.0 ? (target - cumulative) / counts_[i] : 0.0;
      return bin_lo(i) + inside * width_;
    }
    cumulative += counts_[i];
  }
  return bin_hi(counts_.size() - 1);
}

std::string Histogram::ascii(std::size_t max_width) const {
  double peak = 0.0;
  for (const double c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak *
                                              static_cast<double>(max_width))
                   : 0;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar_len, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace otac
