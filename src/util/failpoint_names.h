// Central registry of every production failpoint name. A failpoint site
// (OTAC_FAILPOINT_ACTIVE / OTAC_FAILPOINT_THROW) may only use a name
// listed here: `tools/otac_lint` (rule `failpoint-registry`) checks every
// string literal at a site against this table, and Registry::enable
// rejects unknown names at runtime so a typo in a test script fails loudly
// instead of silently never firing.
//
// Names under the reserved "test." prefix are exempt — unit tests of the
// registry itself exercise trigger mechanics with synthetic names.
//
// To add a failpoint: add the name here (keep the list sorted), then use
// it at the site. Nothing else to update — the linter and the runtime
// check both read this table.
#pragma once

#include <string_view>

namespace otac::fail {

inline constexpr std::string_view kKnownFailpoints[] = {
    "chaos.flash_crowd",
    "checkpoint.load.io",
    "checkpoint.rename.fail",
    "checkpoint.rotate.fail",
    "checkpoint.write.bitflip",
    "checkpoint.write.crash",
    "checkpoint.write.open_fail",
    "checkpoint.write.torn",
    "storage.ssd.write_error",
    "trainer.train.fail",
    "trainer.train.hang",
};

/// Reserved prefix for synthetic names used by registry unit tests.
inline constexpr std::string_view kTestFailpointPrefix = "test.";

[[nodiscard]] constexpr bool is_known_failpoint(std::string_view name) {
  if (name.substr(0, kTestFailpointPrefix.size()) == kTestFailpointPrefix) {
    return true;
  }
  for (const std::string_view known : kKnownFailpoints) {
    if (name == known) return true;
  }
  return false;
}

}  // namespace otac::fail
