// Trace-driven cache simulation: one pass of a Trace through a replacement
// policy plus an admission policy, producing CacheStats.
#pragma once

#include <functional>

#include "cachesim/admission.h"
#include "cachesim/cache_policy.h"
#include "cachesim/cache_stats.h"
#include "obs/metrics.h"
#include "trace/next_access.h"
#include "trace/trace.h"

namespace otac {

class Simulator {
 public:
  /// Invoked whenever the simulated calendar day changes, before the first
  /// request of the new day is processed (daily retraining hook, §4.4.3).
  using DayCallback = std::function<void(std::int64_t day, std::uint64_t index)>;

  explicit Simulator(const Trace& trace) : trace_(&trace) {}

  /// Provide oracle next-access info (required for Belady and
  /// OracleAdmission; harmless otherwise).
  void set_oracle(const NextAccessInfo& oracle) { oracle_ = &oracle; }
  void set_day_callback(DayCallback callback) {
    on_new_day_ = std::move(callback);
  }

  /// Feed each measured request's hit/miss outcome to a pre-resolved
  /// latency recorder (obs layer). Null (default) records nothing; the
  /// recorder must outlive run().
  void set_latency_recorder(obs::LatencyRecorder* recorder) {
    latency_ = recorder;
  }

  /// Exclude the first `fraction` of requests from the returned statistics
  /// (cache state still evolves through them). Standard warm-cache
  /// measurement practice; 0 (default) measures the cold start like the
  /// paper's 9-day end-to-end runs.
  void set_warmup_fraction(double fraction);

  /// Run the whole trace. Policy/admission keep their state afterwards, so
  /// warm-cache continuation runs are possible by calling run() again with
  /// a different trace via another Simulator.
  CacheStats run(CachePolicy& policy, AdmissionPolicy& admission) const;

 private:
  const Trace* trace_;
  const NextAccessInfo* oracle_ = nullptr;
  DayCallback on_new_day_;
  obs::LatencyRecorder* latency_ = nullptr;
  double warmup_fraction_ = 0.0;
};

}  // namespace otac
