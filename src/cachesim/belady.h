// Belady's offline-optimal replacement (MIN): evict the resident object
// whose next access lies farthest in the future. Provides the upper bound
// curve in Figs. 2 and 6-10. The simulator feeds next-access positions from
// the oracle (trace/next_access.h) through set_next_access_hint() before
// each access/insert. With variable sizes MIN is no longer strictly optimal
// (optimal is NP-hard); farthest-next-access remains the standard bound.
#pragma once

#include <queue>
#include <unordered_map>
#include <vector>

#include "cachesim/cache_policy.h"

namespace otac {

class BeladyCache final : public CachePolicy {
 public:
  explicit BeladyCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  void set_next_access_hint(std::uint64_t next_index) override {
    hint_ = next_index;
  }

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return resident_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return resident_.size();
  }
  [[nodiscard]] std::string name() const override { return "Belady"; }

 private:
  struct Resident {
    std::uint32_t size;
    std::uint64_t next;  // authoritative next-access position
  };
  struct HeapItem {
    std::uint64_t next;
    PhotoId key;
    bool operator<(const HeapItem& other) const noexcept {
      return next < other.next;  // max-heap: farthest next on top
    }
  };

  void evict_one();

  std::uint64_t hint_ = kNeverAgain;
  std::unordered_map<PhotoId, Resident> resident_;
  std::priority_queue<HeapItem> heap_;  // lazy: stale items skipped on pop
  std::uint64_t used_ = 0;
};

}  // namespace otac
