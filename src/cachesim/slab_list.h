// Slab-backed intrusive doubly-linked lists for the replacement policies.
//
// std::list pays a heap allocation per node and scatters nodes across the
// heap; every splice chases three cold pointers. Here all nodes of a policy
// live in one contiguous pool addressed by 32-bit indices, freed nodes are
// recycled through a free list, and link fields are stored inline — so a
// recency touch (unlink + push_front) is a handful of stores into memory
// that is usually already in cache, and policies never allocate after the
// pool warms up.
//
// A node can participate in several lists at once (LIRS keeps a block on
// its recency stack and its resident queue simultaneously); each list uses
// one of `Channels` independent (prev, next) link pairs. List heads are
// plain `ListRef` values owned by the policy; all mutation goes through the
// pool so link updates stay in one place.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace otac {

template <typename T, unsigned Channels = 1>
class SlabList {
  static_assert(Channels >= 1);

 public:
  using Index = std::uint32_t;
  static constexpr Index npos = 0xFFFFFFFFu;

  /// Head/tail/size of one list. Multiple lists may share the pool (ARC's
  /// T1/T2/B1/B2) as long as each node is on at most one list per channel.
  struct ListRef {
    Index head = npos;
    Index tail = npos;
    std::size_t size = 0;

    [[nodiscard]] bool empty() const noexcept { return head == npos; }
  };

  explicit SlabList(std::size_t expected = 0) { nodes_.reserve(expected); }

  /// Take a node from the free list (or grow the pool) — not yet linked.
  Index acquire(T value) {
    Index i;
    if (free_ != npos) {
      i = free_;
      free_ = nodes_[i].next[0];
    } else {
      i = static_cast<Index>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& node = nodes_[i];
    node.value = std::move(value);
    for (unsigned c = 0; c < Channels; ++c) {
      node.prev[c] = npos;
      node.next[c] = npos;
    }
    return i;
  }

  /// Return a node to the free list. Must already be unlinked everywhere.
  void release(Index i) {
    nodes_[i].next[0] = free_;
    free_ = i;
  }

  [[nodiscard]] T& operator[](Index i) noexcept { return nodes_[i].value; }
  [[nodiscard]] const T& operator[](Index i) const noexcept {
    return nodes_[i].value;
  }

  [[nodiscard]] Index next(Index i, unsigned channel = 0) const noexcept {
    return nodes_[i].next[channel];
  }
  [[nodiscard]] Index prev(Index i, unsigned channel = 0) const noexcept {
    return nodes_[i].prev[channel];
  }

  void push_front(ListRef& list, Index i, unsigned channel = 0) {
    Node& node = nodes_[i];
    node.prev[channel] = npos;
    node.next[channel] = list.head;
    if (list.head != npos) {
      nodes_[list.head].prev[channel] = i;
    } else {
      list.tail = i;
    }
    list.head = i;
    ++list.size;
  }

  void push_back(ListRef& list, Index i, unsigned channel = 0) {
    Node& node = nodes_[i];
    node.next[channel] = npos;
    node.prev[channel] = list.tail;
    if (list.tail != npos) {
      nodes_[list.tail].next[channel] = i;
    } else {
      list.head = i;
    }
    list.tail = i;
    ++list.size;
  }

  void unlink(ListRef& list, Index i, unsigned channel = 0) {
    Node& node = nodes_[i];
    if (node.prev[channel] != npos) {
      nodes_[node.prev[channel]].next[channel] = node.next[channel];
    } else {
      assert(list.head == i);
      list.head = node.next[channel];
    }
    if (node.next[channel] != npos) {
      nodes_[node.next[channel]].prev[channel] = node.prev[channel];
    } else {
      assert(list.tail == i);
      list.tail = node.prev[channel];
    }
    node.prev[channel] = npos;
    node.next[channel] = npos;
    --list.size;
  }

  /// splice-to-front: the std::list::splice(begin, ...) idiom of every
  /// recency policy, without touching an allocator.
  void move_front(ListRef& from, ListRef& to, Index i, unsigned channel = 0) {
    unlink(from, i, channel);
    push_front(to, i, channel);
  }

  /// Number of pool slots (resident + free); memory high-water mark.
  [[nodiscard]] std::size_t slots() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    T value{};
    Index prev[Channels];
    Index next[Channels];
  };

  std::vector<Node> nodes_;
  Index free_ = npos;
};

}  // namespace otac
