// LIRS (Jiang & Zhang, SIGMETRICS'02) for variable-size objects.
//
// Blocks with low Inter-Reference Recency (LIR) occupy ~lir_fraction of the
// cache; the remainder holds resident HIR blocks in a FIFO queue Q. The
// recency stack S tracks LIR blocks, resident HIRs, and a bounded set of
// non-resident HIRs; a HIR reuse while still on S has, by construction, an
// IRR lower than the oldest LIR and is promoted. The stack fraction
// C_s/C = lir_fraction is the paper's R_s used to scale the LIRS one-time
// criteria (M_LIRS = M_LRU * R_s, §5.2).
#pragma once

#include <list>
#include <unordered_map>

#include "cachesim/cache_policy.h"

namespace otac {

class LirsCache final : public CachePolicy {
 public:
  /// lir_fraction in (0,1): byte share of the cache reserved for LIR blocks.
  LirsCache(std::uint64_t capacity_bytes, double lir_fraction = 0.9);

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override;
  [[nodiscard]] std::uint64_t used_bytes() const override { return resident_bytes_; }
  [[nodiscard]] std::size_t object_count() const override {
    return resident_count_;
  }
  [[nodiscard]] std::string name() const override { return "LIRS"; }

  [[nodiscard]] double lir_fraction() const noexcept { return lir_fraction_; }
  [[nodiscard]] std::uint64_t lir_bytes() const noexcept { return lir_bytes_; }

  /// Internal-consistency check used by property tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  enum class State : std::uint8_t { lir, hir_resident, hir_nonresident };

  struct Entry {
    std::uint32_t size = 0;
    State state = State::hir_resident;
    bool in_stack = false;
    bool in_queue = false;
    std::list<PhotoId>::iterator stack_it;
    std::list<PhotoId>::iterator queue_it;
    std::list<PhotoId>::iterator nonres_it;
  };

  void stack_push_top(PhotoId key, Entry& entry);
  void stack_remove(Entry& entry);
  void queue_push_back(PhotoId key, Entry& entry);
  void queue_remove(Entry& entry);
  /// Remove non-LIR entries from the stack bottom (LIRS "stack pruning").
  void prune();
  /// Demote stack-bottom LIR blocks until LIR bytes fit their share.
  void shrink_lir();
  /// Evict resident HIR queue heads until residents fit the capacity.
  void evict_to_fit(std::uint64_t incoming);
  /// evict_to_fit, then demote stack-bottom LIR blocks (and evict them)
  /// when the HIR area alone cannot absorb `incoming` bytes.
  void make_room(std::uint64_t incoming);
  void enforce_nonresident_bound();

  double lir_fraction_;
  std::uint64_t lir_capacity_;
  std::uint64_t lir_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::size_t resident_count_ = 0;

  std::list<PhotoId> stack_;   // front = most recent
  std::list<PhotoId> queue_;   // front = next eviction
  std::list<PhotoId> nonres_;  // front = oldest non-resident (bound enforcement)
  std::unordered_map<PhotoId, Entry> table_;
};

}  // namespace otac
