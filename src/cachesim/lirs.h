// LIRS (Jiang & Zhang, SIGMETRICS'02) for variable-size objects.
//
// Blocks with low Inter-Reference Recency (LIR) occupy ~lir_fraction of the
// cache; the remainder holds resident HIR blocks in a FIFO queue Q. The
// recency stack S tracks LIR blocks, resident HIRs, and a bounded set of
// non-resident HIRs; a HIR reuse while still on S has, by construction, an
// IRR lower than the oldest LIR and is promoted. The stack fraction
// C_s/C = lir_fraction is the paper's R_s used to scale the LIRS one-time
// criteria (M_LIRS = M_LRU * R_s, §5.2).
//
// One slab node per tracked block carries three independent link channels
// (stack S, queue Q, non-resident ghost order), so a block can sit on S and
// Q simultaneously without auxiliary std::list iterators; the per-key
// unordered_map is replaced by an open-addressing index into the slab.
#pragma once

#include "cachesim/cache_policy.h"
#include "cachesim/slab_list.h"
#include "util/open_hash.h"

namespace otac {

class LirsCache final : public CachePolicy {
 public:
  /// lir_fraction in (0,1): byte share of the cache reserved for LIR blocks.
  LirsCache(std::uint64_t capacity_bytes, double lir_fraction = 0.9);

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override;
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return resident_bytes_;
  }
  [[nodiscard]] std::size_t object_count() const override {
    return resident_count_;
  }
  [[nodiscard]] std::string name() const override { return "LIRS"; }

  [[nodiscard]] double lir_fraction() const noexcept { return lir_fraction_; }
  [[nodiscard]] std::uint64_t lir_bytes() const noexcept { return lir_bytes_; }

  /// Internal-consistency check used by property tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  enum class State : std::uint8_t { lir, hir_resident, hir_nonresident };

  /// Link channels of the shared slab node.
  enum Channel : unsigned { kStack = 0, kQueue = 1, kNonres = 2 };

  struct Entry {
    PhotoId key = 0;
    std::uint32_t size = 0;
    State state = State::hir_resident;
    bool in_stack = false;
    bool in_queue = false;
  };
  using Pool = SlabList<Entry, 3>;
  using Index = Pool::Index;
  static constexpr Index npos = Pool::npos;

  void stack_push_top(Index node);
  void stack_remove(Index node);
  void queue_push_back(Index node);
  void queue_remove(Index node);
  /// Drop the entry everywhere and recycle its slab node.
  void forget(Index node);
  /// Remove non-LIR entries from the stack bottom (LIRS "stack pruning").
  void prune();
  /// Demote stack-bottom LIR blocks until LIR bytes fit their share.
  void shrink_lir();
  /// Evict resident HIR queue heads until residents fit the capacity.
  void evict_to_fit(std::uint64_t incoming);
  /// evict_to_fit, then demote stack-bottom LIR blocks (and evict them)
  /// when the HIR area alone cannot absorb `incoming` bytes.
  void make_room(std::uint64_t incoming);
  void enforce_nonresident_bound();

  double lir_fraction_;
  std::uint64_t lir_capacity_;
  std::uint64_t lir_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::size_t resident_count_ = 0;

  Pool pool_;
  Pool::ListRef stack_;   // head = most recent
  Pool::ListRef queue_;   // head = next eviction
  Pool::ListRef nonres_;  // head = oldest non-resident (bound enforcement)
  OpenHashIndex<PhotoId> table_;
};

}  // namespace otac
