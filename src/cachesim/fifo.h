// First-In-First-Out: eviction in insertion order; hits do not refresh.
//
// Same allocation-free substrate as LRU: slab pool + open-addressing index.
#pragma once

#include "cachesim/cache_policy.h"
#include "cachesim/slab_list.h"
#include "util/open_hash.h"

namespace otac {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
  };
  using Pool = SlabList<Entry>;

  Pool pool_;
  Pool::ListRef queue_;  // head = oldest
  OpenHashIndex<PhotoId> index_;
  std::uint64_t used_ = 0;
};

}  // namespace otac
