// First-In-First-Out: eviction in insertion order; hits do not refresh.
#pragma once

#include <list>
#include <unordered_map>

#include "cachesim/cache_policy.h"

namespace otac {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
  };

  std::list<Entry> queue_;  // front = oldest
  std::unordered_map<PhotoId, std::list<Entry>::iterator> index_;
  std::uint64_t used_ = 0;
};

}  // namespace otac
