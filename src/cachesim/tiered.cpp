#include "cachesim/tiered.h"

namespace otac {

TieredStats TieredSimulator::run(CachePolicy& oc,
                                 AdmissionPolicy& oc_admission,
                                 CachePolicy& dc,
                                 AdmissionPolicy& dc_admission) const {
  TieredStats stats;
  oc.set_eviction_callback([&stats](PhotoId, std::uint32_t size) {
    stats.oc.evictions += 1;
    stats.oc.evicted_bytes += size;
  });
  dc.set_eviction_callback([&stats](PhotoId, std::uint32_t size) {
    stats.dc.evictions += 1;
    stats.dc.evicted_bytes += size;
  });

  const Trace& trace = *trace_;
  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const Request& request = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(request.photo);

    if (oracle_ != nullptr) oc.set_next_access_hint(oracle_->next[i]);
    stats.oc.requests += 1;
    stats.oc.request_bytes += photo.size_bytes;
    const bool oc_hit = oc.access(request.photo, photo.size_bytes);
    if (oc_hit) {
      stats.oc.hits += 1;
      stats.oc.hit_bytes += photo.size_bytes;
      oc_admission.observe(i, request, photo, true);
      continue;  // served at the edge; DC never sees the request
    }

    // OC miss: the request reaches the DC tier.
    if (oracle_ != nullptr) dc.set_next_access_hint(oracle_->next[i]);
    stats.dc.requests += 1;
    stats.dc.request_bytes += photo.size_bytes;
    const bool dc_hit = dc.access(request.photo, photo.size_bytes);
    if (dc_hit) {
      stats.dc.hits += 1;
      stats.dc.hit_bytes += photo.size_bytes;
    } else {
      stats.backend_reads += 1;
      stats.backend_bytes += photo.size_bytes;
      if (dc_admission.admit(i, request, photo)) {
        if (dc.insert(request.photo, photo.size_bytes)) {
          stats.dc.insertions += 1;
          stats.dc.inserted_bytes += photo.size_bytes;
        }
      } else {
        stats.dc.rejected += 1;
        stats.dc.rejected_bytes += photo.size_bytes;
      }
    }
    // Fill the OC on the way back (whether the photo came from DC or
    // backend), subject to the OC admission policy.
    if (oc_admission.admit(i, request, photo)) {
      if (oc.insert(request.photo, photo.size_bytes)) {
        stats.oc.insertions += 1;
        stats.oc.inserted_bytes += photo.size_bytes;
      }
    } else {
      stats.oc.rejected += 1;
      stats.oc.rejected_bytes += photo.size_bytes;
    }
    oc_admission.observe(i, request, photo, false);
    dc_admission.observe(i, request, photo, dc_hit);
  }
  return stats;
}

}  // namespace otac
