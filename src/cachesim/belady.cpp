#include "cachesim/belady.h"

#include <cassert>

namespace otac {

bool BeladyCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return false;
  it->second.next = hint_;
  heap_.push(HeapItem{hint_, key});
  return true;
}

bool BeladyCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!resident_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) evict_one();
  resident_.emplace(key, Resident{size_bytes, hint_});
  heap_.push(HeapItem{hint_, key});
  used_ += size_bytes;
  return true;
}

void BeladyCache::evict_one() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    heap_.pop();
    const auto it = resident_.find(top.key);
    if (it == resident_.end() || it->second.next != top.next) {
      continue;  // stale heap entry
    }
    used_ -= it->second.size;
    notify_evict(top.key, it->second.size);
    resident_.erase(it);
    return;
  }
  assert(false && "evict_one called with nothing resident");
}

}  // namespace otac
