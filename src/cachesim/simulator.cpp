#include "cachesim/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace otac {

void Simulator::set_warmup_fraction(double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("Simulator: warmup fraction must be in [0,1)");
  }
  warmup_fraction_ = fraction;
}

CacheStats Simulator::run(CachePolicy& policy,
                          AdmissionPolicy& admission) const {
  CacheStats stats;
  bool measuring = warmup_fraction_ == 0.0;
  policy.set_eviction_callback([&stats, &measuring](PhotoId key,
                                                    std::uint32_t size) {
    if (!measuring) return;
    stats.note_eviction(key, size);
  });
  const Trace& trace = *trace_;
  const auto warmup_end = static_cast<std::uint64_t>(
      warmup_fraction_ * static_cast<double>(trace.requests.size()));
  std::int64_t current_day =
      trace.requests.empty() ? 0 : day_index(trace.requests.front().time);
  if (on_new_day_ && !trace.requests.empty()) {
    on_new_day_(current_day, 0);
  }

  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const Request& request = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(request.photo);

    if (on_new_day_) {
      const std::int64_t day = day_index(request.time);
      if (day != current_day) {
        current_day = day;
        on_new_day_(day, i);
      }
    }

    if (oracle_ != nullptr) {
      policy.set_next_access_hint(oracle_->next[i]);
    }

    if (!measuring && i >= warmup_end) measuring = true;

    const bool hit = policy.access(request.photo, photo.size_bytes);
    if (measuring) {
      stats.requests += 1;
      stats.request_bytes += photo.size_bytes;
      if constexpr (obs::kEnabled) {
        if (latency_ != nullptr) latency_->record(hit);
      }
    }
    if (hit) {
      if (measuring) {
        stats.hits += 1;
        stats.hit_bytes += photo.size_bytes;
      }
    } else if (admission.admit(i, request, photo)) {
      if (policy.insert(request.photo, photo.size_bytes) && measuring) {
        stats.insertions += 1;
        stats.inserted_bytes += photo.size_bytes;
      }
    } else if (measuring) {
      stats.rejected += 1;
      stats.rejected_bytes += photo.size_bytes;
    }
    admission.observe(i, request, photo, hit);
  }
  return stats;
}

}  // namespace otac
