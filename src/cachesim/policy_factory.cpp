#include <cctype>
#include <stdexcept>

#include "cachesim/arc.h"
#include "cachesim/belady.h"
#include "cachesim/cache_policy.h"
#include "cachesim/fifo.h"
#include "cachesim/lfu.h"
#include "cachesim/lirs.h"
#include "cachesim/lru.h"
#include "cachesim/s3lru.h"

namespace otac {

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::lru:
      return "LRU";
    case PolicyKind::fifo:
      return "FIFO";
    case PolicyKind::s3lru:
      return "S3LRU";
    case PolicyKind::arc:
      return "ARC";
    case PolicyKind::lirs:
      return "LIRS";
    case PolicyKind::lfu:
      return "LFU";
    case PolicyKind::belady:
      return "Belady";
  }
  throw std::invalid_argument("policy_name: unknown kind");
}

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::lru,  PolicyKind::fifo, PolicyKind::s3lru, PolicyKind::arc,
      PolicyKind::lirs, PolicyKind::lfu,  PolicyKind::belady};
  return kinds;
}

PolicyKind policy_kind_from_name(std::string_view name) {
  const auto lower = [](std::string_view s) {
    std::string out{s};
    for (char& c : out) c = static_cast<char>(std::tolower(c));
    return out;
  };
  const std::string wanted = lower(name);
  for (const PolicyKind kind : all_policy_kinds()) {
    if (wanted == lower(policy_name(kind))) return kind;
  }
  throw std::invalid_argument("policy_kind_from_name: unknown policy '" +
                              std::string{name} +
                              "' (lru|fifo|s3lru|arc|lirs|lfu|belady)");
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind,
                                         std::uint64_t capacity_bytes,
                                         double lirs_lir_fraction) {
  switch (kind) {
    case PolicyKind::lru:
      return std::make_unique<LruCache>(capacity_bytes);
    case PolicyKind::fifo:
      return std::make_unique<FifoCache>(capacity_bytes);
    case PolicyKind::s3lru:
      return std::make_unique<S3LruCache>(capacity_bytes);
    case PolicyKind::arc:
      return std::make_unique<ArcCache>(capacity_bytes);
    case PolicyKind::lirs:
      return std::make_unique<LirsCache>(capacity_bytes, lirs_lir_fraction);
    case PolicyKind::lfu:
      return std::make_unique<LfuCache>(capacity_bytes);
    case PolicyKind::belady:
      return std::make_unique<BeladyCache>(capacity_bytes);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace otac
