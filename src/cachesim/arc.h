// ARC (Megiddo & Modha, FAST'03) generalized to variable object sizes: the
// recency list T1, frequency list T2 and ghost lists B1/B2 are tracked in
// bytes, and the adaptation target p moves in byte units proportional to
// the ghost-hit object's size. With unit sizes this degrades exactly to the
// textbook algorithm (tested).
//
// The four lists share one slab pool (ghosts reuse the same node, no
// realloc on the T1->B1 transition); residency is one open-addressing probe.
#pragma once

#include "cachesim/cache_policy.h"
#include "cachesim/slab_list.h"
#include "util/open_hash.h"

namespace otac {

class ArcCache final : public CachePolicy {
 public:
  explicit ArcCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override;
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return bytes_[kT1] + bytes_[kT2];
  }
  [[nodiscard]] std::size_t object_count() const override;
  [[nodiscard]] std::string name() const override { return "ARC"; }

  /// Adaptation target for T1, in bytes (exposed for tests).
  [[nodiscard]] double target_t1_bytes() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t ghost_bytes() const noexcept {
    return bytes_[kB1] + bytes_[kB2];
  }

 private:
  enum ListId : std::uint8_t { kT1 = 0, kT2 = 1, kB1 = 2, kB2 = 3 };

  struct Entry {
    PhotoId key;
    std::uint32_t size;
    ListId list;
  };
  using Pool = SlabList<Entry>;
  using Index = Pool::Index;

  void move_to(Index node, ListId to);
  void drop(Index node);
  /// Evict from T1/T2 into the ghost lists until `incoming` fits.
  void replace(bool ghost_hit_in_b2, std::uint32_t incoming);
  void trim_ghosts();

  Pool pool_;
  Pool::ListRef lists_[4];  // head = MRU
  std::uint64_t bytes_[4] = {0, 0, 0, 0};
  OpenHashIndex<PhotoId> index_;
  double p_ = 0.0;
};

}  // namespace otac
