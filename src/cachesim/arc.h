// ARC (Megiddo & Modha, FAST'03) generalized to variable object sizes: the
// recency list T1, frequency list T2 and ghost lists B1/B2 are tracked in
// bytes, and the adaptation target p moves in byte units proportional to
// the ghost-hit object's size. With unit sizes this degrades exactly to the
// textbook algorithm (tested).
#pragma once

#include <list>
#include <unordered_map>

#include "cachesim/cache_policy.h"

namespace otac {

class ArcCache final : public CachePolicy {
 public:
  explicit ArcCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override;
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return bytes_[kT1] + bytes_[kT2];
  }
  [[nodiscard]] std::size_t object_count() const override;
  [[nodiscard]] std::string name() const override { return "ARC"; }

  /// Adaptation target for T1, in bytes (exposed for tests).
  [[nodiscard]] double target_t1_bytes() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t ghost_bytes() const noexcept {
    return bytes_[kB1] + bytes_[kB2];
  }

 private:
  enum ListId : std::size_t { kT1 = 0, kT2 = 1, kB1 = 2, kB2 = 3 };

  struct Entry {
    PhotoId key;
    std::uint32_t size;
    ListId list;
  };
  using List = std::list<Entry>;

  void move_to(List::iterator it, ListId to);
  void drop(List::iterator it);
  /// Evict from T1/T2 into the ghost lists until `incoming` fits.
  void replace(bool ghost_hit_in_b2, std::uint32_t incoming);
  void trim_ghosts();

  List lists_[4];  // front = MRU
  std::uint64_t bytes_[4] = {0, 0, 0, 0};
  std::unordered_map<PhotoId, List::iterator> index_;
  double p_ = 0.0;
};

}  // namespace otac
