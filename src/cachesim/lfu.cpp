#include "cachesim/lfu.h"

#include <cassert>

namespace otac {

std::uint64_t LfuCache::frequency(PhotoId key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second->freq;
}

void LfuCache::bump(std::map<std::uint64_t, Bucket>::iterator bucket_it,
                    Bucket::iterator entry_it) {
  const std::uint64_t next_freq = entry_it->freq + 1;
  auto& target = buckets_[next_freq];  // creates if absent
  entry_it->freq = next_freq;
  target.splice(target.begin(), bucket_it->second, entry_it);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
}

bool LfuCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const auto bucket_it = buckets_.find(it->second->freq);
  assert(bucket_it != buckets_.end());
  bump(bucket_it, it->second);
  return true;
}

bool LfuCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) evict_one();
  auto& bucket = buckets_[1];
  bucket.push_front(Entry{key, size_bytes, 1});
  index_.emplace(key, bucket.begin());
  used_ += size_bytes;
  return true;
}

void LfuCache::evict_one() {
  assert(!buckets_.empty());
  const auto lowest = buckets_.begin();
  assert(!lowest->second.empty());
  const Entry victim = lowest->second.back();
  lowest->second.pop_back();
  if (lowest->second.empty()) buckets_.erase(lowest);
  index_.erase(victim.key);
  used_ -= victim.size;
  notify_evict(victim.key, victim.size);
}

}  // namespace otac
