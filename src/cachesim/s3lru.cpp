#include "cachesim/s3lru.h"

#include <algorithm>
#include <cassert>

namespace otac {

S3LruCache::S3LruCache(std::uint64_t capacity_bytes)
    : CachePolicy(capacity_bytes) {
  const std::uint64_t share = capacity_bytes / kSegments;
  segment_capacity_.fill(share);
  // Give the remainder to segment 0 so shares sum to the capacity.
  segment_capacity_[0] += capacity_bytes - share * kSegments;
}

std::uint64_t S3LruCache::used_bytes() const {
  return used_[0] + used_[1] + used_[2];
}

bool S3LruCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto node = index_.find(key);
  if (node == OpenHashIndex<PhotoId>::npos) return false;
  Entry& entry = pool_[node];
  const int from = entry.segment;
  const int to = std::min(from + 1, kSegments - 1);
  used_[static_cast<std::size_t>(from)] -= entry.size;
  used_[static_cast<std::size_t>(to)] += entry.size;
  entry.segment = to;
  pool_.move_front(lists_[static_cast<std::size_t>(from)],
                   lists_[static_cast<std::size_t>(to)], node);
  rebalance();
  return true;
}

bool S3LruCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  // An object larger than the probationary segment would evict itself on
  // the spot; refuse instead of producing a phantom insertion.
  if (size_bytes > segment_capacity_[0]) return false;
  const auto node = pool_.acquire(Entry{key, size_bytes, 0});
  pool_.push_front(lists_[0], node);
  index_.insert(key, node);
  used_[0] += size_bytes;
  rebalance();
  return true;
}

void S3LruCache::rebalance() {
  // Cascade demotions top-down so a demotion from segment 2 can push
  // segment 1 over and so on; segment 0 finally evicts.
  for (int segment = kSegments - 1; segment >= 1; --segment) {
    auto& list = lists_[static_cast<std::size_t>(segment)];
    auto& below = lists_[static_cast<std::size_t>(segment - 1)];
    while (used_[static_cast<std::size_t>(segment)] >
           segment_capacity_[static_cast<std::size_t>(segment)]) {
      assert(!list.empty());
      const auto victim = list.tail;
      Entry& entry = pool_[victim];
      used_[static_cast<std::size_t>(segment)] -= entry.size;
      used_[static_cast<std::size_t>(segment - 1)] += entry.size;
      entry.segment = segment - 1;
      pool_.move_front(list, below, victim);
    }
  }
  auto& probation = lists_[0];
  while (used_[0] > segment_capacity_[0]) {
    assert(!probation.empty());
    const auto node = probation.tail;
    const Entry victim = pool_[node];
    pool_.unlink(probation, node);
    pool_.release(node);
    index_.erase(victim.key);
    used_[0] -= victim.size;
    notify_evict(victim.key, victim.size);
  }
}

}  // namespace otac
