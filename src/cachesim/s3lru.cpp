#include "cachesim/s3lru.h"

#include <cassert>

namespace otac {

S3LruCache::S3LruCache(std::uint64_t capacity_bytes)
    : CachePolicy(capacity_bytes) {
  const std::uint64_t share = capacity_bytes / kSegments;
  segment_capacity_.fill(share);
  // Give the remainder to segment 0 so shares sum to the capacity.
  segment_capacity_[0] += capacity_bytes - share * kSegments;
}

std::uint64_t S3LruCache::used_bytes() const {
  return used_[0] + used_[1] + used_[2];
}

bool S3LruCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const auto node = it->second;
  const int from = node->segment;
  const int to = std::min(from + 1, kSegments - 1);
  auto& source = lists_[static_cast<std::size_t>(from)];
  auto& target = lists_[static_cast<std::size_t>(to)];
  used_[static_cast<std::size_t>(from)] -= node->size;
  used_[static_cast<std::size_t>(to)] += node->size;
  node->segment = to;
  target.splice(target.begin(), source, node);
  rebalance();
  return true;
}

bool S3LruCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  // An object larger than the probationary segment would evict itself on
  // the spot; refuse instead of producing a phantom insertion.
  if (size_bytes > segment_capacity_[0]) return false;
  lists_[0].push_front(Entry{key, size_bytes, 0});
  index_.emplace(key, lists_[0].begin());
  used_[0] += size_bytes;
  rebalance();
  return true;
}

void S3LruCache::rebalance() {
  // Cascade demotions top-down so a demotion from segment 2 can push
  // segment 1 over and so on; segment 0 finally evicts.
  for (int segment = kSegments - 1; segment >= 1; --segment) {
    auto& list = lists_[static_cast<std::size_t>(segment)];
    auto& below = lists_[static_cast<std::size_t>(segment - 1)];
    while (used_[static_cast<std::size_t>(segment)] >
           segment_capacity_[static_cast<std::size_t>(segment)]) {
      assert(!list.empty());
      const auto victim = std::prev(list.end());
      used_[static_cast<std::size_t>(segment)] -= victim->size;
      used_[static_cast<std::size_t>(segment - 1)] += victim->size;
      victim->segment = segment - 1;
      below.splice(below.begin(), list, victim);
    }
  }
  auto& probation = lists_[0];
  while (used_[0] > segment_capacity_[0]) {
    assert(!probation.empty());
    const Entry victim = probation.back();
    probation.pop_back();
    index_.erase(victim.key);
    used_[0] -= victim.size;
    notify_evict(victim.key, victim.size);
  }
}

}  // namespace otac
