#include "cachesim/fifo.h"

#include <cassert>

namespace otac {

bool FifoCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  return index_.contains(key);
}

bool FifoCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) {
    assert(!queue_.empty());
    const auto node = queue_.head;
    const Entry victim = pool_[node];
    pool_.unlink(queue_, node);
    pool_.release(node);
    index_.erase(victim.key);
    used_ -= victim.size;
    notify_evict(victim.key, victim.size);
  }
  const auto node = pool_.acquire(Entry{key, size_bytes});
  pool_.push_back(queue_, node);
  index_.insert(key, node);
  used_ += size_bytes;
  return true;
}

}  // namespace otac
