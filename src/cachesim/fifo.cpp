#include "cachesim/fifo.h"

#include <cassert>

namespace otac {

bool FifoCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  return index_.contains(key);
}

bool FifoCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) {
    assert(!queue_.empty());
    const Entry victim = queue_.front();
    queue_.pop_front();
    index_.erase(victim.key);
    used_ -= victim.size;
    notify_evict(victim.key, victim.size);
  }
  queue_.push_back(Entry{key, size_bytes});
  index_.emplace(key, std::prev(queue_.end()));
  used_ += size_bytes;
  return true;
}

}  // namespace otac
