// Replacement-policy interface for variable-size objects.
//
// The simulator drives policies through two calls: access() on every
// request (hit path; must not fabricate residency), and insert() on an
// admitted miss (may evict). Admission control lives *outside* the policy —
// that separation is the paper's point: one-time-access exclusion composes
// with any replacement algorithm.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/types.h"

namespace otac {

/// Sentinel "never accessed again" hint for oracle policies.
inline constexpr std::uint64_t kNeverAgain =
    std::numeric_limits<std::uint64_t>::max();

class CachePolicy {
 public:
  explicit CachePolicy(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  virtual ~CachePolicy() = default;

  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  /// Look up `key`; on a hit update recency/frequency state and return
  /// true. On a miss return false without acquiring space.
  virtual bool access(PhotoId key, std::uint32_t size_bytes) = 0;

  /// Insert after an admitted miss, evicting as needed. Returns false when
  /// the object cannot be cached (larger than capacity). Calling insert for
  /// a resident key is a programming error; implementations may assert.
  virtual bool insert(PhotoId key, std::uint32_t size_bytes) = 0;

  /// Residency probe without state mutation.
  [[nodiscard]] virtual bool contains(PhotoId key) const = 0;

  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual std::size_t object_count() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Oracle hook: position (request index) of the *next* access to the key
  /// of the call that follows. Belady consumes it; others ignore it.
  virtual void set_next_access_hint(std::uint64_t /*next_index*/) {}

  /// Eviction observer (optional): invoked once per evicted object.
  using EvictionCallback = std::function<void(PhotoId, std::uint32_t)>;
  void set_eviction_callback(EvictionCallback cb) {
    on_evict_ = std::move(cb);
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

 protected:
  void notify_evict(PhotoId key, std::uint32_t size_bytes) const {
    if (on_evict_) on_evict_(key, size_bytes);
  }

 private:
  std::uint64_t capacity_bytes_;
  EvictionCallback on_evict_;
};

/// The five replacement algorithms of §5 plus LFU (extra baseline).
enum class PolicyKind { lru, fifo, s3lru, arc, lirs, lfu, belady };

[[nodiscard]] std::string policy_name(PolicyKind kind);

/// Inverse of policy_name, case-insensitive ("lru", "LRU", "Belady", ...).
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] PolicyKind policy_kind_from_name(std::string_view name);

/// Every PolicyKind, in declaration order (factory/CLI enumeration).
[[nodiscard]] const std::vector<PolicyKind>& all_policy_kinds();

/// Factory used by experiment sweeps. LIRS takes its LIR fraction from
/// `lirs_lir_fraction` (see DESIGN.md deviation note).
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind,
                                         std::uint64_t capacity_bytes,
                                         double lirs_lir_fraction = 0.9);

}  // namespace otac
