// Two-tier cache hierarchy from the paper's §2.1 (Figure 1): requests hit
// the Outside Cache (OC, close to users), OC misses go to the Datacenter
// Cache (DC), DC misses hit backend storage. Each tier has its own
// replacement policy and admission policy, so one-time-access exclusion can
// be deployed at either or both tiers.
#pragma once

#include <memory>

#include "cachesim/admission.h"
#include "cachesim/cache_policy.h"
#include "cachesim/cache_stats.h"
#include "storage/latency_model.h"
#include "trace/next_access.h"
#include "trace/trace.h"

namespace otac {

struct TieredStats {
  CacheStats oc;  // per-tier view: oc.requests == all requests
  CacheStats dc;  // dc.requests == OC misses
  std::uint64_t backend_reads = 0;  // DC misses
  double backend_bytes = 0.0;

  /// End-to-end hit rate: served by either cache tier.
  [[nodiscard]] double combined_hit_rate() const noexcept {
    return oc.requests
               ? 1.0 - static_cast<double>(backend_reads) /
                           static_cast<double>(oc.requests)
               : 0.0;
  }
  /// Mean response time: OC hit < DC hit < backend read. Latencies for the
  /// two cache tiers use the same SSD model; DC adds a WAN round trip.
  [[nodiscard]] double mean_latency_us(const LatencyModel& model,
                                       double oc_to_dc_rtt_us) const noexcept {
    if (oc.requests == 0) return 0.0;
    const double n = static_cast<double>(oc.requests);
    const double oc_hits = static_cast<double>(oc.hits);
    const double dc_hits = static_cast<double>(dc.hits);
    const double backend = static_cast<double>(backend_reads);
    return (oc_hits * model.hit_cost_us() +
            dc_hits * (model.hit_cost_us() + oc_to_dc_rtt_us) +
            backend * (model.miss_penalty_original_us() + oc_to_dc_rtt_us)) /
           n;
  }
};

class TieredSimulator {
 public:
  explicit TieredSimulator(const Trace& trace) : trace_(&trace) {}

  void set_oracle(const NextAccessInfo& oracle) { oracle_ = &oracle; }

  /// Run the trace through OC then DC. Admissions are consulted per tier
  /// (an OC rejection does not prevent DC insertion and vice versa).
  TieredStats run(CachePolicy& oc, AdmissionPolicy& oc_admission,
                  CachePolicy& dc, AdmissionPolicy& dc_admission) const;

 private:
  const Trace* trace_;
  const NextAccessInfo* oracle_ = nullptr;
};

}  // namespace otac
