#include "cachesim/arc.h"

#include <algorithm>
#include <cassert>

namespace otac {

bool ArcCache::contains(PhotoId key) const {
  const auto node = index_.find(key);
  if (node == OpenHashIndex<PhotoId>::npos) return false;
  const ListId list = pool_[node].list;
  return list == kT1 || list == kT2;
}

std::size_t ArcCache::object_count() const {
  return lists_[kT1].size + lists_[kT2].size;
}

void ArcCache::move_to(Index node, ListId to) {
  Entry& entry = pool_[node];
  const ListId from = entry.list;
  bytes_[from] -= entry.size;
  bytes_[to] += entry.size;
  entry.list = to;
  pool_.move_front(lists_[from], lists_[to], node);
}

void ArcCache::drop(Index node) {
  const Entry& entry = pool_[node];
  bytes_[entry.list] -= entry.size;
  index_.erase(entry.key);
  pool_.unlink(lists_[entry.list], node);
  pool_.release(node);
}

bool ArcCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto node = index_.find(key);
  if (node == OpenHashIndex<PhotoId>::npos) return false;
  const ListId list = pool_[node].list;
  if (list != kT1 && list != kT2) return false;  // ghost: still a miss
  move_to(node, kT2);
  return true;
}

void ArcCache::replace(bool ghost_hit_in_b2, std::uint32_t incoming) {
  const std::uint64_t c = capacity_bytes();
  while (bytes_[kT1] + bytes_[kT2] + incoming > c) {
    const bool t1_over =
        !lists_[kT1].empty() &&
        (static_cast<double>(bytes_[kT1]) > p_ ||
         (ghost_hit_in_b2 && static_cast<double>(bytes_[kT1]) >= p_) ||
         lists_[kT2].empty());
    if (t1_over) {
      const auto victim = lists_[kT1].tail;
      notify_evict(pool_[victim].key, pool_[victim].size);
      move_to(victim, kB1);
    } else if (!lists_[kT2].empty()) {
      const auto victim = lists_[kT2].tail;
      notify_evict(pool_[victim].key, pool_[victim].size);
      move_to(victim, kB2);
    } else {
      break;  // nothing resident to evict
    }
  }
}

void ArcCache::trim_ghosts() {
  const std::uint64_t c = capacity_bytes();
  // ARC invariants in byte form: |T1|+|B1| <= c and everything <= 2c.
  while (!lists_[kB1].empty() && bytes_[kT1] + bytes_[kB1] > c) {
    drop(lists_[kB1].tail);
  }
  while (!lists_[kB2].empty() &&
         bytes_[kT1] + bytes_[kT2] + bytes_[kB1] + bytes_[kB2] > 2 * c) {
    drop(lists_[kB2].tail);
  }
}

bool ArcCache::insert(PhotoId key, std::uint32_t size_bytes) {
  if (size_bytes > capacity_bytes()) return false;
  const auto found = index_.find(key);
  const double c = static_cast<double>(capacity_bytes());

  if (found != OpenHashIndex<PhotoId>::npos) {
    const ListId list = pool_[found].list;
    assert(list == kB1 || list == kB2);
    if (list == kB1) {
      // Recency ghost hit: grow T1's target.
      const double ratio =
          bytes_[kB1] > 0 ? std::max(1.0, static_cast<double>(bytes_[kB2]) /
                                              static_cast<double>(bytes_[kB1]))
                          : 1.0;
      p_ = std::min(c, p_ + ratio * size_bytes);
      replace(false, size_bytes);
    } else {
      // Frequency ghost hit: shrink T1's target.
      const double ratio =
          bytes_[kB2] > 0 ? std::max(1.0, static_cast<double>(bytes_[kB1]) /
                                              static_cast<double>(bytes_[kB2]))
                          : 1.0;
      p_ = std::max(0.0, p_ - ratio * size_bytes);
      replace(true, size_bytes);
    }
    pool_[found].size = size_bytes;  // sizes are stable, but be safe
    move_to(found, kT2);
    trim_ghosts();
    return true;
  }

  // Brand-new object (ARC Case IV).
  if (bytes_[kT1] + bytes_[kB1] >= capacity_bytes()) {
    if (bytes_[kT1] < capacity_bytes() && !lists_[kB1].empty()) {
      drop(lists_[kB1].tail);
      replace(false, size_bytes);
    } else if (!lists_[kT1].empty()) {
      // B1 empty and T1 at capacity: delete T1's LRU outright (no ghost).
      const auto victim = lists_[kT1].tail;
      notify_evict(pool_[victim].key, pool_[victim].size);
      drop(victim);
    }
  } else {
    replace(false, size_bytes);
  }
  replace(false, size_bytes);  // ensure fit regardless of the branch taken

  const auto node = pool_.acquire(Entry{key, size_bytes, kT1});
  pool_.push_front(lists_[kT1], node);
  bytes_[kT1] += size_bytes;
  index_.insert(key, node);
  trim_ghosts();
  return true;
}

}  // namespace otac
