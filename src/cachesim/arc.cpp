#include "cachesim/arc.h"

#include <algorithm>
#include <cassert>

namespace otac {

bool ArcCache::contains(PhotoId key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const ListId list = it->second->list;
  return list == kT1 || list == kT2;
}

std::size_t ArcCache::object_count() const {
  return lists_[kT1].size() + lists_[kT2].size();
}

void ArcCache::move_to(List::iterator it, ListId to) {
  const ListId from = it->list;
  bytes_[from] -= it->size;
  bytes_[to] += it->size;
  it->list = to;
  lists_[to].splice(lists_[to].begin(), lists_[from], it);
}

void ArcCache::drop(List::iterator it) {
  bytes_[it->list] -= it->size;
  index_.erase(it->key);
  lists_[it->list].erase(it);
}

bool ArcCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const ListId list = it->second->list;
  if (list != kT1 && list != kT2) return false;  // ghost: still a miss
  move_to(it->second, kT2);
  return true;
}

void ArcCache::replace(bool ghost_hit_in_b2, std::uint32_t incoming) {
  const std::uint64_t c = capacity_bytes();
  while (bytes_[kT1] + bytes_[kT2] + incoming > c) {
    const bool t1_over =
        !lists_[kT1].empty() &&
        (static_cast<double>(bytes_[kT1]) > p_ ||
         (ghost_hit_in_b2 && static_cast<double>(bytes_[kT1]) >= p_) ||
         lists_[kT2].empty());
    if (t1_over) {
      const auto victim = std::prev(lists_[kT1].end());
      notify_evict(victim->key, victim->size);
      move_to(victim, kB1);
    } else if (!lists_[kT2].empty()) {
      const auto victim = std::prev(lists_[kT2].end());
      notify_evict(victim->key, victim->size);
      move_to(victim, kB2);
    } else {
      break;  // nothing resident to evict
    }
  }
}

void ArcCache::trim_ghosts() {
  const std::uint64_t c = capacity_bytes();
  // ARC invariants in byte form: |T1|+|B1| <= c and everything <= 2c.
  while (!lists_[kB1].empty() && bytes_[kT1] + bytes_[kB1] > c) {
    drop(std::prev(lists_[kB1].end()));
  }
  while (!lists_[kB2].empty() &&
         bytes_[kT1] + bytes_[kT2] + bytes_[kB1] + bytes_[kB2] > 2 * c) {
    drop(std::prev(lists_[kB2].end()));
  }
}

bool ArcCache::insert(PhotoId key, std::uint32_t size_bytes) {
  if (size_bytes > capacity_bytes()) return false;
  const auto found = index_.find(key);
  const double c = static_cast<double>(capacity_bytes());

  if (found != index_.end()) {
    const ListId list = found->second->list;
    assert(list == kB1 || list == kB2);
    if (list == kB1) {
      // Recency ghost hit: grow T1's target.
      const double ratio =
          bytes_[kB1] > 0 ? std::max(1.0, static_cast<double>(bytes_[kB2]) /
                                              static_cast<double>(bytes_[kB1]))
                          : 1.0;
      p_ = std::min(c, p_ + ratio * size_bytes);
      replace(false, size_bytes);
    } else {
      // Frequency ghost hit: shrink T1's target.
      const double ratio =
          bytes_[kB2] > 0 ? std::max(1.0, static_cast<double>(bytes_[kB1]) /
                                              static_cast<double>(bytes_[kB2]))
                          : 1.0;
      p_ = std::max(0.0, p_ - ratio * size_bytes);
      replace(true, size_bytes);
    }
    found->second->size = size_bytes;  // sizes are stable, but be safe
    move_to(found->second, kT2);
    trim_ghosts();
    return true;
  }

  // Brand-new object (ARC Case IV).
  if (bytes_[kT1] + bytes_[kB1] >= capacity_bytes()) {
    if (bytes_[kT1] < capacity_bytes() && !lists_[kB1].empty()) {
      drop(std::prev(lists_[kB1].end()));
      replace(false, size_bytes);
    } else if (!lists_[kT1].empty()) {
      // B1 empty and T1 at capacity: delete T1's LRU outright (no ghost).
      const auto victim = std::prev(lists_[kT1].end());
      notify_evict(victim->key, victim->size);
      drop(victim);
    }
  } else {
    replace(false, size_bytes);
  }
  replace(false, size_bytes);  // ensure fit regardless of the branch taken

  lists_[kT1].push_front(Entry{key, size_bytes, kT1});
  bytes_[kT1] += size_bytes;
  index_.emplace(key, lists_[kT1].begin());
  trim_ghosts();
  return true;
}

}  // namespace otac
