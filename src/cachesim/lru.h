// Least-Recently-Used: the paper's baseline replacement algorithm.
#pragma once

#include <list>
#include <unordered_map>

#include "cachesim/cache_policy.h"

namespace otac {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "LRU"; }

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
  };
  void evict_one();

  std::list<Entry> order_;  // front = most recent
  std::unordered_map<PhotoId, std::list<Entry>::iterator> index_;
  std::uint64_t used_ = 0;
};

}  // namespace otac
