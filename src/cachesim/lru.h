// Least-Recently-Used: the paper's baseline replacement algorithm.
//
// Hot-path layout: entries live in a contiguous slab (no per-touch heap
// allocation) and residency is tracked by a single open-addressing probe —
// see slab_list.h / util/open_hash.h.
#pragma once

#include "cachesim/cache_policy.h"
#include "cachesim/slab_list.h"
#include "util/open_hash.h"

namespace otac {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "LRU"; }

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
  };
  using Pool = SlabList<Entry>;

  void evict_one();

  Pool pool_;
  Pool::ListRef order_;  // head = most recent
  OpenHashIndex<PhotoId> index_;
  std::uint64_t used_ = 0;
};

}  // namespace otac
