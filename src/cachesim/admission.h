// Cache-admission interface — where the paper's contribution plugs in.
//
// On every miss the simulator asks the admission policy whether the object
// should be written to the SSD cache; after each request (hit or miss) it
// lets the policy observe the access so stateful admissions (the ML
// classification system, core/classifier_system.h) can maintain online
// features and their history table.
#pragma once

#include <cstdint>
#include <string>

#include "trace/next_access.h"
#include "trace/types.h"

namespace otac {

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Decide whether the missed object should enter the cache. `index` is
  /// the request's position in the trace. State visible here must reflect
  /// the trace *before* this request (observe() has not yet run).
  [[nodiscard]] virtual bool admit(std::uint64_t index, const Request& request,
                                   const PhotoMeta& photo) = 0;

  /// Called once per request after the hit/miss outcome is known.
  virtual void observe(std::uint64_t /*index*/, const Request& /*request*/,
                       const PhotoMeta& /*photo*/, bool /*hit*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Traditional cache behaviour: every miss is cached ("Original" curves).
class AlwaysAdmit final : public AdmissionPolicy {
 public:
  bool admit(std::uint64_t, const Request&, const PhotoMeta&) override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "always"; }
};

/// Degenerate read-through (no caching at all); lower-bound sanity check.
class NeverAdmit final : public AdmissionPolicy {
 public:
  bool admit(std::uint64_t, const Request&, const PhotoMeta&) override {
    return false;
  }
  [[nodiscard]] std::string name() const override { return "never"; }
};

/// The paper's "Ideal" classifier: 100% accurate one-time-access detection.
/// Admits exactly the objects whose next reaccess distance is within the
/// criteria threshold M (§4.3) — requires the offline next-access oracle.
class OracleAdmission final : public AdmissionPolicy {
 public:
  OracleAdmission(const NextAccessInfo& oracle, double reaccess_threshold)
      : oracle_(&oracle), threshold_(reaccess_threshold) {}

  bool admit(std::uint64_t index, const Request&, const PhotoMeta&) override {
    const std::uint64_t distance = oracle_->reaccess_distance(index);
    return distance != kNoNextAccess &&
           static_cast<double>(distance) <= threshold_;
  }
  [[nodiscard]] std::string name() const override { return "ideal"; }

  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  const NextAccessInfo* oracle_;
  double threshold_;
};

}  // namespace otac
