// LFU with O(1) frequency buckets and LRU tie-breaking inside a bucket.
// Extra baseline beyond the paper's five (frequency is the natural
// counterpoint to recency for popularity-skewed photo workloads).
#pragma once

#include <list>
#include <map>
#include <unordered_map>

#include "cachesim/cache_policy.h"

namespace otac {

class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::uint64_t capacity_bytes)
      : CachePolicy(capacity_bytes) {}

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "LFU"; }

  [[nodiscard]] std::uint64_t frequency(PhotoId key) const;

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
    std::uint64_t freq;
  };
  // freq -> bucket list (front = most recently used at that frequency).
  using Bucket = std::list<Entry>;

  void bump(std::map<std::uint64_t, Bucket>::iterator bucket_it,
            Bucket::iterator entry_it);
  void evict_one();

  std::map<std::uint64_t, Bucket> buckets_;
  std::unordered_map<PhotoId, Bucket::iterator> index_;
  std::uint64_t used_ = 0;
};

}  // namespace otac
