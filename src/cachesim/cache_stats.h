// Counters behind every figure of §5.3: file/byte hit rates (Figs. 6-7),
// file/byte write rates (Figs. 8-9).
#pragma once

#include <cstdint>

#include "util/fnv.h"

namespace otac {

struct CacheStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  double request_bytes = 0.0;
  double hit_bytes = 0.0;

  // SSD write traffic: objects actually inserted into the cache.
  std::uint64_t insertions = 0;
  double inserted_bytes = 0.0;

  std::uint64_t evictions = 0;
  double evicted_bytes = 0.0;

  // Misses the admission policy chose not to cache.
  std::uint64_t rejected = 0;
  double rejected_bytes = 0.0;

  // FNV-1a hash over the (key, size) eviction sequence — a replay
  // fingerprint: two runs with identical eviction behavior (and only those)
  // produce the same hash. Sharded runs fold per-shard hashes in shard
  // order via merge().
  std::uint64_t eviction_hash = kFnvOffset;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;

  /// Fold one eviction into the sequence fingerprint.
  void note_eviction(std::uint64_t key, std::uint32_t size_bytes) noexcept {
    evictions += 1;
    evicted_bytes += size_bytes;
    fnv64(eviction_hash, key);
    fnv64(eviction_hash, size_bytes);
  }

  [[nodiscard]] std::uint64_t misses() const noexcept {
    return requests - hits;
  }
  [[nodiscard]] double file_hit_rate() const noexcept {
    return requests ? static_cast<double>(hits) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  [[nodiscard]] double byte_hit_rate() const noexcept {
    return request_bytes > 0.0 ? hit_bytes / request_bytes : 0.0;
  }
  /// Files written to SSD per access (Fig. 8's "file write rate").
  [[nodiscard]] double file_write_rate() const noexcept {
    return requests ? static_cast<double>(insertions) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  /// Bytes written to SSD per byte accessed (Fig. 9, §5.3.4).
  [[nodiscard]] double byte_write_rate() const noexcept {
    return request_bytes > 0.0 ? inserted_bytes / request_bytes : 0.0;
  }

  void merge(const CacheStats& other) noexcept {
    requests += other.requests;
    hits += other.hits;
    request_bytes += other.request_bytes;
    hit_bytes += other.hit_bytes;
    insertions += other.insertions;
    inserted_bytes += other.inserted_bytes;
    evictions += other.evictions;
    evicted_bytes += other.evicted_bytes;
    rejected += other.rejected;
    rejected_bytes += other.rejected_bytes;
    fnv64(eviction_hash, other.eviction_hash);
  }
};

}  // namespace otac
