// S3LRU: segmented LRU with three segments (Karedla et al. 1994,
// generalized from 2 to 3 levels as in the paper).
//
// New objects enter segment 0 (probationary). A hit promotes the object to
// the MRU position of the next segment up (capped at segment 2). When a
// segment overflows its byte share, its LRU object is demoted to the MRU
// position of the segment below; overflow of segment 0 evicts. One-time
// objects therefore never pollute the protected segments — S3LRU is one of
// the "advanced algorithms with their own strategies against one-time
// accesses" (§5.2), which is why the classifier helps it less.
//
// All three segment lists share one slab pool; promotion/demotion is a
// link splice, never an allocation.
#pragma once

#include <array>

#include "cachesim/cache_policy.h"
#include "cachesim/slab_list.h"
#include "util/open_hash.h"

namespace otac {

class S3LruCache final : public CachePolicy {
 public:
  static constexpr int kSegments = 3;

  explicit S3LruCache(std::uint64_t capacity_bytes);

  bool access(PhotoId key, std::uint32_t size_bytes) override;
  bool insert(PhotoId key, std::uint32_t size_bytes) override;
  [[nodiscard]] bool contains(PhotoId key) const override {
    return index_.contains(key);
  }
  [[nodiscard]] std::uint64_t used_bytes() const override;
  [[nodiscard]] std::size_t object_count() const override {
    return index_.size();
  }
  [[nodiscard]] std::string name() const override { return "S3LRU"; }

  [[nodiscard]] std::uint64_t segment_bytes(int segment) const {
    return used_[static_cast<std::size_t>(segment)];
  }

 private:
  struct Entry {
    PhotoId key;
    std::uint32_t size;
    int segment;
  };
  using Pool = SlabList<Entry>;

  /// Demote overflowing segments downward; evict out of segment 0.
  void rebalance();

  Pool pool_;
  std::array<Pool::ListRef, kSegments> lists_;  // head = MRU of that segment
  std::array<std::uint64_t, kSegments> used_{};
  std::array<std::uint64_t, kSegments> segment_capacity_{};
  OpenHashIndex<PhotoId> index_;
};

}  // namespace otac
