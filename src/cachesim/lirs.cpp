#include "cachesim/lirs.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace otac {

LirsCache::LirsCache(std::uint64_t capacity_bytes, double lir_fraction)
    : CachePolicy(capacity_bytes), lir_fraction_(lir_fraction) {
  if (lir_fraction <= 0.0 || lir_fraction >= 1.0) {
    throw std::invalid_argument("LirsCache: lir_fraction must be in (0,1)");
  }
  lir_capacity_ = static_cast<std::uint64_t>(
      static_cast<double>(capacity_bytes) * lir_fraction);
  lir_capacity_ = std::max<std::uint64_t>(lir_capacity_, 1);
}

void LirsCache::stack_push_top(PhotoId key, Entry& entry) {
  stack_.push_front(key);
  entry.stack_it = stack_.begin();
  entry.in_stack = true;
}

void LirsCache::stack_remove(Entry& entry) {
  if (!entry.in_stack) return;
  stack_.erase(entry.stack_it);
  entry.in_stack = false;
}

void LirsCache::queue_push_back(PhotoId key, Entry& entry) {
  queue_.push_back(key);
  entry.queue_it = std::prev(queue_.end());
  entry.in_queue = true;
}

void LirsCache::queue_remove(Entry& entry) {
  if (!entry.in_queue) return;
  queue_.erase(entry.queue_it);
  entry.in_queue = false;
}

void LirsCache::prune() {
  while (!stack_.empty()) {
    const PhotoId bottom = stack_.back();
    Entry& entry = table_.at(bottom);
    if (entry.state == State::lir) break;
    // Non-LIR at the bottom: remove from the stack.
    stack_.pop_back();
    entry.in_stack = false;
    if (entry.state == State::hir_nonresident) {
      nonres_.erase(entry.nonres_it);
      table_.erase(bottom);
    }
  }
}

void LirsCache::shrink_lir() {
  while (lir_bytes_ > lir_capacity_ && !stack_.empty()) {
    // Bottom of the stack is always a LIR block (post-prune invariant).
    prune();
    if (stack_.empty()) break;
    const PhotoId bottom = stack_.back();
    Entry& entry = table_.at(bottom);
    assert(entry.state == State::lir);
    stack_.pop_back();
    entry.in_stack = false;
    entry.state = State::hir_resident;
    lir_bytes_ -= entry.size;
    queue_push_back(bottom, entry);
    prune();
  }
}

void LirsCache::evict_to_fit(std::uint64_t incoming) {
  while (resident_bytes_ + incoming > capacity_bytes() && !queue_.empty()) {
    const PhotoId victim = queue_.front();
    queue_.pop_front();
    Entry& entry = table_.at(victim);
    entry.in_queue = false;
    assert(entry.state == State::hir_resident);
    resident_bytes_ -= entry.size;
    resident_count_ -= 1;
    notify_evict(victim, entry.size);
    if (entry.in_stack) {
      entry.state = State::hir_nonresident;
      nonres_.push_back(victim);
      entry.nonres_it = std::prev(nonres_.end());
    } else {
      table_.erase(victim);
    }
  }
}

void LirsCache::make_room(std::uint64_t incoming) {
  evict_to_fit(incoming);
  // Queue drained but still no room: the LIR set itself must shrink (large
  // incoming object vs. a small HIR area). Demote bottom LIR blocks into
  // the queue and evict again.
  while (resident_bytes_ + incoming > capacity_bytes() && !stack_.empty()) {
    prune();
    if (stack_.empty()) break;
    const PhotoId bottom = stack_.back();
    Entry& entry = table_.at(bottom);
    assert(entry.state == State::lir);
    stack_.pop_back();
    entry.in_stack = false;
    entry.state = State::hir_resident;
    lir_bytes_ -= entry.size;
    queue_push_back(bottom, entry);
    prune();
    evict_to_fit(incoming);
  }
}

void LirsCache::enforce_nonresident_bound() {
  // Cap ghost metadata: at most 2x the resident object count (plus slack
  // for small caches). Oldest ghosts go first.
  const std::size_t bound = std::max<std::size_t>(64, 2 * resident_count_);
  while (nonres_.size() > bound) {
    const PhotoId victim = nonres_.front();
    nonres_.pop_front();
    Entry& entry = table_.at(victim);
    stack_remove(entry);
    table_.erase(victim);
    prune();
  }
}

bool LirsCache::contains(PhotoId key) const {
  const auto it = table_.find(key);
  return it != table_.end() && it->second.state != State::hir_nonresident;
}

bool LirsCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = table_.find(key);
  if (it == table_.end() || it->second.state == State::hir_nonresident) {
    return false;
  }
  Entry& entry = it->second;
  if (entry.state == State::lir) {
    const bool was_bottom = entry.stack_it == std::prev(stack_.end());
    stack_remove(entry);
    stack_push_top(key, entry);
    if (was_bottom) prune();
    return true;
  }
  // Resident HIR hit.
  if (entry.in_stack) {
    // IRR beat the oldest LIR: promote.
    stack_remove(entry);
    stack_push_top(key, entry);
    queue_remove(entry);
    entry.state = State::lir;
    lir_bytes_ += entry.size;
    shrink_lir();
  } else {
    stack_push_top(key, entry);
    queue_remove(entry);
    queue_push_back(key, entry);
  }
  return true;
}

bool LirsCache::insert(PhotoId key, std::uint32_t size_bytes) {
  if (size_bytes > capacity_bytes()) return false;
  const auto it = table_.find(key);
  assert(it == table_.end() || it->second.state == State::hir_nonresident);

  if (it != table_.end() && it->second.in_stack) {
    // Non-resident HIR still on the stack: low IRR, promote straight to LIR.
    Entry& entry = it->second;
    nonres_.erase(entry.nonres_it);
    stack_remove(entry);
    make_room(size_bytes);
    stack_push_top(key, entry);
    entry.state = State::lir;
    entry.size = size_bytes;
    lir_bytes_ += size_bytes;
    resident_bytes_ += size_bytes;
    resident_count_ += 1;
    shrink_lir();
    evict_to_fit(0);
    enforce_nonresident_bound();
    return true;
  }
  if (it != table_.end()) {
    // Stale non-resident entry that fell off the stack: forget it.
    nonres_.erase(it->second.nonres_it);
    table_.erase(it);
  }

  Entry entry;
  entry.size = size_bytes;
  make_room(size_bytes);
  if (lir_bytes_ + size_bytes <= lir_capacity_) {
    // Warm-up: LIR share not yet full, new blocks become LIR directly.
    entry.state = State::lir;
    auto [pos, inserted] = table_.emplace(key, entry);
    stack_push_top(key, pos->second);
    lir_bytes_ += size_bytes;
    resident_bytes_ += size_bytes;
    resident_count_ += 1;
    return true;
  }
  entry.state = State::hir_resident;
  auto [pos, inserted] = table_.emplace(key, entry);
  stack_push_top(key, pos->second);
  queue_push_back(key, pos->second);
  resident_bytes_ += size_bytes;
  resident_count_ += 1;
  evict_to_fit(0);
  enforce_nonresident_bound();
  return true;
}

bool LirsCache::check_invariants() const {
  if (!stack_.empty()) {
    const auto bottom = table_.find(stack_.back());
    if (bottom == table_.end()) return false;
    if (bottom->second.state != State::lir) return false;
  }
  std::uint64_t lir = 0;
  std::uint64_t resident = 0;
  std::size_t count = 0;
  for (const auto& [key, entry] : table_) {
    if (entry.state == State::lir) {
      lir += entry.size;
      if (!entry.in_stack) return false;
      if (entry.in_queue) return false;
    }
    if (entry.state != State::hir_nonresident) {
      resident += entry.size;
      count += 1;
    }
    if (entry.state == State::hir_resident && !entry.in_queue) return false;
    if (entry.state == State::hir_nonresident &&
        (!entry.in_stack || entry.in_queue)) {
      return false;
    }
  }
  return lir == lir_bytes_ && resident == resident_bytes_ &&
         count == resident_count_ && resident_bytes_ <= capacity_bytes() &&
         lir_bytes_ <= lir_capacity_;
}

}  // namespace otac
