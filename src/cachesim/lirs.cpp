#include "cachesim/lirs.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace otac {

LirsCache::LirsCache(std::uint64_t capacity_bytes, double lir_fraction)
    : CachePolicy(capacity_bytes), lir_fraction_(lir_fraction) {
  if (lir_fraction <= 0.0 || lir_fraction >= 1.0) {
    throw std::invalid_argument("LirsCache: lir_fraction must be in (0,1)");
  }
  lir_capacity_ = static_cast<std::uint64_t>(
      static_cast<double>(capacity_bytes) * lir_fraction);
  lir_capacity_ = std::max<std::uint64_t>(lir_capacity_, 1);
}

void LirsCache::stack_push_top(Index node) {
  pool_.push_front(stack_, node, kStack);
  pool_[node].in_stack = true;
}

void LirsCache::stack_remove(Index node) {
  if (!pool_[node].in_stack) return;
  pool_.unlink(stack_, node, kStack);
  pool_[node].in_stack = false;
}

void LirsCache::queue_push_back(Index node) {
  pool_.push_back(queue_, node, kQueue);
  pool_[node].in_queue = true;
}

void LirsCache::queue_remove(Index node) {
  if (!pool_[node].in_queue) return;
  pool_.unlink(queue_, node, kQueue);
  pool_[node].in_queue = false;
}

void LirsCache::forget(Index node) {
  table_.erase(pool_[node].key);
  pool_.release(node);
}

void LirsCache::prune() {
  while (!stack_.empty()) {
    const Index bottom = stack_.tail;
    Entry& entry = pool_[bottom];
    if (entry.state == State::lir) break;
    // Non-LIR at the bottom: remove from the stack.
    pool_.unlink(stack_, bottom, kStack);
    entry.in_stack = false;
    if (entry.state == State::hir_nonresident) {
      pool_.unlink(nonres_, bottom, kNonres);
      forget(bottom);
    }
  }
}

void LirsCache::shrink_lir() {
  while (lir_bytes_ > lir_capacity_ && !stack_.empty()) {
    // Bottom of the stack is always a LIR block (post-prune invariant).
    prune();
    if (stack_.empty()) break;
    const Index bottom = stack_.tail;
    Entry& entry = pool_[bottom];
    assert(entry.state == State::lir);
    pool_.unlink(stack_, bottom, kStack);
    entry.in_stack = false;
    entry.state = State::hir_resident;
    lir_bytes_ -= entry.size;
    queue_push_back(bottom);
    prune();
  }
}

void LirsCache::evict_to_fit(std::uint64_t incoming) {
  while (resident_bytes_ + incoming > capacity_bytes() && !queue_.empty()) {
    const Index victim = queue_.head;
    Entry& entry = pool_[victim];
    pool_.unlink(queue_, victim, kQueue);
    entry.in_queue = false;
    assert(entry.state == State::hir_resident);
    resident_bytes_ -= entry.size;
    resident_count_ -= 1;
    notify_evict(entry.key, entry.size);
    if (entry.in_stack) {
      entry.state = State::hir_nonresident;
      pool_.push_back(nonres_, victim, kNonres);
    } else {
      forget(victim);
    }
  }
}

void LirsCache::make_room(std::uint64_t incoming) {
  evict_to_fit(incoming);
  // Queue drained but still no room: the LIR set itself must shrink (large
  // incoming object vs. a small HIR area). Demote bottom LIR blocks into
  // the queue and evict again.
  while (resident_bytes_ + incoming > capacity_bytes() && !stack_.empty()) {
    prune();
    if (stack_.empty()) break;
    const Index bottom = stack_.tail;
    Entry& entry = pool_[bottom];
    assert(entry.state == State::lir);
    pool_.unlink(stack_, bottom, kStack);
    entry.in_stack = false;
    entry.state = State::hir_resident;
    lir_bytes_ -= entry.size;
    queue_push_back(bottom);
    prune();
    evict_to_fit(incoming);
  }
}

void LirsCache::enforce_nonresident_bound() {
  // Cap ghost metadata: at most 2x the resident object count (plus slack
  // for small caches). Oldest ghosts go first.
  const std::size_t bound = std::max<std::size_t>(64, 2 * resident_count_);
  while (nonres_.size > bound) {
    const Index victim = nonres_.head;
    pool_.unlink(nonres_, victim, kNonres);
    stack_remove(victim);
    forget(victim);
    prune();
  }
}

bool LirsCache::contains(PhotoId key) const {
  const auto node = table_.find(key);
  return node != OpenHashIndex<PhotoId>::npos &&
         pool_[node].state != State::hir_nonresident;
}

bool LirsCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto node = table_.find(key);
  if (node == OpenHashIndex<PhotoId>::npos ||
      pool_[node].state == State::hir_nonresident) {
    return false;
  }
  Entry& entry = pool_[node];
  if (entry.state == State::lir) {
    const bool was_bottom = stack_.tail == node;
    stack_remove(node);
    stack_push_top(node);
    if (was_bottom) prune();
    return true;
  }
  // Resident HIR hit.
  if (entry.in_stack) {
    // IRR beat the oldest LIR: promote.
    stack_remove(node);
    stack_push_top(node);
    queue_remove(node);
    entry.state = State::lir;
    lir_bytes_ += entry.size;
    shrink_lir();
  } else {
    stack_push_top(node);
    queue_remove(node);
    queue_push_back(node);
  }
  return true;
}

bool LirsCache::insert(PhotoId key, std::uint32_t size_bytes) {
  if (size_bytes > capacity_bytes()) return false;
  const auto found = table_.find(key);
  assert(found == OpenHashIndex<PhotoId>::npos ||
         pool_[found].state == State::hir_nonresident);

  if (found != OpenHashIndex<PhotoId>::npos && pool_[found].in_stack) {
    // Non-resident HIR still on the stack: low IRR, promote straight to LIR.
    Entry& entry = pool_[found];
    pool_.unlink(nonres_, found, kNonres);
    stack_remove(found);
    make_room(size_bytes);
    stack_push_top(found);
    entry.state = State::lir;
    entry.size = size_bytes;
    lir_bytes_ += size_bytes;
    resident_bytes_ += size_bytes;
    resident_count_ += 1;
    shrink_lir();
    evict_to_fit(0);
    enforce_nonresident_bound();
    return true;
  }
  if (found != OpenHashIndex<PhotoId>::npos) {
    // Stale non-resident entry that fell off the stack: forget it.
    pool_.unlink(nonres_, found, kNonres);
    forget(found);
  }

  make_room(size_bytes);
  if (lir_bytes_ + size_bytes <= lir_capacity_) {
    // Warm-up: LIR share not yet full, new blocks become LIR directly.
    const Index node = pool_.acquire(Entry{key, size_bytes, State::lir});
    table_.insert(key, node);
    stack_push_top(node);
    lir_bytes_ += size_bytes;
    resident_bytes_ += size_bytes;
    resident_count_ += 1;
    return true;
  }
  const Index node =
      pool_.acquire(Entry{key, size_bytes, State::hir_resident});
  table_.insert(key, node);
  stack_push_top(node);
  queue_push_back(node);
  resident_bytes_ += size_bytes;
  resident_count_ += 1;
  evict_to_fit(0);
  enforce_nonresident_bound();
  return true;
}

bool LirsCache::check_invariants() const {
  if (!stack_.empty()) {
    if (pool_[stack_.tail].state != State::lir) return false;
  }
  std::uint64_t lir = 0;
  std::uint64_t resident = 0;
  std::size_t count = 0;
  // Walk every tracked entry through the stack, queue, and ghost lists;
  // dedupe via the state machine (every entry is on the stack, the queue,
  // or the ghost list — entries on both S and Q are counted once via S).
  std::size_t seen = 0;
  for (Index node = stack_.head; node != npos; node = pool_.next(node, kStack)) {
    const Entry& entry = pool_[node];
    if (!entry.in_stack) return false;
    ++seen;
    if (entry.state == State::lir) {
      lir += entry.size;
      if (entry.in_queue) return false;
    }
    if (entry.state != State::hir_nonresident) {
      resident += entry.size;
      count += 1;
    }
    if (entry.state == State::hir_resident && !entry.in_queue) return false;
  }
  if (seen != stack_.size) return false;
  for (Index node = queue_.head; node != npos; node = pool_.next(node, kQueue)) {
    const Entry& entry = pool_[node];
    if (!entry.in_queue) return false;
    if (entry.state != State::hir_resident) return false;
    if (entry.in_stack) continue;  // already counted via the stack walk
    resident += entry.size;
    count += 1;
  }
  for (Index node = nonres_.head; node != npos;
       node = pool_.next(node, kNonres)) {
    const Entry& entry = pool_[node];
    if (entry.state != State::hir_nonresident) return false;
    if (!entry.in_stack || entry.in_queue) return false;
  }
  return lir == lir_bytes_ && resident == resident_bytes_ &&
         count == resident_count_ && resident_bytes_ <= capacity_bytes() &&
         lir_bytes_ <= lir_capacity_;
}

}  // namespace otac
