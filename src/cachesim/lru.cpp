#include "cachesim/lru.h"

#include <cassert>

namespace otac {

bool LruCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

bool LruCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) evict_one();
  order_.push_front(Entry{key, size_bytes});
  index_.emplace(key, order_.begin());
  used_ += size_bytes;
  return true;
}

void LruCache::evict_one() {
  assert(!order_.empty());
  const Entry victim = order_.back();
  order_.pop_back();
  index_.erase(victim.key);
  used_ -= victim.size;
  notify_evict(victim.key, victim.size);
}

}  // namespace otac
