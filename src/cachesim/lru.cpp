#include "cachesim/lru.h"

#include <cassert>

namespace otac {

bool LruCache::access(PhotoId key, std::uint32_t /*size_bytes*/) {
  const auto node = index_.find(key);
  if (node == OpenHashIndex<PhotoId>::npos) return false;
  pool_.move_front(order_, order_, node);
  return true;
}

bool LruCache::insert(PhotoId key, std::uint32_t size_bytes) {
  assert(!index_.contains(key) && "insert of resident key");
  if (size_bytes > capacity_bytes()) return false;
  while (used_ + size_bytes > capacity_bytes()) evict_one();
  const auto node = pool_.acquire(Entry{key, size_bytes});
  pool_.push_front(order_, node);
  index_.insert(key, node);
  used_ += size_bytes;
  return true;
}

void LruCache::evict_one() {
  assert(!order_.empty());
  const auto node = order_.tail;
  const Entry victim = pool_[node];
  pool_.unlink(order_, node);
  pool_.release(node);
  index_.erase(victim.key);
  used_ -= victim.size;
  notify_evict(victim.key, victim.size);
}

}  // namespace otac
