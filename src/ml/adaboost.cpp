#include "ml/adaboost.h"

#include <cmath>
#include <stdexcept>

namespace otac::ml {

AdaBoost::AdaBoost(AdaBoostConfig config) : config_(config) {
  if (config_.num_rounds == 0) {
    throw std::invalid_argument("AdaBoost: need at least one round");
  }
}

void AdaBoost::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("AdaBoost: empty data");
  learners_.clear();
  alphas_.clear();

  const std::size_t n = data.num_rows();
  // Boosting weights start at the dataset's own (cost) weights, normalized
  // to *mean 1* (sum n) so the base tree's min_child_weight semantics — a
  // minimum effective sample count per child — stay meaningful.
  std::vector<float> weights(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = data.weight(i);
    total += static_cast<double>(weights[i]);
  }
  const double scale_to_n = static_cast<double>(n) / total;
  for (auto& w : weights) {
    w = static_cast<float>(static_cast<double>(w) * scale_to_n);
  }

  Dataset working = data;  // weights mutate per round

  for (std::size_t round = 0; round < config_.num_rounds; ++round) {
    working.set_weights(weights);
    DecisionTreeConfig tree_config = config_.tree;
    tree_config.feature_subsample_seed = config_.seed + round;
    DecisionTree learner{tree_config};
    learner.fit(working);

    double error = 0.0;
    double weight_total = 0.0;
    std::vector<int> predictions(n);
    for (std::size_t i = 0; i < n; ++i) {
      predictions[i] = learner.predict(data.row(i));
      weight_total += static_cast<double>(weights[i]);
      if (predictions[i] != data.label(i)) {
        error += static_cast<double>(weights[i]);
      }
    }
    error = std::clamp(error / weight_total, 1e-10, 1.0 - 1e-10);
    if (error >= 0.5) {
      // Learner no better than chance: stop boosting (standard early exit);
      // keep at least one learner so predict works.
      if (!learners_.empty()) break;
    }
    const double alpha = 0.5 * std::log((1.0 - error) / error);
    learners_.push_back(std::move(learner));
    alphas_.push_back(alpha);

    // Reweight: misclassified up, correct down; renormalize to mean 1.
    double new_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double sign = predictions[i] == data.label(i) ? -1.0 : 1.0;
      weights[i] = static_cast<float>(static_cast<double>(weights[i]) *
                                      std::exp(sign * alpha));
      new_total += static_cast<double>(weights[i]);
    }
    const double renorm = static_cast<double>(n) / new_total;
    for (auto& w : weights) {
      w = static_cast<float>(static_cast<double>(w) * renorm);
    }
  }
}

double AdaBoost::predict_proba(std::span<const float> features) const {
  if (learners_.empty()) throw std::logic_error("AdaBoost: not fitted");
  double score = 0.0;
  double alpha_total = 0.0;
  for (std::size_t i = 0; i < learners_.size(); ++i) {
    const int vote = learners_[i].predict(features) == 1 ? 1 : -1;
    score += alphas_[i] * vote;
    alpha_total += std::abs(alphas_[i]);
  }
  if (alpha_total <= 0.0) return 0.5;
  // Map the normalized margin in [-1,1] through a logistic link so the
  // output behaves like a probability for thresholding and AUC.
  const double margin = score / alpha_total;
  return 1.0 / (1.0 + std::exp(-4.0 * margin));
}

}  // namespace otac::ml
