#include "ml/random_forest.h"

#include <cmath>
#include <stdexcept>

namespace otac::ml {

RandomForest::RandomForest(RandomForestConfig config) : config_(config) {
  if (config_.num_trees == 0) {
    throw std::invalid_argument("RandomForest: need at least one tree");
  }
}

void RandomForest::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("RandomForest: empty data");
  trees_.clear();
  trees_.reserve(config_.num_trees);
  Rng rng{config_.seed};

  const std::size_t max_features =
      config_.max_features > 0
          ? config_.max_features
          : static_cast<std::size_t>(std::max(
                1.0, std::floor(std::sqrt(
                         static_cast<double>(data.num_features())))));

  std::vector<std::size_t> bootstrap(data.num_rows());
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    for (auto& idx : bootstrap) idx = rng.next_below(data.num_rows());
    const Dataset sample = data.subset_rows(bootstrap);

    DecisionTreeConfig tree_config = config_.tree;
    tree_config.max_features = max_features;
    tree_config.feature_subsample_seed = rng.next_u64();
    DecisionTree tree{tree_config};
    tree.fit(sample);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict_proba(std::span<const float> features) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double total = 0.0;
  for (const DecisionTree& tree : trees_) {
    total += tree.predict_proba(features);
  }
  return total / static_cast<double>(trees_.size());
}

}  // namespace otac::ml
