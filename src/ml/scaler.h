// Per-feature standardization (zero mean, unit variance), required by the
// distance/gradient based learners (kNN, logistic regression, MLP). Tree
// learners are scale-invariant and skip it.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace otac::ml {

class StandardScaler {
 public:
  /// Learn per-feature mean and stddev (weighted). Constant features get
  /// stddev 1 so they transform to 0.
  void fit(const Dataset& data);

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

  /// Transform a single row into the provided buffer (resized to match).
  void transform(std::span<const float> row, std::vector<float>& out) const;

  /// Transform a whole dataset (labels/weights preserved).
  [[nodiscard]] Dataset transform(const Dataset& data) const;

  [[nodiscard]] const std::vector<double>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& stddev() const noexcept {
    return stddev_;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace otac::ml
