#include "ml/naive_bayes.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace otac::ml {

void GaussianNaiveBayes::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("NaiveBayes: empty data");
  const std::size_t d = data.num_features();
  double class_weight[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    variance_[c].assign(d, 0.0);
  }

  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const int c = data.label(i);
    const double w = data.weight(i);
    class_weight[c] += w;
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      mean_[c][f] += w * static_cast<double>(row[f]);
    }
  }
  for (int c = 0; c < 2; ++c) {
    if (class_weight[c] <= 0.0) {
      // Single-class data: keep a degenerate but usable model.
      class_weight[c] = 1e-12;
    }
    for (std::size_t f = 0; f < d; ++f) mean_[c][f] /= class_weight[c];
  }
  double max_feature_variance = 1e-9;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const int c = data.label(i);
    const double w = data.weight(i);
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = static_cast<double>(row[f]) - mean_[c][f];
      variance_[c][f] += w * delta * delta;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      variance_[c][f] /= class_weight[c];
      max_feature_variance = std::max(max_feature_variance, variance_[c][f]);
    }
  }
  // sklearn-style smoothing: proportional to the largest variance.
  const double smoothing = 1e-9 * max_feature_variance + 1e-12;
  for (int c = 0; c < 2; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      variance_[c][f] = std::max(variance_[c][f] + smoothing, 1e-12);
    }
  }
  const double total = class_weight[0] + class_weight[1];
  log_prior_[0] = std::log(class_weight[0] / total);
  log_prior_[1] = std::log(class_weight[1] / total);
  fitted_ = true;
}

double GaussianNaiveBayes::predict_proba(
    std::span<const float> features) const {
  if (!fitted_) throw std::logic_error("NaiveBayes: not fitted");
  if (features.size() != mean_[0].size()) {
    throw std::invalid_argument("NaiveBayes: feature arity mismatch");
  }
  double log_likelihood[2] = {log_prior_[0], log_prior_[1]};
  for (int c = 0; c < 2; ++c) {
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double delta = static_cast<double>(features[f]) - mean_[c][f];
      log_likelihood[c] -=
          0.5 * (std::log(2.0 * std::numbers::pi * variance_[c][f]) +
                 delta * delta / variance_[c][f]);
    }
  }
  // Stable softmax over two classes.
  const double peak = std::max(log_likelihood[0], log_likelihood[1]);
  const double e0 = std::exp(log_likelihood[0] - peak);
  const double e1 = std::exp(log_likelihood[1] - peak);
  return e1 / (e0 + e1);
}

}  // namespace otac::ml
