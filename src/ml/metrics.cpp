#include "ml/metrics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace otac::ml {

ConfusionMatrix confusion_from_predictions(std::span<const int> actual,
                                           std::span<const int> predicted) {
  if (actual.size() != predicted.size()) {
    throw std::invalid_argument("confusion: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    cm.add(actual[i], predicted[i]);
  }
  return cm;
}

std::vector<RocPoint> roc_curve(std::span<const int> actual,
                                std::span<const double> scores) {
  if (actual.size() != scores.size()) {
    throw std::invalid_argument("roc_curve: size mismatch");
  }
  std::uint64_t positives = 0;
  for (const int a : actual) positives += (a == 1);
  const std::uint64_t negatives = actual.size() - positives;

  std::vector<std::size_t> order(actual.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0});
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    // Consume the whole tie group before emitting a point.
    while (i < order.size() && scores[order[i]] == threshold) {
      (actual[order[i]] == 1 ? tp : fp) += 1;
      ++i;
    }
    curve.push_back(
        {negatives ? static_cast<double>(fp) / static_cast<double>(negatives)
                   : 0.0,
         positives ? static_cast<double>(tp) / static_cast<double>(positives)
                   : 0.0});
  }
  return curve;
}

double auc(std::span<const int> actual, std::span<const double> scores) {
  if (actual.size() != scores.size()) {
    throw std::invalid_argument("auc: size mismatch");
  }
  std::uint64_t positives = 0;
  for (const int a : actual) positives += (a == 1);
  const std::uint64_t negatives = actual.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Midrank-based Mann–Whitney U.
  std::vector<std::size_t> order(actual.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  double rank_sum_positive = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Ranks are 1-based; tie group [i, j) shares the average rank.
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (actual[order[k]] == 1) rank_sum_positive += midrank;
    }
    i = j;
  }
  const double p = static_cast<double>(positives);
  const double n = static_cast<double>(negatives);
  const double u = rank_sum_positive - p * (p + 1.0) / 2.0;
  return u / (p * n);
}

}  // namespace otac::ml
