// CART decision tree (Breiman et al. 1984), the paper's classifier (§3.1).
//
// Binary splits on numeric features with weighted Gini impurity. Growth is
// *best-first*: candidate leaves are split in order of impurity decrease
// until `max_splits` internal nodes exist — directly modelling the paper's
// "upper limit of splitting times to 30" (§3.1.2, ~3x the feature count).
// Cost-sensitive learning enters through instance weights (Dataset), so the
// v-weighted cost matrix of §4.4.1 needs no tree-specific handling.
//
// Training uses the presort-partition scheme: feature orders are sorted
// once per fit and partitioned down the tree, so each node's split search
// is a linear scan (daily retrains and the forest/boosting ensembles that
// refit dozens of trees ride on this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace otac::ml {

struct DecisionTreeConfig {
  /// Maximum number of internal (split) nodes; paper uses 30.
  std::size_t max_splits = 30;
  /// Hard depth cap as an over-fitting backstop.
  std::size_t max_depth = 12;
  /// Minimum total instance weight a child may hold.
  double min_child_weight = 1.0;
  /// Minimum weighted Gini decrease for a split to be considered.
  double min_impurity_decrease = 1e-7;
  /// Number of features examined per split; 0 = all (random forests pass
  /// sqrt(d) here together with a seed).
  std::size_t max_features = 0;
  std::uint64_t feature_subsample_seed = 0;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }

  /// Number of internal nodes actually created (<= max_splits).
  [[nodiscard]] std::size_t split_count() const noexcept { return splits_; }
  /// Height of the tree (root-only tree has height 0); the paper reports
  /// ~5, i.e. at most five comparisons per prediction.
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Total impurity decrease credited to each feature (unnormalized).
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

  /// Read-only view of one stored node (leaf when feature == -1), indexed
  /// 0..node_count(). Children always point strictly forward. This is the
  /// flattening interface for ml/compiled_tree.h.
  struct NodeView {
    std::int32_t feature;
    float threshold;
    std::int32_t left;
    std::int32_t right;
    float probability;
  };
  [[nodiscard]] NodeView node(std::size_t i) const noexcept {
    const Node& n = nodes_[i];
    return {n.feature, n.threshold, n.left, n.right, n.probability};
  }

  /// Comparisons performed for this row (== depth of the reached leaf).
  [[nodiscard]] std::size_t decision_path_length(
      std::span<const float> features) const;

  /// Human-readable tree dump for debugging and docs.
  [[nodiscard]] std::string to_text(
      const std::vector<std::string>& feature_names) const;

  /// Compact text serialization of a fitted tree (model shipping: the
  /// trainer runs at 05:00, the serving tier loads the new model).
  /// Round-trips exactly; throws std::invalid_argument on malformed input.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static DecisionTree deserialize(const std::string& blob);

 private:
  struct Node {
    // Leaf when feature == -1.
    std::int32_t feature = -1;
    float threshold = 0.0F;          // go left when value <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    float probability = 0.0F;        // weighted P(label==1) of node samples
    std::uint32_t depth = 0;
  };

  struct SplitChoice {
    std::size_t feature = 0;
    float threshold = 0.0F;
    double gain = 0.0;
    bool valid = false;
  };

  /// Presorted row orders shared by every node of one fit() call; see the
  /// implementation notes in decision_tree.cpp.
  struct PresortIndex;

  /// Scan the node's presorted segment [begin, begin+count) of each
  /// considered feature for the best Gini cut — no sorting on this path.
  SplitChoice find_best_split(const Dataset& data, const PresortIndex& index,
                              std::size_t begin, std::size_t count,
                              Rng& feature_rng) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t splits_ = 0;
  std::size_t height_ = 0;
};

}  // namespace otac::ml
