// Classification metrics from Tables 2 & 3 of the paper: confusion matrix,
// precision, recall, accuracy, F1, ROC curve and AUC.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace otac::ml {

/// Table 2 layout: positive == one-time-access.
struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  void add(int actual, int predicted) noexcept {
    if (actual == 1) {
      (predicted == 1 ? tp : fn) += 1;
    } else {
      (predicted == 1 ? fp : tn) += 1;
    }
  }

  /// Cell-wise sum (aggregating per-shard or per-day matrices).
  void merge(const ConfusionMatrix& other) noexcept {
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
  }

  friend bool operator==(const ConfusionMatrix&,
                         const ConfusionMatrix&) = default;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return tp + fp + tn + fn;
  }
  /// P = TP / (TP + FP); 0 when undefined.
  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t d = tp + fp;
    return d ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  /// R = TP / (TP + FN); 0 when undefined.
  [[nodiscard]] double recall() const noexcept {
    const std::uint64_t d = tp + fn;
    return d ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] double accuracy() const noexcept {
    const std::uint64_t t = total();
    return t ? static_cast<double>(tp + tn) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision();
    const double r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

[[nodiscard]] ConfusionMatrix confusion_from_predictions(
    std::span<const int> actual, std::span<const int> predicted);

/// One (FPR, TPR) point per distinct score threshold, endpoints included.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
};

[[nodiscard]] std::vector<RocPoint> roc_curve(std::span<const int> actual,
                                              std::span<const double> scores);

/// Area under the ROC curve via the Mann–Whitney statistic with midrank tie
/// handling; 0.5 when one class is absent.
[[nodiscard]] double auc(std::span<const int> actual,
                         std::span<const double> scores);

}  // namespace otac::ml
