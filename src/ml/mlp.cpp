#include "ml/mlp.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace otac::ml {

namespace {
double stable_sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}
}  // namespace

MlpClassifier::MlpClassifier(MlpConfig config) : config_(config) {
  if (config_.hidden_units == 0) {
    throw std::invalid_argument("MLP: need at least one hidden unit");
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("MLP: batch size must be >= 1");
  }
}

double MlpClassifier::forward(std::span<const float> scaled,
                              std::vector<double>& hidden) const {
  const std::size_t h = config_.hidden_units;
  hidden.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    const double* row = w1_.data() + j * (dims_ + 1);
    double acc = row[dims_];  // bias
    for (std::size_t f = 0; f < dims_; ++f) {
      acc += row[f] * static_cast<double>(scaled[f]);
    }
    hidden[j] = stable_sigmoid(acc);
  }
  double out = w2_[h];  // bias
  for (std::size_t j = 0; j < h; ++j) out += w2_[j] * hidden[j];
  return stable_sigmoid(out);
}

void MlpClassifier::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("MLP: empty data");
  scaler_.fit(data);
  const Dataset scaled = scaler_.transform(data);
  dims_ = scaled.num_features();
  const std::size_t h = config_.hidden_units;
  const std::size_t n = scaled.num_rows();

  Rng rng{config_.seed};
  const double init = 1.0 / std::sqrt(static_cast<double>(dims_ + 1));
  w1_.resize(h * (dims_ + 1));
  w2_.resize(h + 1);
  for (auto& w : w1_) w = rng.uniform(-init, init);
  for (auto& w : w2_) w = rng.uniform(-init, init);
  std::vector<double> v1(w1_.size(), 0.0);
  std::vector<double> v2(w2_.size(), 0.0);
  std::vector<double> g1(w1_.size());
  std::vector<double> g2(w2_.size());

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden;

  const double mean_weight = scaled.total_weight() / static_cast<double>(n);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t stop = std::min(n, start + config_.batch_size);
      std::fill(g1.begin(), g1.end(), 0.0);
      std::fill(g2.begin(), g2.end(), 0.0);
      for (std::size_t k = start; k < stop; ++k) {
        const std::size_t i = order[k];
        const auto row = scaled.row(i);
        const double out = forward(row, hidden);
        // Cross-entropy gradient at the output with instance weight.
        const double delta_out = (out - scaled.label(i)) *
                                 static_cast<double>(scaled.weight(i)) /
                                 mean_weight;
        for (std::size_t j = 0; j < h; ++j) g2[j] += delta_out * hidden[j];
        g2[h] += delta_out;
        for (std::size_t j = 0; j < h; ++j) {
          const double delta_hidden =
              delta_out * w2_[j] * hidden[j] * (1.0 - hidden[j]);
          double* grad_row = g1.data() + j * (dims_ + 1);
          for (std::size_t f = 0; f < dims_; ++f) {
            grad_row[f] += delta_hidden * static_cast<double>(row[f]);
          }
          grad_row[dims_] += delta_hidden;
        }
      }
      const double scale =
          config_.learning_rate / static_cast<double>(stop - start);
      for (std::size_t w = 0; w < w1_.size(); ++w) {
        v1[w] = config_.momentum * v1[w] - scale * g1[w];
        w1_[w] += v1[w];
      }
      for (std::size_t w = 0; w < w2_.size(); ++w) {
        v2[w] = config_.momentum * v2[w] - scale * g2[w];
        w2_[w] += v2[w];
      }
    }
  }
}

double MlpClassifier::predict_proba(std::span<const float> features) const {
  if (w1_.empty()) throw std::logic_error("MLP: not fitted");
  std::vector<float> scaled;
  scaler_.transform(features, scaled);
  std::vector<double> hidden;
  return forward(scaled, hidden);
}

}  // namespace otac::ml
