#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace otac::ml {

namespace {

double gini(double positive, double total) noexcept {
  if (total <= 0.0) return 0.0;
  const double p = positive / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::SplitChoice DecisionTree::find_best_split(
    const Dataset& data, const std::vector<std::size_t>& rows,
    Rng& feature_rng) const {
  SplitChoice best;
  const std::size_t d = data.num_features();

  // Optional feature subsampling (random forest mode).
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  std::size_t consider = d;
  if (config_.max_features > 0 && config_.max_features < d) {
    consider = config_.max_features;
    for (std::size_t i = 0; i < consider; ++i) {
      const std::size_t j =
          i + feature_rng.next_below(static_cast<std::uint64_t>(d - i));
      std::swap(features[i], features[j]);
    }
  }

  double node_total = 0.0;
  double node_positive = 0.0;
  for (const std::size_t r : rows) {
    node_total += data.weight(r);
    if (data.label(r) == 1) node_positive += data.weight(r);
  }
  const double node_impurity = gini(node_positive, node_total);
  if (node_impurity <= 0.0) return best;  // pure node

  // (value, weight, positive-weight) triples sorted per feature.
  struct Entry {
    float value;
    float weight;
    float positive;
  };
  std::vector<Entry> entries(rows.size());

  for (std::size_t fi = 0; fi < consider; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const std::size_t r = rows[k];
      const float w = data.weight(r);
      entries[k] = Entry{data.value(r, f), w,
                         data.label(r) == 1 ? w : 0.0F};
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });

    double left_total = 0.0;
    double left_positive = 0.0;
    for (std::size_t k = 0; k + 1 < entries.size(); ++k) {
      left_total += entries[k].weight;
      left_positive += entries[k].positive;
      if (entries[k].value == entries[k + 1].value) continue;  // no cut here
      const double right_total = node_total - left_total;
      const double right_positive = node_positive - left_positive;
      if (left_total < config_.min_child_weight ||
          right_total < config_.min_child_weight) {
        continue;
      }
      const double weighted_child_impurity =
          (left_total * gini(left_positive, left_total) +
           right_total * gini(right_positive, right_total)) /
          node_total;
      const double relative_gain = node_impurity - weighted_child_impurity;
      // Mass-weighted gain: ranks splits of large nodes above equally
      // impressive splits of tiny nodes (standard CART importance, and the
      // right priority for best-first growth under a split budget).
      const double gain = relative_gain * node_total;
      if (gain > best.gain && relative_gain >= config_.min_impurity_decrease) {
        best.feature = f;
        // Midpoint threshold: robust to unseen values between the cut pair.
        best.threshold =
            entries[k].value +
            (entries[k + 1].value - entries[k].value) * 0.5F;
        best.gain = gain;
        best.valid = true;
      }
    }
  }
  return best;
}

void DecisionTree::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("DecisionTree: empty data");
  nodes_.clear();
  importance_.assign(data.num_features(), 0.0);
  splits_ = 0;
  height_ = 0;

  Rng feature_rng{config_.feature_subsample_seed};

  std::vector<std::size_t> all(data.num_rows());
  std::iota(all.begin(), all.end(), 0);

  struct Candidate {
    double gain;
    std::int32_t node;
    SplitChoice split;
    std::vector<std::size_t> rows;

    bool operator<(const Candidate& other) const noexcept {
      return gain < other.gain;  // max-heap on gain
    }
  };

  const auto node_probability = [&](const std::vector<std::size_t>& rows) {
    double total = 0.0;
    double positive = 0.0;
    for (const std::size_t r : rows) {
      total += data.weight(r);
      if (data.label(r) == 1) positive += data.weight(r);
    }
    return total > 0.0 ? static_cast<float>(positive / total) : 0.0F;
  };

  std::priority_queue<Candidate> frontier;

  const auto make_leaf = [&](const std::vector<std::size_t>& rows,
                             std::uint32_t depth) {
    Node node;
    node.probability = node_probability(rows);
    node.depth = depth;
    nodes_.push_back(node);
    height_ = std::max<std::size_t>(height_, depth);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const auto consider_split = [&](std::int32_t node_id,
                                  std::vector<std::size_t> rows) {
    if (nodes_[static_cast<std::size_t>(node_id)].depth >= config_.max_depth) {
      return;
    }
    const SplitChoice split = find_best_split(data, rows, feature_rng);
    if (split.valid) {
      frontier.push(Candidate{split.gain, node_id, split, std::move(rows)});
    }
  };

  const std::int32_t root = make_leaf(all, 0);
  consider_split(root, std::move(all));

  while (!frontier.empty() && splits_ < config_.max_splits) {
    Candidate cand = std::move(const_cast<Candidate&>(frontier.top()));
    frontier.pop();

    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    left_rows.reserve(cand.rows.size());
    right_rows.reserve(cand.rows.size());
    for (const std::size_t r : cand.rows) {
      if (data.value(r, cand.split.feature) <= cand.split.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    if (left_rows.empty() || right_rows.empty()) continue;  // degenerate

    Node& parent = nodes_[static_cast<std::size_t>(cand.node)];
    parent.feature = static_cast<std::int32_t>(cand.split.feature);
    parent.threshold = cand.split.threshold;
    const std::uint32_t child_depth = parent.depth + 1;
    const std::int32_t left_id = make_leaf(left_rows, child_depth);
    const std::int32_t right_id = make_leaf(right_rows, child_depth);
    // make_leaf may reallocate nodes_; re-reference the parent.
    nodes_[static_cast<std::size_t>(cand.node)].left = left_id;
    nodes_[static_cast<std::size_t>(cand.node)].right = right_id;

    importance_[cand.split.feature] += cand.split.gain;
    ++splits_;

    consider_split(left_id, std::move(left_rows));
    consider_split(right_id, std::move(right_rows));
  }
}

double DecisionTree::predict_proba(std::span<const float> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    if (f >= features.size()) {
      throw std::invalid_argument("DecisionTree: feature arity mismatch");
    }
    node = static_cast<std::size_t>(features[f] <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return nodes_[node].probability;
}

std::size_t DecisionTree::decision_path_length(
    std::span<const float> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  std::size_t comparisons = 0;
  while (nodes_[node].feature >= 0) {
    ++comparisons;
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = static_cast<std::size_t>(features[f] <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return comparisons;
}

std::string DecisionTree::serialize() const {
  std::ostringstream out;
  out.precision(9);
  out << "otac-dtree 1 " << nodes_.size() << ' ' << splits_ << ' ' << height_
      << ' ' << importance_.size() << '\n';
  for (const Node& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.probability << ' ' << node.depth << '\n';
  }
  for (const double gain : importance_) out << gain << ' ';
  out << '\n';
  return out.str();
}

DecisionTree DecisionTree::deserialize(const std::string& blob) {
  std::istringstream in{blob};
  std::string magic;
  int version = 0;
  std::size_t node_count = 0;
  std::size_t splits = 0;
  std::size_t height = 0;
  std::size_t feature_count = 0;
  in >> magic >> version >> node_count >> splits >> height >> feature_count;
  if (!in || magic != "otac-dtree" || version != 1) {
    throw std::invalid_argument("DecisionTree: bad serialization header");
  }
  DecisionTree tree;
  tree.splits_ = splits;
  tree.height_ = height;
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.probability >> node.depth;
  }
  tree.importance_.resize(feature_count);
  for (double& gain : tree.importance_) in >> gain;
  if (!in) throw std::invalid_argument("DecisionTree: truncated blob");
  // Structural validation: child ids must be in range and non-cyclic by
  // construction (children always have larger indices in our builder).
  for (const Node& node : tree.nodes_) {
    if (node.feature >= 0) {
      const bool in_range =
          node.left > 0 && node.right > 0 &&
          static_cast<std::size_t>(node.left) < node_count &&
          static_cast<std::size_t>(node.right) < node_count;
      if (!in_range) {
        throw std::invalid_argument("DecisionTree: invalid child index");
      }
    }
  }
  return tree;
}

std::string DecisionTree::to_text(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream out;
  if (nodes_.empty()) return "(unfitted)\n";
  std::vector<std::pair<std::size_t, std::string>> stack{{0, ""}};
  while (!stack.empty()) {
    const auto [id, indent] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.feature < 0) {
      out << indent << "leaf p(one-time)=" << node.probability << "\n";
      continue;
    }
    const auto f = static_cast<std::size_t>(node.feature);
    const std::string label =
        f < feature_names.size() ? feature_names[f] : "f" + std::to_string(f);
    out << indent << label << " <= " << node.threshold << " ?\n";
    stack.emplace_back(static_cast<std::size_t>(node.right), indent + "  ");
    stack.emplace_back(static_cast<std::size_t>(node.left), indent + "  ");
  }
  return out.str();
}

}  // namespace otac::ml
